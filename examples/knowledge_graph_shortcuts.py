"""Sub-pattern indexing on a knowledge graph, with live maintenance.

Demonstrates the paper's §7.1.2/§7.1.3 trade-off on a miniature
encyclopedia graph: you rarely can (or want to) index every full query
pattern, so you pick *sub*-patterns that (a) stay selective, (b) serve many
queries, and (c) remain cheap to maintain while the graph keeps changing.

Run with::

    python examples/knowledge_graph_shortcuts.py
"""

import random
import time

from repro import GraphDatabase, PlannerHints

QUERY = (
    "MATCH (person:Person)-[b:BORN_IN]->(city:City)-[l:LOCATED_IN]->"
    "(country:Country)-[m:MEMBER_OF]->(org:Organisation) "
    "RETURN person, org"
)


def build_graph(db: GraphDatabase, rng: random.Random):
    organisations = [db.create_node(["Organisation"]) for _ in range(4)]
    countries = [db.create_node(["Country"]) for _ in range(30)]
    cities, people = [], []
    for country in countries:
        for org in rng.sample(organisations, rng.randrange(0, 3)):
            db.create_relationship(country, org, "MEMBER_OF")
        for _ in range(8):
            city = db.create_node(["City"])
            cities.append(city)
            db.create_relationship(city, country, "LOCATED_IN")
    for _ in range(3_000):
        person = db.create_node(["Person"])
        people.append(person)
        db.create_relationship(person, rng.choice(cities), "BORN_IN")
    return cities, countries, people


def timed(db, query, hints=None):
    started = time.perf_counter()
    result = db.execute(query, hints)
    rows = result.to_list()
    return rows, time.perf_counter() - started, result.max_intermediate_cardinality


def main() -> None:
    rng = random.Random(7)
    db = GraphDatabase()
    print("building knowledge graph ...")
    cities, countries, people = build_graph(db, rng)
    print(db)

    rows, baseline_s, baseline_interm = timed(
        db, QUERY, PlannerHints(use_path_indexes=False)
    )
    print(
        f"\nbaseline: {len(rows)} rows in {baseline_s * 1e3:.1f} ms "
        f"(max intermediate {baseline_interm:,})"
    )

    # Index the *geography* sub-pattern: shared by many person-centric
    # queries, far smaller than the person fan-in, cheap to maintain.
    stats = db.create_path_index(
        "geo", "(:City)-[:LOCATED_IN]->(:Country)-[:MEMBER_OF]->(:Organisation)"
    )
    print(
        f"\n'geo' sub-pattern index: {stats.cardinality} paths "
        f"({stats.size_on_disk} bytes)"
    )
    rows_idx, indexed_s, indexed_interm = timed(db, QUERY)
    assert len(rows_idx) == len(rows)
    print(
        f"with geo index: {len(rows_idx)} rows in {indexed_s * 1e3:.1f} ms "
        f"(max intermediate {indexed_interm:,}) — ≈ {baseline_s / indexed_s:.1f}×"
    )

    # The graph keeps changing; Algorithm 1 keeps the index exact.
    print("\napplying 200 random updates ...")
    maintenance = 0.0
    for _ in range(200):
        started = time.perf_counter()
        if rng.random() < 0.5:
            db.create_relationship(
                rng.choice(people), rng.choice(cities), "BORN_IN"
            )
        else:
            db.create_relationship(
                rng.choice(countries),
                rng.choice(countries),
                "BORDERS",
            )
        maintenance += time.perf_counter() - started
    print(
        f"updates done in {maintenance * 1e3:.1f} ms total; "
        f"index still exact: {db.verify_index('geo')}"
    )

    rows_after, after_s, _ = timed(db, QUERY)
    print(
        f"query after updates: {len(rows_after)} rows in {after_s * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
