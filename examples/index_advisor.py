"""A misprediction-driven index advisor — automating the paper's §7.3 recipe.

The paper found its YAGO index candidate by comparing the planner's
cardinality estimates against actual counts over a workload of path patterns
and picking the worst *misprediction factor*: a large factor means the data
is correlated there, which is exactly where a path index pays off. This
example packages that procedure: give it a workload of Cypher path queries
and it ranks indexable patterns by misprediction × selectivity, then builds
the winner and shows the gain.

Run with::

    python examples/index_advisor.py
"""

import time

from repro import GraphDatabase, PathPattern, PlannerHints
from repro.cypher import analyze, parse
from repro.datasets import CorrelatedConfig, correlated, generate_correlated
from repro.planner import CardinalityEstimator
from repro.querygraph import build_query_parts

WORKLOAD = [
    correlated.FULL_QUERY,
    "MATCH (a:A)-[x:X]->(b:A)-[y:Y]->(d:B) RETURN *",
    "MATCH (a:A)-[x:X]->(b:A) RETURN *",
    "MATCH (d:B)-[z:X]->(e:A) RETURN *",
]


def pattern_of(query_text: str) -> PathPattern:
    """Extract the (single-path) MATCH pattern of a workload query."""
    (part,) = build_query_parts(analyze(parse(query_text)))
    graph = part.query_graph
    # Follow the chain from a node with no incoming pattern relationship.
    starts = set(graph.nodes)
    for rel in graph.relationships.values():
        starts.discard(rel.end)
    start = sorted(starts)[0]
    labels = []
    steps = []
    current = start
    seen = set()
    while True:
        node = graph.nodes[current]
        labels.append(sorted(node.labels)[0] if node.labels else None)
        outgoing = [
            rel
            for rel in graph.relationships.values()
            if rel.start == current and rel.name not in seen
        ]
        if not outgoing:
            break
        rel = outgoing[0]
        seen.add(rel.name)
        from repro.pathindex.pattern import PatternRelationship

        steps.append(PatternRelationship(sorted(rel.types)[0], True))
        current = rel.end
    return PathPattern(labels=tuple(labels), relationships=tuple(steps))


def misprediction_factor(db: GraphDatabase, query_text: str) -> tuple[float, int]:
    (part,) = build_query_parts(analyze(parse(query_text)))
    estimator = CardinalityEstimator(
        db.store.statistics, db.store.labels, db.store.types
    )
    estimate = estimator.pattern_cardinality(
        part.query_graph,
        frozenset(part.query_graph.relationships),
        frozenset(part.query_graph.nodes),
    )
    actual = len(db.execute(query_text, PlannerHints(use_path_indexes=False)).to_list())
    factor = estimate / actual if actual else float("inf")
    return max(factor, 1.0 / factor) if factor else float("inf"), actual


def main() -> None:
    db = GraphDatabase()
    print("building correlated dataset ...")
    generate_correlated(db, CorrelatedConfig(paths=400, noise_factor=20))
    print(db)

    print("\nranking workload patterns by misprediction factor (§7.3):")
    ranked = []
    for query_text in WORKLOAD:
        factor, actual = misprediction_factor(db, query_text)
        ranked.append((factor, actual, query_text))
        print(f"  ×{factor:>12,.1f}  actual={actual:>8,}  {query_text[:70]}")
    ranked.sort(reverse=True)
    factor, actual, winner = ranked[0]
    print(f"\nbest candidate (×{factor:,.1f} misprediction): {winner[:70]}")

    pattern = pattern_of(winner)
    print(f"advised index pattern: {pattern}")
    started = time.perf_counter()
    stats = db.create_path_index("advised", pattern)
    print(
        f"built in {time.perf_counter() - started:.2f} s "
        f"({stats.cardinality} entries)"
    )

    baseline = db.execute(winner, PlannerHints(use_path_indexes=False))
    baseline.consume()
    indexed = db.execute(winner)
    indexed.consume()
    print(
        f"\nquery with advised index: "
        f"{indexed.time_to_last_result * 1e3:.1f} ms vs baseline "
        f"{baseline.time_to_last_result * 1e3:.1f} ms "
        f"(≈ {baseline.time_to_last_result / indexed.time_to_last_result:.0f}×)"
    )


if __name__ == "__main__":
    main()
