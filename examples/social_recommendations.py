"""Friend-of-friend recommendations on a social graph — the "selective
pattern on correlated data" use-case the paper identifies as the path-index
sweet spot (§8).

A small social network where employees of the same company are densely
connected but cross-company "mentors" links are rare. The recommendation
query — people my mentor's mentor knows at a *different* company — is highly
selective; a path index on the mentor chain collapses the intermediate state
the baseline plan wades through.

Run with::

    python examples/social_recommendations.py
"""

import random
import time

from repro import GraphDatabase, PlannerHints

PEOPLE_PER_COMPANY = 60
COMPANIES = 8
MENTOR_CHAINS = 25

QUERY = (
    "MATCH (me:Person)-[m1:MENTORS]->(mid:Person)-[m2:MENTORS]->(top:Person)"
    "-[k:KNOWS]->(peer:Person) "
    "RETURN me.name AS me, top.name AS top, peer.name AS suggestion"
)

PATTERN = "(:Person)-[:MENTORS]->(:Person)-[:MENTORS]->(:Person)-[:KNOWS]->(:Person)"


def build_network(db: GraphDatabase) -> None:
    rng = random.Random(2024)
    companies: list[list[int]] = []
    for company in range(COMPANIES):
        staff = [
            db.create_node(["Person"], {"name": f"c{company}_p{i}"})
            for i in range(PEOPLE_PER_COMPANY)
        ]
        companies.append(staff)
        # Dense intra-company KNOWS edges: the baseline plan's swamp.
        for person in staff:
            for _ in range(10):
                other = rng.choice(staff)
                if other != person:
                    db.create_relationship(person, other, "KNOWS")
    # Rare cross-company mentor chains: the selective, correlated structure.
    for _ in range(MENTOR_CHAINS):
        a_company, b_company, c_company = rng.sample(range(COMPANIES), 3)
        me = rng.choice(companies[a_company])
        mid = rng.choice(companies[b_company])
        top = rng.choice(companies[c_company])
        db.create_relationship(me, mid, "MENTORS")
        db.create_relationship(mid, top, "MENTORS")


def main() -> None:
    db = GraphDatabase()
    print("building network ...")
    build_network(db)
    print(db)

    baseline_hints = PlannerHints(use_path_indexes=False)
    started = time.perf_counter()
    baseline = db.execute(QUERY, baseline_hints)
    recommendations = baseline.to_list()
    baseline_s = time.perf_counter() - started
    print(
        f"\nbaseline: {len(recommendations)} suggestions in "
        f"{baseline_s * 1e3:.1f} ms "
        f"(max intermediate state: {baseline.max_intermediate_cardinality:,} rows)"
    )

    stats = db.create_path_index("mentor_reach", PATTERN)
    print(
        f"\npath index on the mentor chain: {stats.cardinality} paths, "
        f"built in {stats.seconds * 1e3:.1f} ms"
    )

    started = time.perf_counter()
    indexed = db.execute(QUERY)
    indexed_rows = indexed.to_list()
    indexed_s = time.perf_counter() - started
    print(
        f"indexed:  {len(indexed_rows)} suggestions in "
        f"{indexed_s * 1e3:.1f} ms "
        f"(max intermediate state: {indexed.max_intermediate_cardinality:,} rows)"
    )
    assert sorted(map(str, indexed_rows)) == sorted(map(str, recommendations))
    print(f"\nspeed-up: ≈ {baseline_s / indexed_s:.1f}×")
    print("\nsample suggestions:")
    for row in recommendations[:5]:
        print(f"  {row['me']} should meet {row['suggestion']} (via {row['top']})")


if __name__ == "__main__":
    main()
