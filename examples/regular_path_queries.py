"""Kleene-closure over an indexed pattern — the §5.1.4 PathIndexClosure.

The paper designed (and shelved) an operator producing the closure of an
indexed pattern, because Cypher cannot express `((:Stop)-[:NEXT]->(:Stop))*`.
The library API `repro.pathindex.closure` provides it: every index entry is a
macro-edge, and the closure walks them with prefix seeks on the index's
B+-tree.

This example models a transit network where one "leg" is the two-step
pattern station -DEPARTS-> trip -ARRIVES-> station, and answers regular path
queries like "which stations can I reach in at most three legs?" straight
from the path index.

Run with::

    python examples/regular_path_queries.py
"""

import random

from repro import GraphDatabase
from repro.pathindex.closure import closure, reachable_from

LEG = "(:Station)-[:DEPARTS]->(:Trip)-[:ARRIVES]->(:Station)"


def build_network(db: GraphDatabase, rng: random.Random) -> list[int]:
    stations = [
        db.create_node(["Station"], {"name": f"S{i}"}) for i in range(40)
    ]
    # A sparse line network plus a few express connections.
    for i in range(len(stations) - 1):
        trip = db.create_node(["Trip"])
        db.create_relationship(stations[i], trip, "DEPARTS")
        db.create_relationship(trip, stations[i + 1], "ARRIVES")
    for _ in range(8):
        origin, target = rng.sample(stations, 2)
        trip = db.create_node(["Trip"])
        db.create_relationship(origin, trip, "DEPARTS")
        db.create_relationship(trip, target, "ARRIVES")
    return stations


def station_name(db: GraphDatabase, node: int) -> str:
    return str(db.store.node_property(node, db.property_key("name")))


def main() -> None:
    rng = random.Random(11)
    db = GraphDatabase()
    stations = build_network(db, rng)
    stats = db.create_path_index("leg", LEG)
    print(f"indexed {stats.cardinality} legs ({LEG})")

    origin = stations[0]
    print(f"\nreachable from {station_name(db, origin)} within 3 legs:")
    within_three = sorted(
        (step.depth, station_name(db, step.end))
        for step in closure(
            db.path_index("leg"), [origin], max_depth=3, simple_paths=False
        )
    )
    for depth, name in within_three:
        print(f"  {depth} leg(s) → {name}")

    everywhere = reachable_from(db.path_index("leg"), origin)
    print(
        f"\nfull closure: {len(everywhere)} of {len(stations) - 1} other "
        "stations reachable"
    )

    # The closure stays exact under updates — cut a trip and re-ask.
    victim = next(iter(db.store.relationships_of(stations[1]))).id
    db.delete_relationship(victim)
    print(
        f"after cancelling one trip: "
        f"{len(reachable_from(db.path_index('leg'), origin))} stations "
        f"reachable (index verified: {db.verify_index('leg')})"
    )


if __name__ == "__main__":
    main()
