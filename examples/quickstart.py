"""Quickstart: open a database, load data, query it, add a path index.

Run with::

    python examples/quickstart.py
"""

from repro import GraphDatabase, PlannerHints


def main() -> None:
    db = GraphDatabase()

    # -- Write data (Cypher or the direct API — both work) -------------------
    db.execute(
        "CREATE (ada:Person {name: 'Ada'})-[:KNOWS]->"
        "(grace:Person {name: 'Grace'})"
    ).consume()
    edsger = db.create_node(["Person"], {"name": "Edsger"})
    with db.begin() as tx:
        grace = db.execute(
            "MATCH (p:Person) WHERE p.name = 'Grace' RETURN p"
        ).to_list()[0]["p"]
        tx.create_relationship(int(grace), edsger, db.relationship_type("KNOWS"))
        tx.success()

    # -- Read with Cypher -----------------------------------------------------
    result = db.execute(
        "MATCH (a:Person)-[k:KNOWS]->(b:Person) "
        "RETURN a.name AS a, b.name AS b ORDER BY a"
    )
    print("friend-of pairs:")
    for row in result:
        print(f"  {row['a']} -> {row['b']}")

    # -- Create a path index on the two-hop pattern ---------------------------
    stats = db.create_path_index(
        "friends_of_friends", "(:Person)-[:KNOWS]->(:Person)-[:KNOWS]->(:Person)"
    )
    print(
        f"\nindex '{stats.index_name}': {stats.cardinality} paths, "
        f"{stats.size_on_disk} bytes on disk, "
        f"initialized in {stats.seconds * 1e3:.2f} ms"
    )

    # -- The planner now answers the two-hop query straight from the index ----
    query = (
        "MATCH (a:Person)-[k1:KNOWS]->(b:Person)-[k2:KNOWS]->(c:Person) "
        "RETURN a.name AS a, c.name AS c"
    )
    print("\nplan:")
    print(db.explain(query, PlannerHints(path_index_cost_factor=0.1)))
    rows = db.execute(query, PlannerHints(path_index_cost_factor=0.1)).to_list()
    print(f"\ntwo-hop rows: {rows}")

    # -- Updates keep the index consistent automatically (Algorithm 1) --------
    db.execute("MATCH (a)-[k:KNOWS]->(b) WHERE a.name = 'Ada' DELETE k").consume()
    print(
        f"\nafter deleting Ada's edge the index holds "
        f"{db.path_index('friends_of_friends').cardinality} paths "
        f"(verified: {db.verify_index('friends_of_friends')})"
    )


if __name__ == "__main__":
    main()
