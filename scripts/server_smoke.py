"""CI smoke test for the network server.

Boots ``python -m repro.server`` as a real subprocess on a temp durable
database and an ephemeral port, hammers it with 8 concurrent client
threads running a mixed read/write workload, checks every remote row set
against in-process ``db.execute()``, then SIGTERMs the server and asserts
a clean graceful drain (exit code 0, ``server drained cleanly`` printed)
and that the WAL recovered state matches what the clients wrote.

Run from the repo root::

    PYTHONPATH=src python scripts/server_smoke.py
"""

import os
import sys
import tempfile
import threading

from _smoke_common import SmokeProcess, connect_with_backoff

from repro import GraphDatabase  # noqa: E402
from repro.client import Client  # noqa: E402

THREADS = 8
WRITES_PER_WRITER = 25


def worker(index: int, host: str, port: int, failures: list) -> None:
    try:
        with Client(host, port) as client:
            if index % 2 == 0:  # writer
                for i in range(WRITES_PER_WRITER):
                    outcome = client.execute(
                        f"CREATE (:S {{owner: {index}, i: {i}}})"
                    )
                    assert outcome.commit_lsn is not None, "write without LSN"
                mine = client.execute(
                    f"MATCH (n:S) WHERE n.owner = {index} RETURN n.i AS i"
                )
                got = sorted(row["i"] for row in mine.rows)
                assert got == list(range(WRITES_PER_WRITER)), got
            else:  # reader
                for _ in range(WRITES_PER_WRITER):
                    outcome = client.execute("MATCH (n:S) RETURN n.i AS i")
                    assert outcome.row_count >= 0
    except Exception as exc:  # noqa: BLE001 - surfaced in main
        failures.append((index, exc))


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "db")
        smoke = SmokeProcess(
            ["-m", "repro.server", "--data", data_dir, "--port", "0"]
        )
        host, port = smoke.host, smoke.port
        try:
            # First contact retries with backoff; a dead server fails fast
            # with its captured stderr instead of a bare refused connect.
            connect_with_backoff(host, port, process=smoke).close()
            failures: list = []
            threads = [
                threading.Thread(target=worker, args=(i, host, port, failures))
                for i in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            if failures:
                for index, exc in failures:
                    print(f"client {index} failed: {exc!r}", file=sys.stderr)
                return 1

            with Client(host, port) as client:
                remote_rows = client.execute(
                    "MATCH (n:S) RETURN n.owner AS owner, n.i AS i"
                ).rows
        finally:
            returncode, output = smoke.drain()

        if returncode != 0:
            print(f"server exited {returncode}:\n{output}", file=sys.stderr)
            return 1
        if "server drained cleanly" not in output:
            print(f"no clean-drain marker in output:\n{output}", file=sys.stderr)
            return 1

        # Recover the WAL in-process: rows must match what clients saw.
        db = GraphDatabase.open(data_dir)
        try:
            local = db.execute("MATCH (n:S) RETURN n.owner AS owner, n.i AS i")
            local_rows = [
                {column: row.get(column) for column in local.columns}
                for row in local.to_list()
            ]
        finally:
            db.close()
        key = lambda row: (row["owner"], row["i"])  # noqa: E731
        if sorted(remote_rows, key=key) != sorted(local_rows, key=key):
            print("network rows differ from recovered in-process rows", file=sys.stderr)
            return 1
        expected = (THREADS // 2) * WRITES_PER_WRITER
        if len(local_rows) != expected:
            print(f"expected {expected} rows, found {len(local_rows)}", file=sys.stderr)
            return 1

    print(
        f"server smoke OK: {THREADS} concurrent clients, "
        f"{expected} durable rows, graceful drain"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
