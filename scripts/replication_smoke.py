"""CI gate for the replication topology: leader + replicas + router.

Boots four real subprocesses — 1 leader, 2 ``--replica-of`` replicas, and
1 ``repro.router`` front end — then runs 8 mixed read/write clients
against the *router*. Asserts:

* every client's reads are never stale w.r.t. its own writes
  (read-your-writes through the router);
* the final row set read through the router matches a single-node
  in-process run of the same deterministic write sequence;
* both replicas report ``replica_lag_lsn == 0`` once the traffic stops;
* SIGTERM drains all four processes cleanly (exit 0, drain markers).

Run from the repo root::

    PYTHONPATH=src python scripts/replication_smoke.py
"""

import os
import sys
import tempfile
import threading
import time

from _smoke_common import SmokeProcess, connect_with_backoff

from repro import GraphDatabase  # noqa: E402

CLIENTS = 8
WRITES_PER_WRITER = 20


def start_topology(tmp: str):
    leader = SmokeProcess(
        ["-m", "repro.server", "--data", os.path.join(tmp, "leader"), "--port", "0"]
    )
    leader_name = f"{leader.host}:{leader.port}"
    replicas = [
        SmokeProcess(
            [
                "-m",
                "repro.server",
                "--data",
                os.path.join(tmp, f"replica{i}"),
                "--port",
                "0",
                "--replica-of",
                leader_name,
            ]
        )
        for i in range(2)
    ]
    router_args = ["-m", "repro.router", "--port", "0", "--leader", leader_name]
    for replica in replicas:
        router_args += ["--replica", f"{replica.host}:{replica.port}"]
    router_args += ["--health-interval-s", "0.05"]
    router = SmokeProcess(router_args)
    return leader, replicas, router


def worker(index: int, host: str, port: int, failures: list) -> None:
    try:
        with connect_with_backoff(host, port) as client:
            if index % 2 == 0:  # writer with read-your-writes checks
                for i in range(WRITES_PER_WRITER):
                    outcome = client.execute(
                        f"CREATE (:S {{owner: {index}, i: {i}}})"
                    )
                    assert outcome.commit_lsn is not None, "write without LSN"
                    if i % 5 == 4:
                        mine = client.execute(
                            f"MATCH (n:S) WHERE n.owner = {index} "
                            "RETURN n.i AS i"
                        )
                        got = sorted(row["i"] for row in mine.rows)
                        assert got == list(range(i + 1)), (
                            f"stale read-your-writes: {got} after write {i}"
                        )
            else:  # reader
                for _ in range(WRITES_PER_WRITER):
                    client.execute("MATCH (n:S) RETURN n.i AS i")
    except Exception as exc:  # noqa: BLE001 - surfaced in main
        failures.append((index, exc))


def single_node_rows():
    """The same deterministic write set, applied to a throwaway in-process
    database — the oracle the replicated topology must match."""
    db = GraphDatabase()
    try:
        for index in range(0, CLIENTS, 2):
            for i in range(WRITES_PER_WRITER):
                db.execute(f"CREATE (:S {{owner: {index}, i: {i}}})").consume()
        result = db.execute("MATCH (n:S) RETURN n.owner AS owner, n.i AS i")
        return sorted(
            ({"owner": row.get("owner"), "i": row.get("i")} for row in result),
            key=lambda row: (row["owner"], row["i"]),
        )
    finally:
        db.close()


def wait_for_zero_lag(replicas, timeout_s=30.0) -> None:
    deadline = time.monotonic() + timeout_s
    for replica in replicas:
        with connect_with_backoff(replica.host, replica.port, process=replica) as client:
            while True:
                status = client.status()
                if (
                    status.get("replica_connected")
                    and status.get("replica_lag_lsn") == 0
                ):
                    break
                if time.monotonic() >= deadline:
                    raise AssertionError(
                        f"replica {replica.host}:{replica.port} stuck at "
                        f"lag {status.get('replica_lag_lsn')} "
                        f"(status {status})"
                    )
                time.sleep(0.05)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        leader, replicas, router = start_topology(tmp)
        everything = [router, *replicas, leader]
        try:
            failures: list = []
            threads = [
                threading.Thread(
                    target=worker, args=(i, router.host, router.port, failures)
                )
                for i in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            if failures:
                for index, exc in failures:
                    print(f"client {index} failed: {exc!r}", file=sys.stderr)
                return 1

            wait_for_zero_lag(replicas)

            with connect_with_backoff(router.host, router.port) as client:
                routed = sorted(
                    client.execute(
                        "MATCH (n:S) RETURN n.owner AS owner, n.i AS i"
                    ).rows,
                    key=lambda row: (row["owner"], row["i"]),
                )
                status = client.status()
            expected = single_node_rows()
            if routed != expected:
                print(
                    f"routed rows differ from single-node run: "
                    f"{len(routed)} vs {len(expected)}",
                    file=sys.stderr,
                )
                return 1

            # Each replica must also agree, read directly.
            for replica in replicas:
                with connect_with_backoff(
                    replica.host, replica.port, process=replica
                ) as client:
                    direct = sorted(
                        client.execute(
                            "MATCH (n:S) RETURN n.owner AS owner, n.i AS i"
                        ).rows,
                        key=lambda row: (row["owner"], row["i"]),
                    )
                if direct != expected:
                    print(
                        f"replica {replica.host}:{replica.port} diverged",
                        file=sys.stderr,
                    )
                    return 1
        finally:
            results = [proc.drain() for proc in everything]

        ok = True
        for proc, (returncode, output) in zip(everything, results):
            marker = (
                "router drained cleanly"
                if "repro.router" in proc.args
                else "server drained cleanly"
            )
            if returncode != 0 or marker not in output:
                print(
                    f"{' '.join(proc.args)} did not drain cleanly "
                    f"(exit {returncode}):\n{output}",
                    file=sys.stderr,
                )
                ok = False
        if not ok:
            return 1

    print(
        f"replication smoke OK: 1 leader + 2 replicas + 1 router, "
        f"{CLIENTS} mixed clients, {len(expected)} rows byte-identical to "
        f"single-node, lag drained to 0, all four drained cleanly "
        f"(reroutes={status.get('reroutes')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
