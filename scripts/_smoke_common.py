"""Shared plumbing for the CI smoke scripts: subprocess lifecycle.

The smoke scripts boot real ``python -m repro.server`` / ``repro.router``
subprocesses. Two failure modes used to make their flakes unreadable:

* the old code blocked on one ``readline()`` for the listening banner — a
  subprocess that died during import produced ``unexpected server banner:
  ''`` with the actual traceback swallowed;
* the first client connect raced the listener under load.

:class:`SmokeProcess` fixes both: a pump thread captures *all* output, the
banner wait has a deadline and reports the full captured output (including
the subprocess's stderr, which is merged into stdout) when the process
dies early, and :func:`connect_with_backoff` retries the initial connect
instead of sleeping a fixed amount.
"""

import os
import signal
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.client import Client  # noqa: E402


class SmokeProcess:
    """A repro subprocess plus its captured output and listening address."""

    def __init__(self, module_args, banner_timeout_s=30.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env.setdefault("PYTHONUNBUFFERED", "1")
        self.args = list(module_args)
        self.process = subprocess.Popen(
            [sys.executable, *self.args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.captured: list[str] = []
        self._eof = threading.Event()
        self._pump = threading.Thread(target=self._read_all, daemon=True)
        self._pump.start()
        self.host, self.port = self._await_banner(banner_timeout_s)

    def _read_all(self) -> None:
        for line in self.process.stdout:
            self.captured.append(line)
        self._eof.set()

    def output(self) -> str:
        return "".join(self.captured)

    def _await_banner(self, timeout_s: float) -> tuple[str, int]:
        deadline = time.monotonic() + timeout_s
        scanned = 0
        while True:
            lines = self.captured
            while scanned < len(lines):
                line = lines[scanned].strip()
                scanned += 1
                if line.startswith("listening on "):
                    host, _, port = line.removeprefix(
                        "listening on "
                    ).rpartition(":")
                    return host, int(port)
            if self._eof.is_set():
                self.process.wait()
                raise RuntimeError(
                    f"{' '.join(self.args)} exited "
                    f"{self.process.returncode} before listening; "
                    f"output:\n{self.output()}"
                )
            if time.monotonic() >= deadline:
                self.process.kill()
                raise RuntimeError(
                    f"{' '.join(self.args)} produced no listening banner "
                    f"within {timeout_s:.0f}s; output so far:\n{self.output()}"
                )
            time.sleep(0.02)

    def check_alive(self) -> None:
        """Raise (with the captured output) if the subprocess died."""
        if self.process.poll() is not None:
            raise RuntimeError(
                f"{' '.join(self.args)} died (exit {self.process.returncode}); "
                f"output:\n{self.output()}"
            )

    def drain(self, timeout_s: float = 60.0) -> tuple[int, str]:
        """SIGTERM, wait for exit, return (returncode, full output)."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
        self._pump.join(timeout=10)
        return self.process.returncode, self.output()

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait()


def connect_with_backoff(
    host: str,
    port: int,
    timeout_s: float = 15.0,
    process: SmokeProcess = None,
    **client_kw,
) -> Client:
    """Connect a client, retrying with exponential backoff. When
    ``process`` is given and dies mid-retry, fail immediately with its
    captured output instead of burning the whole deadline."""
    deadline = time.monotonic() + timeout_s
    delay = 0.05
    while True:
        if process is not None:
            process.check_alive()
        try:
            return Client(host, port, **client_kw)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"could not connect to {host}:{port} within "
                    f"{timeout_s:.0f}s: {exc}"
                ) from exc
            time.sleep(delay)
            delay = min(delay * 2, 0.5)
