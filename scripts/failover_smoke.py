"""CI gate for controlled failover: kill the leader, promote, re-point.

Boots four real subprocesses — 1 leader (on a pre-allocated port so it can
be revived at the same address), 2 ``--replica-of`` replicas, and 1
``repro.router`` — then:

1. runs writer threads against the *router* and SIGKILLs the leader in the
   middle of the write load;
2. plays operator: PROMOTE replica 0, REPOINT replica 1 at it, and waits
   for the router's health loop to re-point writes (highest epoch wins);
3. reconciles: every planned row is confirmed-or-recreated through the
   router (asynchronous shipping may have lost acknowledged writes above
   the divergence point; ambiguous mid-kill writes may have landed — the
   check-then-create pass resolves both without duplicates);
4. revives the dead leader *as a leader* on its original port and asserts
   the router's epoch gossip fences it (it never acknowledges a write);
5. restarts it as a replica of the promoted node and asserts it re-seeds —
   divergent tail discarded — and converges;
6. asserts the final row set read through the router, from the surviving
   replica, and from the rejoined old leader is byte-identical to a
   single-node in-process run of the same planned writes, and that the
   three surviving processes drain cleanly on SIGTERM.

Run from the repo root::

    PYTHONPATH=src python scripts/failover_smoke.py
"""

import os
import socket
import sys
import tempfile
import threading
import time

from _smoke_common import SmokeProcess, connect_with_backoff

from repro import GraphDatabase  # noqa: E402
from repro.errors import ReproError, StaleEpochError  # noqa: E402

WRITERS = 4
WRITES_PER_WRITER = 15


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_topology(tmp: str, leader_port: int):
    leader = SmokeProcess(
        [
            "-m",
            "repro.server",
            "--data",
            os.path.join(tmp, "leader"),
            "--port",
            str(leader_port),
        ]
    )
    leader_name = f"{leader.host}:{leader.port}"
    replicas = [
        SmokeProcess(
            [
                "-m",
                "repro.server",
                "--data",
                os.path.join(tmp, f"replica{i}"),
                "--port",
                "0",
                "--replica-of",
                leader_name,
            ]
        )
        for i in range(2)
    ]
    router_args = ["-m", "repro.router", "--port", "0", "--leader", leader_name]
    for replica in replicas:
        router_args += ["--replica", f"{replica.host}:{replica.port}"]
    router_args += ["--health-interval-s", "0.05", "--write-retry-backoff-s", "0.02"]
    router = SmokeProcess(router_args)
    return leader, replicas, router


def writer(index, router, kill_leader_at, killed, failures):
    """Write this owner's rows through the router. Writes that fail during
    the failover window are left to the reconciliation pass — losing an
    ACK here is exactly the ambiguity failover creates, and blind retries
    could double-apply."""
    try:
        with connect_with_backoff(router.host, router.port) as client:
            for i in range(WRITES_PER_WRITER):
                if index == 0 and i == kill_leader_at:
                    killed.set()
                if not killed.is_set():
                    client.execute(
                        f"CREATE (:S {{owner: {index}, i: {i}}})", retries=2
                    )
                    continue
                try:
                    client.execute(
                        f"CREATE (:S {{owner: {index}, i: {i}}})",
                        retries=3,
                        retry_backoff_s=0.1,
                    )
                except (ReproError, OSError):
                    pass  # reconciled after the promotion settles
    except Exception as exc:  # noqa: BLE001 - surfaced in main
        failures.append((index, exc))


def wait_for(description, predicate, timeout_s=30.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {description}")
        time.sleep(interval_s)


def wait_replica_converged(replica, leader_applied_of, timeout_s=60.0):
    """A replica is converged when it is connected on the current stream
    and has applied the (new) leader's current LSN. LSNs are only
    comparable on one timeline, so the leader watermark is re-read every
    poll."""
    with connect_with_backoff(
        replica.host, replica.port, process=replica
    ) as client:
        def caught_up():
            status = client.status()
            return (
                status.get("replica_connected")
                and status.get("epoch") == 2
                and status.get("replica_applied_lsn") == leader_applied_of()
            )

        wait_for(
            f"replica {replica.host}:{replica.port} to converge",
            caught_up,
            timeout_s=timeout_s,
        )


def reconcile(router, planned):
    """Confirm-or-recreate every planned row through the router: the
    check-then-create is race-free (single thread, quiesced writers, and
    the session's read-your-writes token covers its own creates)."""
    recreated = 0
    with connect_with_backoff(router.host, router.port) as client:
        for owner, i in planned:
            count = client.execute(
                f"MATCH (n:S) WHERE n.owner = {owner} AND n.i = {i} "
                "RETURN count(n) AS c",
                retries=8,
                retry_backoff_s=0.1,
            ).rows[0]["c"]
            if count == 0:
                client.execute(
                    f"CREATE (:S {{owner: {owner}, i: {i}}})",
                    retries=8,
                    retry_backoff_s=0.1,
                )
                recreated += 1
            elif count != 1:
                raise AssertionError(
                    f"duplicate application: ({owner}, {i}) appears {count}×"
                )
    return recreated


def read_rows(host, port, process=None):
    with connect_with_backoff(host, port, process=process) as client:
        return sorted(
            client.execute("MATCH (n:S) RETURN n.owner AS owner, n.i AS i").rows,
            key=lambda row: (row["owner"], row["i"]),
        )


def single_node_rows():
    db = GraphDatabase()
    try:
        for owner in range(WRITERS):
            for i in range(WRITES_PER_WRITER):
                db.execute(f"CREATE (:S {{owner: {owner}, i: {i}}})").consume()
        result = db.execute("MATCH (n:S) RETURN n.owner AS owner, n.i AS i")
        return sorted(
            ({"owner": row.get("owner"), "i": row.get("i")} for row in result),
            key=lambda row: (row["owner"], row["i"]),
        )
    finally:
        db.close()


def main() -> int:
    leader_port = free_port()
    with tempfile.TemporaryDirectory() as tmp:
        leader, replicas, router = start_topology(tmp, leader_port)
        new_leader, survivor = replicas
        new_leader_name = f"{new_leader.host}:{new_leader.port}"
        drained = []
        try:
            # Phase 1: write load through the router; SIGKILL the leader
            # once writer 0 reaches the kill index.
            failures: list = []
            killed = threading.Event()
            threads = [
                threading.Thread(
                    target=writer, args=(i, router, 5, killed, failures)
                )
                for i in range(WRITERS)
            ]
            for thread in threads:
                thread.start()
            killed.wait(timeout=60)
            leader.kill()  # SIGKILL: no drain, no goodbye
            print("leader SIGKILLed mid-write-load", flush=True)

            # Phase 2: operator promotes replica 0, re-points replica 1.
            with connect_with_backoff(
                new_leader.host, new_leader.port, process=new_leader
            ) as client:
                promoted = client.promote()
            assert promoted["epoch"] == 2, promoted
            print(f"promoted {new_leader_name}: {promoted}", flush=True)
            with connect_with_backoff(
                survivor.host, survivor.port, process=survivor
            ) as client:
                client.repoint(new_leader_name)
            with connect_with_backoff(router.host, router.port) as client:
                wait_for(
                    "router to re-point writes at the promoted node",
                    lambda: client.status().get("leader") == new_leader_name,
                )
                status = client.status()
            assert status.get("highest_epoch") == 2, status
            print(f"router re-pointed writes at {new_leader_name}", flush=True)

            for thread in threads:
                thread.join(timeout=300)
            if failures:
                for index, exc in failures:
                    print(f"writer {index} failed: {exc!r}", file=sys.stderr)
                return 1

            # Phase 3: reconcile — async shipping may have lost acked
            # writes above the divergence point; re-create them on the new
            # timeline. Quiesce the survivor first so bounded-stale reads
            # are exact.
            def new_leader_applied():
                with connect_with_backoff(
                    new_leader.host, new_leader.port, process=new_leader
                ) as client:
                    return client.status().get("applied_lsn")

            wait_replica_converged(survivor, new_leader_applied)
            planned = [
                (owner, i)
                for owner in range(WRITERS)
                for i in range(WRITES_PER_WRITER)
            ]
            recreated = reconcile(router, planned)
            print(
                f"reconciled: {recreated} of {len(planned)} rows re-created "
                "on the new timeline",
                flush=True,
            )

            # Phase 4: revive the old leader as a leader on its original
            # port — the router's epoch gossip must fence it.
            revived = SmokeProcess(
                [
                    "-m",
                    "repro.server",
                    "--data",
                    os.path.join(tmp, "leader"),
                    "--port",
                    str(leader_port),
                ]
            )
            try:
                with connect_with_backoff(
                    revived.host, revived.port, process=revived
                ) as client:
                    wait_for(
                        "router gossip to fence the revived old leader",
                        lambda: client.status().get("fenced"),
                    )
                    try:
                        client.execute("CREATE (:S {owner: -1, i: -1})")
                        print(
                            "fenced old leader acknowledged a write",
                            file=sys.stderr,
                        )
                        return 1
                    except StaleEpochError:
                        pass
                print("revived old leader fenced, write rejected", flush=True)
            finally:
                revived.drain()

            # Phase 5: rejoin the old leader as a replica of the promoted
            # node; its divergent tail is discarded by the snapshot
            # reseed and it converges to the new timeline.
            rejoined = SmokeProcess(
                [
                    "-m",
                    "repro.server",
                    "--data",
                    os.path.join(tmp, "leader"),
                    "--port",
                    str(leader_port),
                    "--replica-of",
                    new_leader_name,
                ]
            )
            try:
                wait_replica_converged(rejoined, new_leader_applied)
                print("old leader rejoined as replica and converged", flush=True)

                # Phase 6: byte-identical everywhere.
                expected = single_node_rows()
                routed = read_rows(router.host, router.port)
                if routed != expected:
                    print(
                        f"routed rows differ from single-node run: "
                        f"{len(routed)} vs {len(expected)}",
                        file=sys.stderr,
                    )
                    return 1
                for name, proc in (
                    ("survivor replica", survivor),
                    ("rejoined old leader", rejoined),
                ):
                    direct = read_rows(proc.host, proc.port, process=proc)
                    if direct != expected:
                        print(f"{name} diverged", file=sys.stderr)
                        return 1
            finally:
                rejoined.drain()
        finally:
            for proc in (router, survivor, new_leader):
                drained.append((proc, proc.drain()))
            leader.kill()

        ok = True
        for proc, (returncode, output) in drained:
            marker = (
                "router drained cleanly"
                if "repro.router" in proc.args
                else "server drained cleanly"
            )
            if returncode != 0 or marker not in output:
                print(
                    f"{' '.join(proc.args)} did not drain cleanly "
                    f"(exit {returncode}):\n{output}",
                    file=sys.stderr,
                )
                ok = False
        if not ok:
            return 1

    print(
        f"failover smoke OK: leader SIGKILLed mid-load, epoch 2 promoted, "
        f"router re-pointed, {recreated} lost writes reconciled, revived "
        f"old leader fenced then rejoined, {len(expected)} rows "
        "byte-identical to single-node on router + survivor + rejoined"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
