"""CI gate for MVCC read latency under write contention.

Boots ``python -m repro.server`` as a real subprocess, seeds a small
graph over the wire, then measures reader latency twice with 8 reader
connections: first with the writers idle (baseline), then with 2 writer
connections committing continuously. Snapshot reads never take a lock,
so a concurrent writer may cost readers GIL share but must not serialize
them behind commits: the gate fails if contended reader p95 exceeds
``P95_BUDGET``x the writer-idle baseline p95. It also fails on any row
drift — every read must return the full seeded row set regardless of
concurrent commits.

Run from the repo root::

    PYTHONPATH=src python scripts/contention_smoke.py
"""

import os
import sys
import tempfile
import threading
import time

from _smoke_common import SmokeProcess, connect_with_backoff

from repro.client import Client  # noqa: E402

READERS = 8
WRITERS = 2
SEED_ROWS = 120
READS_PER_PHASE = 12
P95_BUDGET = 3.0
READ_QUERY = "MATCH (n:Seed) RETURN n.i AS i"


def read_phase(host: str, port: int, failures: list) -> list:
    """8 concurrent readers, each timing READS_PER_PHASE full scans.

    Every scan must return the complete seeded row set; returns the
    pooled per-query latencies.
    """
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    expected = sorted(range(SEED_ROWS))

    def reader(slot: int) -> None:
        try:
            with Client(host, port) as client:
                for _ in range(READS_PER_PHASE):
                    started = time.perf_counter()
                    outcome = client.execute(READ_QUERY)
                    latencies[slot].append(time.perf_counter() - started)
                    got = sorted(row["i"] for row in outcome.rows)
                    if got != expected:
                        raise AssertionError(
                            f"reader {slot} saw {len(got)} rows, "
                            f"expected {SEED_ROWS}"
                        )
        except Exception as exc:  # noqa: BLE001 - surfaced in main
            failures.append(("reader", slot, exc))

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return sorted(value for bucket in latencies for value in bucket)


def percentile(sorted_values: list, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "db")
        smoke = SmokeProcess(
            ["-m", "repro.server", "--data", data_dir, "--port", "0"]
        )
        host, port = smoke.host, smoke.port
        try:
            with connect_with_backoff(host, port, process=smoke) as client:
                for i in range(SEED_ROWS):
                    client.execute(f"CREATE (:Seed {{i: {i}}})")

            failures: list = []
            baseline = read_phase(host, port, failures)
            if failures:
                for role, slot, exc in failures:
                    print(f"{role} {slot} failed: {exc!r}", file=sys.stderr)
                return 1

            stop = threading.Event()
            commits = [0] * WRITERS

            def writer(slot: int) -> None:
                try:
                    with Client(host, port) as client:
                        marker = 0
                        while not stop.is_set():
                            client.execute(
                                f"CREATE (:Churn {{w: {slot}, m: {marker}}})"
                            )
                            marker += 1
                            commits[slot] += 1
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(("writer", slot, exc))

            writer_threads = [
                threading.Thread(target=writer, args=(slot,))
                for slot in range(WRITERS)
            ]
            for thread in writer_threads:
                thread.start()
            try:
                contended = read_phase(host, port, failures)
            finally:
                stop.set()
                for thread in writer_threads:
                    thread.join(timeout=60)
            if failures:
                for role, slot, exc in failures:
                    print(f"{role} {slot} failed: {exc!r}", file=sys.stderr)
                return 1
        finally:
            returncode, output = smoke.drain()

        if returncode != 0:
            print(f"server exited {returncode}:\n{output}", file=sys.stderr)
            return 1

    idle_p95 = percentile(baseline, 0.95)
    contended_p95 = percentile(contended, 0.95)
    total_commits = sum(commits)
    if total_commits == 0:
        print("writers never committed; contention never happened", file=sys.stderr)
        return 1
    ratio = contended_p95 / idle_p95 if idle_p95 > 0 else float("inf")
    verdict = "OK" if ratio <= P95_BUDGET else "FAIL"
    print(
        f"contention smoke {verdict}: reader p95 {idle_p95 * 1e3:.1f} ms idle "
        f"-> {contended_p95 * 1e3:.1f} ms under {WRITERS} writers "
        f"({ratio:.2f}x, budget {P95_BUDGET:.1f}x, "
        f"{total_commits} concurrent commits, {READERS} readers)"
    )
    if ratio > P95_BUDGET:
        print(
            "reader tail latency under write load blew the budget — "
            "snapshot reads are waiting on writers somewhere",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
