"""``python -m repro.router`` — the read-routing front door.

Usage::

    python -m repro.router --leader 127.0.0.1:7687 \
        --replica 127.0.0.1:7688 --replica 127.0.0.1:7689 --port 7686

Clients connect to the router exactly as they would to a server (the
shell's ``:connect``, the :class:`~repro.client.Client`, the benchmarks);
writes are forwarded to the leader and reads are spread across healthy,
sufficiently-caught-up replicas with per-session read-your-writes.

The first stdout line is ``listening on HOST:PORT`` (same contract as the
server, so smoke wrappers can discover an ephemeral port); on SIGTERM or
SIGINT it drains and prints ``router drained cleanly``.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import Optional

from repro.router import Router, RouterConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.router",
        description="pathindex-repro read router (binary protocol)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7686, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--leader",
        required=True,
        metavar="HOST:PORT",
        help="the write leader's address",
    )
    parser.add_argument(
        "--replica",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="a read replica's address (repeatable)",
    )
    parser.add_argument(
        "--auth-token", help="require this token from connecting clients"
    )
    parser.add_argument(
        "--backend-auth-token",
        help="token to present to the leader and replicas (defaults to "
        "--auth-token)",
    )
    parser.add_argument(
        "--max-lag-lsn",
        type=int,
        default=512,
        help="evict replicas lagging more than this many LSNs",
    )
    parser.add_argument(
        "--health-interval-s",
        type=float,
        default=0.2,
        help="replica STATUS poll interval",
    )
    parser.add_argument(
        "--write-retries",
        type=int,
        default=4,
        help="extra write-relay attempts across a failover window before "
        "surfacing a retryable leader-unavailable failure",
    )
    parser.add_argument(
        "--write-retry-backoff-s",
        type=float,
        default=0.05,
        help="first write-relay retry delay (doubles per attempt)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    router = Router(
        RouterConfig(
            leader=args.leader,
            replicas=tuple(args.replica),
            host=args.host,
            port=args.port,
            auth_token=args.auth_token,
            backend_auth_token=args.backend_auth_token or args.auth_token,
            max_lag_lsn=args.max_lag_lsn,
            health_interval_s=args.health_interval_s,
            write_retries=args.write_retries,
            write_retry_backoff_s=args.write_retry_backoff_s,
        )
    )
    host, port = router.start()
    print(f"listening on {host}:{port}", flush=True)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    print("draining...", flush=True)
    router.stop()
    print("router drained cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
