"""Protocol-transparent read router over one leader and N replicas.

The router accepts ordinary client sessions and proxies each request to a
backend, frame for frame. Writes go to the leader; reads round-robin over
replicas that are healthy *and* current enough for the session:

* every write's ``commit_lsn`` (sniffed from the relayed summary) becomes
  the session's read-your-writes token;
* a read is only sent to a replica whose last-polled applied LSN has
  reached the token, and the token rides along as ``require_lsn`` so the
  replica re-checks server-side (the poll is only eventually consistent);
* a replica that still answers with ``StalenessError`` — or drops the
  connection — costs a ``router.reroutes`` and the read moves on: next
  replica, ultimately the leader, which is always current.

Classification uses the same pure ``analyze(parse(query))`` pass the
servers run, memoised per query text; queries that do not parse are
forwarded to the leader so the client sees the backend's own error,
byte-identical to a single-server deployment.

Health: a poller thread issues STATUS to every backend. Lag above
``max_lag_lsn`` or repeated failures evict a replica from rotation
(``router.evictions``); a healthy poll within the bound re-admits it
(``router.readmissions``). Eviction only stops *new* reads — it never
interrupts a result mid-stream.

Failover: every poll gossips the highest leader epoch the router has
observed (fencing a stale leader server-side) and reads back each
backend's current role and epoch. Writes go to the live, unfenced
backend reporting role ``leader`` with the highest epoch — when a replica
is promoted, the health loop re-points writes at it (``router.repoints``)
and the old leader is re-admitted as a replica once it rejoins at the new
epoch. A write relay that cannot reach a writable leader retries with
bounded backoff and ultimately surfaces a structured, retryable
:class:`~repro.errors.LeaderUnavailableError` instead of hanging or
leaking a raw disconnect; a connection lost *after* a write was fully
sent is ambiguous (it may have applied) and surfaces immediately so the
client can read-back before retrying. Replicas still on a lower epoch
than the highest observed are evicted from read rotation until they
rejoin — their divergent tail must not serve reads on the new timeline.
"""

from __future__ import annotations

import hmac
import socket
import threading
from dataclasses import dataclass
from typing import Optional, Union

from repro import wire
from repro.cypher import analyze, parse
from repro.errors import (
    AuthenticationError,
    LeaderUnavailableError,
    ProtocolError,
    ReadOnlyReplicaError,
    ReproError,
    ServiceShutdownError,
    StaleEpochError,
    StalenessError,
)
from repro.replication.replica import parse_address
from repro.service.metrics import MetricsRegistry

_BANNER = "pathindex-repro-router/1"


@dataclass(frozen=True)
class RouterConfig:
    """Router endpoint, backend addresses, and staleness policy."""

    leader: Union[str, tuple[str, int]] = "127.0.0.1:7687"
    replicas: tuple = ()
    host: str = "127.0.0.1"
    port: int = 0
    auth_token: Optional[str] = None
    """Token our own clients must present (router-facing)."""

    backend_auth_token: Optional[str] = None
    """Token the router presents to the leader and replicas."""

    max_lag_lsn: int = 512
    """Bounded-staleness default: replicas lagging more than this many LSNs
    behind the leader's durable watermark are evicted from read rotation
    until they catch back up."""

    eviction_failures: int = 3
    """Consecutive failed health polls before a replica is evicted."""

    write_retries: int = 4
    """Extra attempts for a write relay after an unambiguous failure
    (connect refused, send failed, or a structured rejection from a
    demoted/fenced node) before surfacing a retryable
    :class:`~repro.errors.LeaderUnavailableError`."""

    write_retry_backoff_s: float = 0.05
    """First write-relay retry delay; doubles per attempt up to 1s."""

    health_interval_s: float = 0.2
    connect_timeout_s: float = 5.0
    io_timeout_s: float = 120.0
    handshake_timeout_s: float = 5.0


class _BackendState:
    """What the health poller knows about one backend (leader or replica).

    ``role`` and ``epoch`` are whatever the backend last reported — a
    PROMOTE flips a replica's role to ``leader`` under us, and a rejoined
    old leader reports ``replica``; the router follows the reports."""

    def __init__(self, address: tuple[str, int], role: str) -> None:
        self.address = address
        self.name = f"{address[0]}:{address[1]}"
        self.role = role  # configured role until the first healthy poll
        self.epoch = 0
        self.fenced = False
        self.alive = False
        self.applied_lsn = 0
        self.lag_lsn = 0
        self.failures = 0
        self.evicted = True  # joins rotation on its first healthy poll
        self.polled = False

    def fields(self) -> dict:
        return {
            "address": self.name,
            "role": self.role,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "alive": self.alive,
            "applied_lsn": self.applied_lsn,
            "lag_lsn": self.lag_lsn,
            "evicted": self.evicted,
            "failures": self.failures,
        }


class _Backend:
    """One blocking protocol connection to a leader or replica."""

    def __init__(
        self,
        address: tuple[str, int],
        auth_token: Optional[str],
        connect_timeout_s: float,
        io_timeout_s: float,
    ) -> None:
        self.address = address
        self.sock = socket.create_connection(address, timeout=connect_timeout_s)
        self.sock.settimeout(io_timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.reader = wire.FrameReader()
        hello: dict = {
            "versions": list(wire.SUPPORTED_VERSIONS),
            "client": "repro.router",
        }
        if auth_token is not None:
            hello["auth"] = {"token": auth_token}
        self.send(wire.MSG_HELLO, hello)
        self.expect_success()

    def send(self, tag: int, fields: dict) -> None:
        self.sock.sendall(wire.encode_frame(tag, fields))

    def recv(self) -> tuple[int, dict]:
        while True:
            frame = self.reader.pop()
            if frame is not None:
                return frame
            data = self.sock.recv(1 << 16)
            if not data:
                self.reader.close()
                raise ProtocolError("backend closed the connection")
            self.reader.feed(data)

    def expect_success(self) -> dict:
        tag, fields = self.recv()
        if tag == wire.MSG_FAILURE:
            wire.raise_failure(fields)
        if tag != wire.MSG_SUCCESS:
            raise ProtocolError(
                f"expected SUCCESS, got {wire.MESSAGE_NAMES.get(tag, tag)}"
            )
        return fields

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class Router:
    """Accept loop + health poller; one :class:`_Session` per connection."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.leader = parse_address(config.leader)
        leader_state = _BackendState(self.leader, "leader")
        self.backends = [leader_state] + [
            _BackendState(parse_address(address), "replica")
            for address in config.replicas
        ]
        self.metrics = MetricsRegistry()
        self.leader_applied = 0
        self.highest_epoch = 0
        self._write_target = leader_state
        self._lock = threading.Lock()
        self._rr = 0
        self._classify_cache: dict[str, Optional[bool]] = {}
        self._sessions: dict[int, "_Session"] = {}
        self._next_session = 1
        self._health_backends: dict[tuple[str, int], _Backend] = {}
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self.address: Optional[tuple[str, int]] = None

    @property
    def replicas(self) -> list:
        """Backends currently acting as replicas — the read rotation pool.
        Membership is dynamic: a promoted replica leaves, a rejoined old
        leader enters."""
        return [state for state in self.backends if state.role == "replica"]

    @property
    def write_target(self) -> _BackendState:
        """The backend writes are currently pointed at."""
        return self._write_target

    def write_target_address(self) -> tuple[str, int]:
        return self._write_target.address

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        if self._listener is not None:
            raise RuntimeError("router already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        for target, name in (
            (self._accept_loop, "repro-router-accept"),
            (self._health_loop, "repro-router-health"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.address

    def stop(self) -> None:
        """Stop accepting, close every session and backend (idempotent)."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads.clear()
        for backend in self._health_backends.values():
            backend.close()
        self._health_backends.clear()

    def __enter__(self) -> "Router":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept / health threads
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            listener = self._listener
            if listener is None:
                return
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                session_id = self._next_session
                self._next_session += 1
            session = _Session(self, conn, session_id)
            with self._lock:
                self._sessions[session_id] = session
            self.metrics.counter("router.sessions").inc()
            threading.Thread(
                target=session.run,
                name=f"repro-router-session-{session_id}",
                daemon=True,
            ).start()

    def _drop_session(self, session_id: int) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def _health_loop(self) -> None:
        while not self._stop.is_set():
            for state in self.backends:
                self._poll_backend(state)
            self._update_write_target()
            self._stop.wait(self.config.health_interval_s)

    def _poll_backend(self, state: _BackendState) -> None:
        config = self.config
        backend = self._health_backends.get(state.address)
        try:
            if backend is None:
                backend = _Backend(
                    state.address,
                    config.backend_auth_token,
                    config.connect_timeout_s,
                    min(config.io_timeout_s, 5.0),
                )
                self._health_backends[state.address] = backend
            # Gossip the highest epoch we have observed: a stale leader
            # hearing of a newer one fences itself server-side, so it
            # rejects writes even from clients that bypass the router.
            backend.send(wire.MSG_STATUS, {"epoch": self.highest_epoch})
            fields = backend.expect_success()
        except (ReproError, OSError, ValueError):
            self._health_backends.pop(state.address, None)
            if backend is not None:
                backend.close()
            state.failures += 1
            state.alive = False
            state.polled = True
            if not state.evicted and state.failures >= config.eviction_failures:
                state.evicted = True
                self.metrics.counter("router.evictions").inc()
            return
        state.failures = 0
        state.polled = True
        state.alive = True
        role = fields.get("role")
        if role in ("leader", "replica"):
            state.role = role
        epoch = fields.get("epoch")
        if isinstance(epoch, int) and not isinstance(epoch, bool) and epoch > 0:
            state.epoch = epoch
            if epoch > self.highest_epoch:
                self.highest_epoch = epoch
        state.fenced = bool(fields.get("fenced"))
        state.applied_lsn = int(fields.get("applied_lsn") or 0)
        if state.role == "leader":
            # Leaders never serve routed reads; the current write target's
            # applied LSN is the watermark replicas lag against.
            state.evicted = True
            if state is self._write_target and not state.fenced:
                self.leader_applied = state.applied_lsn
            return
        # Lag as the replica sees it, or against the leader's applied LSN —
        # whichever is larger. A stalled replica stops learning the
        # leader's watermark, so its self-reported lag alone can flatline.
        state.lag_lsn = max(
            int(fields.get("replica_lag_lsn") or 0),
            self.leader_applied - state.applied_lsn,
        )
        # A replica still on an older epoch carries a possibly-divergent
        # tail; its LSNs are not comparable to the new timeline's, so it
        # must not serve reads until it rejoins at the current epoch.
        stale_epoch = bool(
            self.highest_epoch
            and state.epoch
            and state.epoch < self.highest_epoch
        )
        if state.lag_lsn > config.max_lag_lsn or stale_epoch:
            if not state.evicted:
                state.evicted = True
                self.metrics.counter("router.evictions").inc()
        elif state.evicted:
            state.evicted = False
            self.metrics.counter("router.readmissions").inc()

    def _update_write_target(self) -> None:
        """Point writes at the live, unfenced leader with the highest
        epoch. The epoch can only move up — a revived old leader on a
        stale epoch is never re-adopted, even if the promoted node is
        down (writes fail retryably until an operator promotes again)."""
        candidates = [
            state
            for state in self.backends
            if state.role == "leader" and state.alive and not state.fenced
        ]
        if not candidates:
            return
        best = max(candidates, key=lambda state: state.epoch)
        current = self._write_target
        if best is not current and best.epoch >= current.epoch:
            self._write_target = best
            self.leader_applied = best.applied_lsn
            self.metrics.counter("router.repoints").inc()

    # ------------------------------------------------------------------
    # Routing decisions
    # ------------------------------------------------------------------

    def classify(self, query: str) -> Optional[bool]:
        """True for a write, False for a read, None when the query does not
        parse (routed to the leader so its error is authoritative)."""
        with self._lock:
            if query in self._classify_cache:
                return self._classify_cache[query]
        try:
            is_write: Optional[bool] = analyze(parse(query)).is_write
        except ReproError:
            is_write = None
        with self._lock:
            if len(self._classify_cache) >= 4096:
                self._classify_cache.clear()
            self._classify_cache[query] = is_write
        return is_write

    def read_candidates(self, require_lsn: int) -> tuple[list, int]:
        """Replicas eligible for a read needing ``require_lsn``, in
        round-robin order, plus how many in-rotation replicas were skipped
        for lagging behind the token (each is a re-route)."""
        with self._lock:
            start = self._rr
            self._rr += 1
        rotation = [state for state in self.replicas if not state.evicted]
        if not rotation:
            return [], 0
        ordered = [
            rotation[(start + index) % len(rotation)]
            for index in range(len(rotation))
        ]
        eligible = [
            state for state in ordered if state.applied_lsn >= require_lsn
        ]
        return eligible, len(ordered) - len(eligible)

    def status_fields(self) -> dict:
        with self._lock:
            sessions = len(self._sessions)
        return {
            "role": "router",
            "leader": self._write_target.name,
            "configured_leader": f"{self.leader[0]}:{self.leader[1]}",
            "highest_epoch": self.highest_epoch,
            "backends": [state.fields() for state in self.backends],
            "replicas": [state.fields() for state in self.replicas],
            "sessions": sessions,
            "reroutes": self.metrics.counter("router.reroutes").value,
            "repoints": self.metrics.counter("router.repoints").value,
        }


class _Session:
    """One client connection: handshake, then proxy request by request."""

    def __init__(self, router: Router, sock: socket.socket, session_id: int) -> None:
        self.router = router
        self.config = router.config
        self.metrics = router.metrics
        self.session_id = session_id
        self.sock = sock
        self.reader = wire.FrameReader()
        self._closed = False
        # Per-session state
        self.token = 0  # read-your-writes: highest commit_lsn seen
        self._backends: dict[tuple[str, int], _Backend] = {}
        self._open: Optional[_Backend] = None  # backend holding an open result
        self._open_is_write = False
        self._statements: dict[int, tuple[str, Optional[bool]]] = {}
        self._next_statement = 1

    # -- plumbing -------------------------------------------------------

    def _send(self, tag: int, fields: dict) -> None:
        self.sock.sendall(wire.encode_frame(tag, fields))

    def _send_failure(self, exc: BaseException) -> None:
        self._send(wire.MSG_FAILURE, wire.failure_fields(exc))

    def _recv(self) -> Optional[tuple[int, dict]]:
        while True:
            frame = self.reader.pop()
            if frame is not None:
                return frame
            data = self.sock.recv(1 << 16)
            if not data:
                return None
            self.reader.feed(data)

    def _backend(self, address: tuple[str, int]) -> _Backend:
        backend = self._backends.get(address)
        if backend is None:
            backend = _Backend(
                address,
                self.config.backend_auth_token,
                self.config.connect_timeout_s,
                self.config.io_timeout_s,
            )
            self._backends[address] = backend
        return backend

    def _drop_backend(self, backend: _Backend) -> None:
        self._backends.pop(backend.address, None)
        backend.close()
        if self._open is backend:
            self._open = None

    def close(self) -> None:
        self._closed = True
        try:
            self.sock.close()
        except OSError:
            pass

    # -- main loop ------------------------------------------------------

    def run(self) -> None:
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.sock.settimeout(self.config.io_timeout_s)
            if not self._handshake():
                return
            while not self._closed:
                frame = self._recv()
                if frame is None:
                    return
                tag, fields = frame
                if tag == wire.MSG_GOODBYE:
                    return
                self._dispatch(tag, fields)
        except (OSError, ProtocolError):
            pass
        finally:
            for backend in self._backends.values():
                backend.close()
            self._backends.clear()
            try:
                self.sock.close()
            except OSError:
                pass
            self.router._drop_session(self.session_id)

    def _handshake(self) -> bool:
        self.sock.settimeout(self.config.handshake_timeout_s)
        try:
            frame = self._recv()
        except (socket.timeout, ProtocolError):
            return False
        self.sock.settimeout(self.config.io_timeout_s)
        if frame is None or frame[0] != wire.MSG_HELLO:
            return False
        fields = frame[1]
        versions = fields.get("versions")
        if not isinstance(versions, list):
            versions = []
        common = [v for v in wire.SUPPORTED_VERSIONS if v in versions]
        if not common:
            self._send_failure(
                ProtocolError(
                    f"no common protocol version (router speaks "
                    f"{list(wire.SUPPORTED_VERSIONS)}, client offered "
                    f"{versions})"
                )
            )
            return False
        expected = self.config.auth_token
        if expected is not None:
            auth = fields.get("auth")
            client_token = auth.get("token") if isinstance(auth, dict) else None
            if not isinstance(client_token, str) or not hmac.compare_digest(
                client_token, expected
            ):
                self._send_failure(
                    AuthenticationError("invalid or missing auth token")
                )
                return False
        self._send(
            wire.MSG_SUCCESS,
            {
                "version": max(common),
                "server": _BANNER,
                "session": self.session_id,
            },
        )
        return True

    def _dispatch(self, tag: int, fields: dict) -> None:
        if tag == wire.MSG_RUN:
            self._on_run(fields)
        elif tag in (wire.MSG_PULL, wire.MSG_DISCARD):
            self._relay_result(tag, fields)
        elif tag == wire.MSG_PREPARE:
            self._on_prepare(fields)
        elif tag == wire.MSG_RESET:
            self._on_reset()
        elif tag == wire.MSG_STATUS:
            self._send(wire.MSG_SUCCESS, self.router.status_fields())
        elif tag == wire.MSG_HELLO:
            self._send_failure(ProtocolError("session already started"))
        else:
            self._send_failure(
                ProtocolError(
                    f"unexpected {wire.MESSAGE_NAMES.get(tag, tag)} message "
                    "from client"
                )
            )

    # -- request handlers ----------------------------------------------

    def _on_run(self, fields: dict) -> None:
        if self._open is not None:
            self._send_failure(
                ProtocolError(
                    "previous result still open — PULL or DISCARD it first"
                )
            )
            return
        if self.router._stop.is_set():
            self._send_failure(ServiceShutdownError("router is draining"))
            return
        statement = fields.get("stmt")
        if statement is not None:
            known = self._statements.get(statement)
            if known is None:
                self._send_failure(
                    ProtocolError(f"unknown prepared statement id {statement}")
                )
                return
            query, is_write = known
        else:
            query = fields.get("query")
            if not isinstance(query, str) or not query:
                self._send_failure(
                    ProtocolError("RUN needs a 'query' string or a 'stmt' id")
                )
                return
            is_write = self.router.classify(query)
        require_lsn = fields.get("require_lsn")
        if require_lsn is not None and (
            isinstance(require_lsn, bool) or not isinstance(require_lsn, int)
        ):
            self._send_failure(ProtocolError("require_lsn must be an integer LSN"))
            return
        run_fields: dict = {"query": query}
        deadline = fields.get("deadline_s")
        if deadline is not None:
            run_fields["deadline_s"] = deadline
        if is_write is False:
            self._run_read(run_fields, require_lsn, bool(is_write))
        else:
            # A write — or unparseable text, which the leader rejects with
            # the same error a single server would.
            self.metrics.counter("router.writes").inc()
            self._run_on_leader(run_fields, is_write=True)

    def _run_read(
        self, run_fields: dict, require_lsn: Optional[int], is_write: bool
    ) -> None:
        # Read-your-writes by default; an explicit require_lsn (0 opts out)
        # overrides the session token.
        token = self.token if require_lsn is None else require_lsn
        self.metrics.counter("router.reads").inc()
        candidates, skipped = self.router.read_candidates(token)
        if skipped:
            self.metrics.counter("router.reroutes").inc(skipped)
        for state in candidates:
            backend_fields = dict(run_fields)
            if token:
                # Belt and braces: the poll that admitted this replica is
                # eventually consistent, so the replica re-checks.
                backend_fields["require_lsn"] = token
            try:
                backend = self._backend(state.address)
                backend.send(wire.MSG_RUN, backend_fields)
                tag, reply = backend.recv()
            except (OSError, ProtocolError):
                backend = self._backends.get(state.address)
                if backend is not None:
                    self._drop_backend(backend)
                state.failures += 1
                self.metrics.counter("router.reroutes").inc()
                continue
            if tag == wire.MSG_FAILURE:
                exc = wire.failure_exception(reply)
                if isinstance(exc, (StalenessError, ReadOnlyReplicaError)):
                    # Not current enough (or we misrouted a write-shaped
                    # query): try the next backend.
                    self.metrics.counter("router.reroutes").inc()
                    continue
                self._send(tag, reply)
                return
            if tag != wire.MSG_SUCCESS:
                self._drop_backend(backend)
                self.metrics.counter("router.reroutes").inc()
                continue
            self._open = backend
            self._open_is_write = False
            self._send(tag, reply)
            return
        # No replica could serve it: the leader always can.
        self._run_on_leader(run_fields, is_write=is_write)

    def _run_on_leader(self, run_fields: dict, is_write: bool) -> None:
        """Relay to the current write target with bounded retry-backoff.

        Only *unambiguous* failures are retried: a connect/send failure
        (nothing reached the backend) or a structured rejection from a
        node that turned out to be a replica or a fenced old leader (the
        write was refused, so retrying cannot double-apply). A connection
        lost after a write was fully sent is ambiguous — it may have
        executed — so it surfaces immediately as a retryable
        LeaderUnavailableError and the client decides (read-back, then
        retry). Reads carry no such risk and always retry."""
        attempts = max(1, self.config.write_retries + 1)
        delay = self.config.write_retry_backoff_s
        last_error: Optional[str] = None
        for attempt in range(attempts):
            if attempt:
                self.metrics.counter("router.write_retries").inc()
                # Back off so the health loop can observe a promotion and
                # re-point the target between attempts.
                if self.router._stop.wait(delay):
                    break
                delay = min(delay * 2, 1.0)
            address = self.router.write_target_address()
            sent = False
            try:
                backend = self._backend(address)
                backend.send(wire.MSG_RUN, run_fields)
                sent = True
                tag, reply = backend.recv()
            except (OSError, ProtocolError) as exc:
                stale = self._backends.get(address)
                if stale is not None:
                    self._drop_backend(stale)
                last_error = f"{type(exc).__name__}: {exc}"
                if sent and is_write:
                    self._send_failure(
                        LeaderUnavailableError(
                            "leader connection lost mid-request — the "
                            "write may or may not have applied "
                            f"({last_error}); verify before retrying"
                        )
                    )
                    return
                continue
            if tag == wire.MSG_FAILURE:
                exc = wire.failure_exception(reply)
                if (
                    isinstance(exc, (ReadOnlyReplicaError, StaleEpochError))
                    and attempt < attempts - 1
                ):
                    # The target was demoted or fenced under us; the write
                    # was rejected outright, so re-resolving and retrying
                    # is safe.
                    last_error = f"{type(exc).__name__}: {exc}"
                    self.metrics.counter("router.reroutes").inc()
                    continue
            if tag == wire.MSG_SUCCESS:
                self._open = backend
                self._open_is_write = is_write
            self._send(tag, reply)
            return
        self._send_failure(
            LeaderUnavailableError(
                f"no writable leader after {attempts} attempts"
                + (f" (last error: {last_error})" if last_error else "")
            )
        )

    def _relay_result(self, tag: int, fields: dict) -> None:
        backend = self._open
        if backend is None:
            verb = wire.MESSAGE_NAMES.get(tag, str(tag))
            self._send_failure(ProtocolError(f"no open result to {verb}"))
            return
        try:
            backend.send(tag, fields)
            while True:
                btag, bfields = backend.recv()
                if btag == wire.MSG_RECORD:
                    self._send(btag, bfields)
                    continue
                if btag == wire.MSG_SUCCESS:
                    if not bfields.get("has_more"):
                        self._open = None
                        commit_lsn = bfields.get("commit_lsn")
                        if (
                            self._open_is_write
                            and isinstance(commit_lsn, int)
                            and not isinstance(commit_lsn, bool)
                        ):
                            self.token = max(self.token, commit_lsn)
                elif btag == wire.MSG_FAILURE:
                    self._open = None
                self._send(btag, bfields)
                return
        except (OSError, ProtocolError):
            # The backend died mid-stream; the rows it already sent cannot
            # be unsent, so the session fails loudly rather than silently
            # truncating a result.
            self._drop_backend(backend)
            self._send_failure(
                ServiceShutdownError("backend connection lost mid-result")
            )

    def _on_prepare(self, fields: dict) -> None:
        query = fields.get("query")
        if not isinstance(query, str) or not query:
            self._send_failure(ProtocolError("PREPARE needs a 'query'"))
            return
        # The leader validates and plans; the router keeps only the text
        # (re-sent verbatim on RUN) so statements outlive any one backend
        # connection and work on replicas that never saw the PREPARE.
        # PREPARE is side-effect free, so unlike a write it retries even
        # after a mid-request disconnect.
        attempts = max(1, self.config.write_retries + 1)
        delay = self.config.write_retry_backoff_s
        last_error: Optional[str] = None
        tag = reply = None
        for attempt in range(attempts):
            if attempt:
                if self.router._stop.wait(delay):
                    break
                delay = min(delay * 2, 1.0)
            address = self.router.write_target_address()
            try:
                backend = self._backend(address)
                backend.send(wire.MSG_PREPARE, {"query": query})
                tag, reply = backend.recv()
            except (OSError, ProtocolError) as exc:
                stale = self._backends.get(address)
                if stale is not None:
                    self._drop_backend(stale)
                last_error = f"{type(exc).__name__}: {exc}"
                tag = None
                continue
            break
        if tag is None:
            self._send_failure(
                LeaderUnavailableError(
                    "no leader reachable for PREPARE"
                    + (f" (last error: {last_error})" if last_error else "")
                )
            )
            return
        if tag != wire.MSG_SUCCESS:
            self._send(tag, reply)
            return
        statement = self._next_statement
        self._next_statement += 1
        self._statements[statement] = (query, bool(reply.get("is_write")))
        out = dict(reply)
        out["stmt"] = statement
        self.metrics.counter("router.prepares").inc()
        self._send(wire.MSG_SUCCESS, out)

    def _on_reset(self) -> None:
        backend = self._open
        self._open = None
        if backend is not None:
            try:
                backend.send(wire.MSG_RESET, {})
                backend.expect_success()
            except (ReproError, OSError):
                self._drop_backend(backend)
        self._send(wire.MSG_SUCCESS, {})
