"""The read router: one endpoint fanning out over a leader and N replicas.

Clients speak the ordinary binary protocol to the router (it is
indistinguishable from a server — the shell's ``:connect`` just works).
The router classifies each RUN with the same pure ``analyze(parse(q))``
pass the servers use, forwards writes to the leader, and spreads reads
across healthy replicas:

* **read-your-writes** — each session carries a token, the highest
  ``commit_lsn`` its writes have returned. Reads only go to a replica
  whose applied LSN has reached the token (the token is also forwarded as
  ``require_lsn`` so the replica double-checks server-side); otherwise the
  read is re-routed — next replica, ultimately the leader.
* **bounded staleness** — token-free reads accept any replica within the
  configured lag bound; a per-query ``require_lsn`` overrides either way.
* **health** — a poller tracks every replica's applied LSN via STATUS,
  evicts laggards and dead backends from rotation, and re-admits them once
  they catch back up.
"""

from repro.router.router import Router, RouterConfig

__all__ = ["Router", "RouterConfig"]
