"""Page-based B+-tree storing composite identifier keys (paper §2.3.1, Fig. 4).

One tree per indexed pattern; entries are tuples of 8-byte identifiers sorted
lexicographically. The tree supports the three access paths the paper's query
operators need: full sequential scan (PathIndexScan), prefix seek + scan
(PathIndexPrefixSeek), and seek-at-least for the skip-scan trick of
PathIndexFilteredScan.
"""

from repro.bptree.keys import IDENTIFIER_BYTES, entry_size_bytes, prefix_range
from repro.bptree.pager import TreePager
from repro.bptree.tree import BPlusTree

__all__ = [
    "BPlusTree",
    "IDENTIFIER_BYTES",
    "TreePager",
    "entry_size_bytes",
    "prefix_range",
]
