"""Page allocation and cache accounting for one B+-tree file.

Every tree node occupies exactly one page; visiting a node reports a touch to
the shared :class:`~repro.storage.pagecache.PageCache`, which is how cold-run
benchmarks charge simulated I/O for index reads.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.pagecache import PageCache


class TreePager:
    """Allocates page ids for tree nodes and forwards accesses to the cache."""

    def __init__(self, file_name: str, page_cache: Optional[PageCache]) -> None:
        self.file_name = file_name
        self.page_cache = page_cache
        if page_cache is not None:
            page_cache.register_file(file_name)
        self._next_page = 0
        self._free_pages: list[int] = []
        self._allocated = 0

    def allocate(self) -> int:
        """Reserve a page id for a new tree node."""
        self._allocated += 1
        if self._free_pages:
            return self._free_pages.pop()
        page_id = self._next_page
        self._next_page += 1
        return page_id

    def release(self, page_id: int) -> None:
        """Return a node's page to the free list (node merged away)."""
        self._allocated -= 1
        self._free_pages.append(page_id)

    def touch(self, page_id: int) -> None:
        """Report a node visit to the page cache."""
        if self.page_cache is not None:
            self.page_cache.touch_page(self.file_name, page_id)

    def touch_run(self, first_page: int, count: int) -> None:
        """Report visits to a run of contiguous node pages (one lock trip)."""
        if self.page_cache is not None:
            self.page_cache.touch_run(self.file_name, first_page, count)

    @property
    def allocated_pages(self) -> int:
        """Pages currently holding live tree nodes."""
        return self._allocated

    @property
    def file_pages(self) -> int:
        """Pages in the backing file (high-water mark; freed pages remain)."""
        return self._next_page

    @property
    def page_size(self) -> int:
        return self.page_cache.page_size if self.page_cache is not None else 8192
