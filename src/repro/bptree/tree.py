"""A B+-tree over fixed-width composite identifier keys.

Structure follows Figure 4 of the paper: internal nodes hold separator keys
(themselves identifier lists), leaves hold the entries, and leaves are chained
for sequential scans. Node capacity is derived from the page size and the
entry size so each node occupies one page of the simulated page cache.

The tree has *set* semantics — an entry is a unique path occurrence — and
supports the three access paths the paper's operators use:

* :meth:`scan` — full in-order scan (PathIndexScan),
* :meth:`scan_prefix` — logarithmic prefix seek + scan (PathIndexPrefixSeek),
* :meth:`scan_from` — seek to the first key ≥ a bound, enabling the
  skip-ranges trick of PathIndexFilteredScan (§5.1.2).
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional, Sequence

from repro.bptree.keys import entry_size_bytes, prefix_range, validate_key
from repro.bptree.pager import TreePager
from repro.storage.pagecache import PageCache

_MIN_FANOUT = 4


class _Node:
    __slots__ = ("page_id", "keys")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.keys: list[tuple[int, ...]] = []


class _Leaf(_Node):
    __slots__ = ("next_leaf", "prev_leaf")

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        self.next_leaf: Optional[_Leaf] = None
        self.prev_leaf: Optional[_Leaf] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, page_id: int) -> None:
        super().__init__(page_id)
        # len(children) == len(keys) + 1; keys[i] is the smallest key
        # reachable under children[i + 1].
        self.children: list[_Node] = []


class BPlusTree:
    """B+-tree keyed by ``key_width``-wide identifier tuples."""

    def __init__(
        self,
        key_width: int,
        page_cache: Optional[PageCache] = None,
        file_name: str = "bptree",
        order: Optional[int] = None,
    ) -> None:
        if key_width < 1:
            raise ValueError("key_width must be at least 1")
        self.key_width = key_width
        self.entry_size = entry_size_bytes(key_width)
        self.pager = TreePager(file_name, page_cache)
        if order is None:
            order = max(_MIN_FANOUT, self.pager.page_size // self.entry_size)
        if order < _MIN_FANOUT:
            raise ValueError(f"order must be >= {_MIN_FANOUT}")
        self.order = order
        self._root: _Node = _Leaf(self.pager.allocate())
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Introspection / sizing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    def size_on_disk(self) -> int:
        """Bytes of the backing file: all pages ever allocated × page size."""
        return self.pager.file_pages * self.pager.page_size

    def total_data_size(self) -> int:
        """Bytes of actual entry data (entries × entry size), as in Table 2."""
        return self._size * self.entry_size

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def __contains__(self, key: Sequence[int]) -> bool:
        key_tuple = validate_key(key, self.key_width)
        leaf = self._descend(key_tuple)
        index = bisect.bisect_left(leaf.keys, key_tuple)
        return index < len(leaf.keys) and leaf.keys[index] == key_tuple

    def insert(self, key: Sequence[int]) -> bool:
        """Insert ``key``; returns False if it was already present."""
        key_tuple = validate_key(key, self.key_width)
        split = self._insert_into(self._root, key_tuple)
        if split is _ALREADY_PRESENT:
            return False
        if split is not None:
            separator, right = split
            new_root = _Internal(self.pager.allocate())
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1
        return True

    def delete(self, key: Sequence[int]) -> bool:
        """Delete ``key``; returns False if it was not present."""
        key_tuple = validate_key(key, self.key_width)
        removed = self._delete_from(self._root, key_tuple)
        if not removed:
            return False
        root = self._root
        if isinstance(root, _Internal) and len(root.children) == 1:
            self.pager.release(root.page_id)
            self._root = root.children[0]
            self._height -= 1
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, ...]]:
        """All entries in ascending key order (a full index scan).

        Leaf visits are reported to the page cache in runs of contiguous
        page ids (one lock acquisition per run); a run is flushed before
        the first key of the leaf that breaks it, and the trailing run is
        flushed when the scan finishes or its consumer stops early.
        """
        leaf = self._leftmost_leaf()
        run_start = 0
        run_length = 0
        try:
            while leaf is not None:
                page_id = leaf.page_id
                if run_length and page_id == run_start + run_length:
                    run_length += 1
                else:
                    if run_length:
                        self.pager.touch_run(run_start, run_length)
                    run_start = page_id
                    run_length = 1
                yield from leaf.keys
                leaf = leaf.next_leaf
        finally:
            if run_length:
                self.pager.touch_run(run_start, run_length)

    def scan_from(self, lower: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """Entries ≥ ``lower`` in ascending order (seek then scan)."""
        lower_tuple = validate_key(lower, self.key_width)
        # _descend already reports the first leaf to the page cache; only
        # subsequent leaves of the chain walk are touched here.
        leaf = self._descend(lower_tuple)
        index = bisect.bisect_left(leaf.keys, lower_tuple)
        while leaf is not None:
            keys = leaf.keys
            for position in range(index, len(keys)):
                yield keys[position]
            leaf = leaf.next_leaf
            index = 0
            if leaf is not None:
                self.pager.touch(leaf.page_id)

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[tuple[int, ...]]:
        """Entries whose key starts with ``prefix`` (logarithmic seek)."""
        lower, upper = prefix_range(prefix, self.key_width)
        for key in self.scan_from(lower):
            if key >= upper:
                return
            yield key

    def count_prefix(self, prefix: Sequence[int]) -> int:
        """Number of entries sharing ``prefix`` (exact cardinality lookup).

        Cost is one boundary descent plus the leaf-chain walk: interior
        leaves fully covered by the prefix contribute ``len(leaf.keys)``
        without key iteration; only the boundary leaf bisects for the
        upper bound. This sits on the planner's cardinality-lookup path.
        """
        lower, upper = prefix_range(prefix, self.key_width)
        lower_tuple = validate_key(lower, self.key_width)
        leaf = self._descend(lower_tuple)
        index = bisect.bisect_left(leaf.keys, lower_tuple)
        total = 0
        while leaf is not None:
            keys = leaf.keys
            if keys and keys[-1] < upper:
                total += len(keys) - index
            else:
                return total + bisect.bisect_left(keys, upper, index) - index
            leaf = leaf.next_leaf
            index = 0
            if leaf is not None:
                self.pager.touch(leaf.page_id)
        return total

    def first(self) -> Optional[tuple[int, ...]]:
        """Smallest entry or None when empty."""
        leaf = self._leftmost_leaf()
        while leaf is not None:
            self.pager.touch(leaf.page_id)
            if leaf.keys:
                return leaf.keys[0]
            leaf = leaf.next_leaf
        return None

    # ------------------------------------------------------------------
    # Descent helpers
    # ------------------------------------------------------------------

    def _descend(self, key: tuple[int, ...]) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self.pager.touch(node.page_id)
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        self.pager.touch(node.page_id)
        return node  # type: ignore[return-value]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            self.pager.touch(node.page_id)
            node = node.children[0]
        return node  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def _insert_into(self, node: _Node, key: tuple[int, ...]):
        """Insert under ``node``; returns None, a (separator, right-sibling)
        split descriptor, or the _ALREADY_PRESENT sentinel."""
        self.pager.touch(node.page_id)
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return _ALREADY_PRESENT
            node.keys.insert(index, key)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key)
        if split is None or split is _ALREADY_PRESENT:
            return split
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[tuple[int, ...], _Leaf]:
        middle = len(leaf.keys) // 2
        right = _Leaf(self.pager.allocate())
        right.keys = leaf.keys[middle:]
        leaf.keys = leaf.keys[:middle]
        right.next_leaf = leaf.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        right.prev_leaf = leaf
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[tuple[int, ...], _Internal]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal(self.pager.allocate())
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Deletion with borrow/merge rebalancing
    # ------------------------------------------------------------------

    def _delete_from(self, node: _Node, key: tuple[int, ...]) -> bool:
        self.pager.touch(node.page_id)
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            return True
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        child = node.children[child_index]
        if not self._delete_from(child, key):
            return False
        if self._underflowing(child):
            self._rebalance(node, child_index)
        return True

    def _underflowing(self, node: _Node) -> bool:
        minimum = self.order // 2
        if isinstance(node, _Leaf):
            return len(node.keys) < max(1, minimum)
        return len(node.children) < max(2, minimum)

    def _rebalance(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        left = parent.children[child_index - 1] if child_index > 0 else None
        right = (
            parent.children[child_index + 1]
            if child_index + 1 < len(parent.children)
            else None
        )
        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, child_index)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, child_index)
        elif left is not None:
            self._merge(parent, child_index - 1)
        elif right is not None:
            self._merge(parent, child_index)

    def _can_lend(self, node: _Node) -> bool:
        minimum = self.order // 2
        if isinstance(node, _Leaf):
            return len(node.keys) > max(1, minimum)
        return len(node.children) > max(2, minimum)

    def _borrow_from_left(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        left = parent.children[child_index - 1]
        self.pager.touch(left.page_id)
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            parent.keys[child_index - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        right = parent.children[child_index + 1]
        self.pager.touch(right.page_id)
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_index: int) -> None:
        """Merge children ``left_index`` and ``left_index + 1`` into the left."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        self.pager.touch(left.page_id)
        self.pager.touch(right.page_id)
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.next_leaf = right.next_leaf
            if right.next_leaf is not None:
                right.next_leaf.prev_leaf = left
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        self.pager.release(right.page_id)
        del parent.keys[left_index]
        del parent.children[left_index + 1]

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on violation."""
        leaf_depths: list[int] = []
        self._check_node(
            self._root, None, None, is_root=True, depth=0, leaf_depths=leaf_depths
        )
        assert len(set(leaf_depths)) <= 1, f"leaves at depths {set(leaf_depths)}"
        # Leaf chain must enumerate all keys in order.
        chained: list[tuple[int, ...]] = []
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        while leaf is not None:
            chained.extend(leaf.keys)
            leaf = leaf.next_leaf
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size, "size counter mismatch"

    def _check_node(self, node, low, high, is_root, depth, leaf_depths) -> None:
        for key in node.keys:
            assert low is None or key >= low, "key below lower bound"
            assert high is None or key < high, "key above upper bound"
        assert node.keys == sorted(node.keys), "node keys out of order"
        if isinstance(node, _Leaf):
            leaf_depths.append(depth)
            return
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= 2
        bounds = [low, *node.keys, high]
        for index, child in enumerate(node.children):
            self._check_node(
                child,
                bounds[index],
                bounds[index + 1],
                is_root=False,
                depth=depth + 1,
                leaf_depths=leaf_depths,
            )


_ALREADY_PRESENT = object()
