"""Composite-key helpers for the path-index B+-tree.

Keys are fixed-width tuples of non-negative integers (node and relationship
identifiers). Python tuples already compare lexicographically, which matches
the byte-wise ordering of big-endian 8-byte identifiers, so no encoding is
required for comparisons — only for size accounting.
"""

from __future__ import annotations

from typing import Sequence

IDENTIFIER_BYTES = 8
"""Each identifier occupies 8 bytes in the tree (paper §2.3.1)."""


def entry_size_bytes(key_width: int) -> int:
    """On-disk bytes of one entry with ``key_width`` identifiers.

    A path pattern of length ``k`` stores ``2k + 1`` identifiers, so its
    entries are ``8 * (2k + 1)`` bytes (paper §2.3.1).
    """
    return IDENTIFIER_BYTES * key_width


def validate_key(key: Sequence[int], key_width: int) -> tuple[int, ...]:
    """Normalize ``key`` to a tuple and check its width and contents."""
    key_tuple = tuple(key)
    if len(key_tuple) != key_width:
        raise ValueError(
            f"key {key_tuple!r} has width {len(key_tuple)}, expected {key_width}"
        )
    for part in key_tuple:
        if not isinstance(part, int) or part < 0:
            raise ValueError(f"key component {part!r} is not a non-negative id")
    return key_tuple


def prefix_range(
    prefix: Sequence[int], key_width: int
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Inclusive-lower / exclusive-upper key bounds covering ``prefix``.

    ``lower`` pads the prefix with zeros to full width; ``upper`` is the
    immediate successor of the prefix (last component + 1), again padded, so a
    scan over ``[lower, upper)`` yields exactly the keys sharing the prefix.
    An empty prefix covers the whole tree.
    """
    prefix_tuple = tuple(prefix)
    if len(prefix_tuple) > key_width:
        raise ValueError(
            f"prefix {prefix_tuple!r} longer than key width {key_width}"
        )
    pad = key_width - len(prefix_tuple)
    lower = prefix_tuple + (0,) * pad
    if not prefix_tuple:
        upper = (1 << 63,) * key_width  # beyond any real identifier
    else:
        upper = prefix_tuple[:-1] + (prefix_tuple[-1] + 1,) + (0,) * pad
    return lower, upper
