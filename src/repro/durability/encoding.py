"""Binary value codec for write-ahead log payloads.

A small, self-contained tagged encoding (one tag byte per value, LEB128
varints for lengths and integers, zigzag for signed ints) covering exactly
the types a transaction can write: ``None``, booleans, ints, floats,
strings, bytes, lists/tuples, and dicts. The snapshot files use JSON; the
log uses this codec because log records are written on every commit and the
framing (length + CRC32) is byte-oriented anyway.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import DurabilityError

TAG_NONE = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_INT = 3
TAG_FLOAT = 4
TAG_STR = 5
TAG_BYTES = 6
TAG_LIST = 7
TAG_DICT = 8

_FLOAT = struct.Struct("<d")


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (non-negative) as a LEB128 varint."""
    if value < 0:
        raise DurabilityError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns (value, next_offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise DurabilityError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def _zigzag_encode(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(encoded: int) -> int:
    return (encoded >> 1) if not encoded & 1 else -((encoded + 1) >> 1)


def write_value(out: bytearray, value: Any) -> None:
    """Append one tagged value to ``out``."""
    if value is None:
        out.append(TAG_NONE)
    elif value is True:
        out.append(TAG_TRUE)
    elif value is False:
        out.append(TAG_FALSE)
    elif isinstance(value, int):
        out.append(TAG_INT)
        write_uvarint(out, _zigzag_encode(value))
    elif isinstance(value, float):
        out.append(TAG_FLOAT)
        out.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(TAG_STR)
        write_uvarint(out, len(encoded))
        out.extend(encoded)
    elif isinstance(value, (bytes, bytearray)):
        out.append(TAG_BYTES)
        write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, (list, tuple)):
        out.append(TAG_LIST)
        write_uvarint(out, len(value))
        for item in value:
            write_value(out, item)
    elif isinstance(value, dict):
        out.append(TAG_DICT)
        write_uvarint(out, len(value))
        for key, item in value.items():
            write_value(out, key)
            write_value(out, item)
    else:
        raise DurabilityError(
            f"cannot log value of type {type(value).__name__!r}: {value!r}"
        )


def read_value(data: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged value at ``offset``; returns (value, next_offset)."""
    if offset >= len(data):
        raise DurabilityError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == TAG_NONE:
        return None, offset
    if tag == TAG_TRUE:
        return True, offset
    if tag == TAG_FALSE:
        return False, offset
    if tag == TAG_INT:
        encoded, offset = read_uvarint(data, offset)
        return _zigzag_decode(encoded), offset
    if tag == TAG_FLOAT:
        if offset + 8 > len(data):
            raise DurabilityError("truncated float")
        return _FLOAT.unpack_from(data, offset)[0], offset + 8
    if tag == TAG_STR:
        length, offset = read_uvarint(data, offset)
        if offset + length > len(data):
            raise DurabilityError("truncated string")
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == TAG_BYTES:
        length, offset = read_uvarint(data, offset)
        if offset + length > len(data):
            raise DurabilityError("truncated bytes")
        return bytes(data[offset : offset + length]), offset + length
    if tag == TAG_LIST:
        count, offset = read_uvarint(data, offset)
        items = []
        for _ in range(count):
            item, offset = read_value(data, offset)
            items.append(item)
        return items, offset
    if tag == TAG_DICT:
        count, offset = read_uvarint(data, offset)
        result = {}
        for _ in range(count):
            key, offset = read_value(data, offset)
            item, offset = read_value(data, offset)
            result[key] = item
        return result, offset
    raise DurabilityError(f"unknown value tag {tag}")


def encode_value(value: Any) -> bytes:
    out = bytearray()
    write_value(out, value)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    value, offset = read_value(data, 0)
    if offset != len(data):
        raise DurabilityError(
            f"{len(data) - offset} trailing bytes after decoded value"
        )
    return value
