"""Deterministic fault injection for the durability engine.

Every durability I/O point (record write, fsync, snapshot write, rename,
``CURRENT`` switch, cleanup) calls :meth:`FaultInjector.reach` with a named
kill-point. Arming a point makes that call raise
:class:`SimulatedCrashError` — and once fired, the injector stays *crashed*:
every later I/O attempt raises too, so the in-memory engine behaves like a
dead process (nothing further reaches disk). Tests then discard the crashed
database object and re-open the directory to exercise recovery.

``power_loss`` additionally models the OS page cache being lost: after the
crash, :meth:`DurabilityEngine.simulate_power_loss` truncates the log to the
last fsynced length, so records that were written but never fsynced
disappear — the strictest durability test.
"""

from __future__ import annotations

import threading

WAL_KILL_POINTS = (
    "wal.append.before_write",
    "wal.append.torn_write",
    "wal.append.after_write",
    "wal.fsync.before",
    "wal.fsync.after",
)
"""Kill-points on the commit path (record append + group-commit fsync)."""

CHECKPOINT_KILL_POINTS = (
    "checkpoint.before",
    "checkpoint.mid_snapshot",
    "checkpoint.before_rename",
    "checkpoint.before_current",
    "checkpoint.after_current",
    "checkpoint.after",
)
"""Kill-points across the checkpoint procedure (snapshot, rename, pointer
switch, cleanup)."""

SPILL_KILL_POINTS = (
    "spill.open",
    "spill.write",
    "spill.merge",
)
"""Kill-points on the resource-governance spill path (run-file creation,
run-file write, k-way merge). A crash here leaves orphaned ``*.spill``
files that recovery must sweep."""

REPLICATION_KILL_POINTS = (
    "ship.before_segment",
    "ship.torn_segment",
    "replica.apply.mid_batch",
)
"""Kill-points on the replication path. ``ship.before_segment`` kills the
leader just before it ships the next WAL_SEGMENT (leader crash mid-ship);
``ship.torn_segment`` makes the leader write *half* of the encoded segment
frame and then die, so the replica sees a torn stream mid-frame;
``replica.apply.mid_batch`` kills the replica between two records of one
shipped batch (crash mid-apply)."""

PROMOTION_KILL_POINTS = (
    "promote.before_epoch_bump",
    "promote.mid_tail_replay",
    "promote.before_resubscribe",
    "promote.old_leader_revival",
)
"""Kill-points across controlled failover. ``promote.mid_tail_replay``
kills the candidate while it verifies its WAL tail against the applied
state; ``promote.before_epoch_bump`` kills it after the tail is durable
but before the new epoch reaches disk (the promotion never happened);
``promote.before_resubscribe`` kills a surviving replica just before it
subscribes to the new leader; ``promote.old_leader_revival`` kills a
revived old leader while it re-opens its directory."""

KILL_POINTS = (
    WAL_KILL_POINTS
    + CHECKPOINT_KILL_POINTS
    + SPILL_KILL_POINTS
    + REPLICATION_KILL_POINTS
    + PROMOTION_KILL_POINTS
)
"""Every named kill-point, in commit-then-checkpoint order."""


class SimulatedCrashError(RuntimeError):
    """The fault injector killed the engine at a named kill-point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: generic error
    handling must not swallow a simulated process death.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at kill-point {point!r}")
        self.point = point


class FaultInjector:
    """Named kill-points with deterministic, countdown-armed crashes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, int] = {}
        self.crashed = False
        self.crash_point: str | None = None
        self.reached: list[str] = []
        """Every kill-point reached, in order (for coverage assertions)."""

    def arm(self, point: str, hits: int = 1) -> None:
        """Crash on the ``hits``-th time ``point`` is reached from now on."""
        if point not in KILL_POINTS:
            raise ValueError(f"unknown kill-point {point!r}")
        if hits < 1:
            raise ValueError("hits must be >= 1")
        with self._lock:
            self._armed[point] = hits

    def disarm(self, point: str) -> None:
        with self._lock:
            self._armed.pop(point, None)

    def is_armed(self, point: str) -> bool:
        with self._lock:
            return point in self._armed or self.crashed

    def will_fire(self, point: str) -> bool:
        """True when the next :meth:`reach` of ``point`` would crash."""
        with self._lock:
            return self.crashed or self._armed.get(point) == 1

    def reach(self, point: str) -> None:
        """Record that ``point`` was reached; crash if armed (or already
        crashed — a dead process performs no further I/O)."""
        with self._lock:
            self.reached.append(point)
            if self.crashed:
                raise SimulatedCrashError(self.crash_point or point)
            remaining = self._armed.get(point)
            if remaining is None:
                return
            if remaining > 1:
                self._armed[point] = remaining - 1
                return
            del self._armed[point]
            self.crashed = True
            self.crash_point = point
        raise SimulatedCrashError(point)

    def check(self) -> None:
        """Raise if the engine already crashed (entry guard for I/O paths)."""
        if self.crashed:
            raise SimulatedCrashError(self.crash_point or "<crashed>")
