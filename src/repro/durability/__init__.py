"""Crash-safe durability: write-ahead log, checkpoints, recovery.

The in-memory store (`repro.storage`), transactions (`repro.tx`) and path
indexes are volatile; this package makes committed transactions survive a
process crash:

* :class:`WriteAheadLog` — a binary log of length-prefixed,
  CRC32-checksummed records; torn or corrupt tail records are detected and
  discarded on recovery, so replay always lands on a *prefix* of committed
  transactions.
* :class:`DurabilityEngine` — serializes each committed transaction's
  applier operations (node/relationship/property/token/path-index deltas)
  into one log record, fsyncs with **group commit** (concurrent writers
  share one fsync), checkpoints by writing an atomic snapshot (temp
  directory + ``CURRENT`` pointer switch) and starting a fresh log segment,
  and replays the checkpoint + log suffix in
  :meth:`repro.db.database.GraphDatabase.open`.
* :class:`FaultInjector` — named kill-points before/after every write,
  fsync and rename let tests deterministically crash the engine mid-commit
  and mid-checkpoint and assert recovery invariants.
"""

from repro.durability.engine import DurabilityConfig, DurabilityEngine
from repro.durability.faults import (
    CHECKPOINT_KILL_POINTS,
    KILL_POINTS,
    PROMOTION_KILL_POINTS,
    REPLICATION_KILL_POINTS,
    SPILL_KILL_POINTS,
    WAL_KILL_POINTS,
    FaultInjector,
    SimulatedCrashError,
)
from repro.durability.wal import WriteAheadLog, iter_tail_frames, scan_records

__all__ = [
    "CHECKPOINT_KILL_POINTS",
    "PROMOTION_KILL_POINTS",
    "REPLICATION_KILL_POINTS",
    "SPILL_KILL_POINTS",
    "DurabilityConfig",
    "DurabilityEngine",
    "FaultInjector",
    "KILL_POINTS",
    "SimulatedCrashError",
    "WAL_KILL_POINTS",
    "WriteAheadLog",
    "iter_tail_frames",
    "scan_records",
]
