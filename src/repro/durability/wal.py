"""The write-ahead log file: framing, append, fsync, and tail-safe scan.

File layout::

    b"RWAL" + <u16 version>                      6-byte header
    repeat:  <u32 payload_len> <u32 crc32(payload)> <payload>

Records are length-prefixed and CRC32-checksummed. :func:`scan_records`
reads the longest valid prefix: a short read, an implausible length or a
CRC mismatch marks the *torn tail* — everything from there on is discarded
(and physically truncated before the log is appended to again), so recovery
always lands on a prefix of whole records. A record is only guaranteed
durable once :meth:`WriteAheadLog.fsync` returned after its append; the
writer tracks the last-fsynced length so tests can simulate losing the OS
page cache (power loss) by truncating back to it.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Optional, Union

from repro.durability.faults import FaultInjector

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
WAL_HEADER = WAL_MAGIC + struct.pack("<H", WAL_VERSION)
_FRAME = struct.Struct("<II")
MAX_RECORD_BYTES = 1 << 30
"""Sanity bound on a single record; larger lengths are treated as garbage."""


def scan_records(path: Union[str, Path]) -> tuple[list[bytes], int]:
    """Read the longest valid prefix of log records.

    Returns ``(payloads, valid_length)`` where ``valid_length`` is the byte
    offset just past the last whole, checksum-correct record (the offset the
    file should be truncated to before further appends). A missing file or
    an unrecognizable header yields ``([], 0)``.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    if len(data) < len(WAL_HEADER) or data[: len(WAL_HEADER)] != WAL_HEADER:
        return [], 0
    payloads: list[bytes] = []
    offset = len(WAL_HEADER)
    while True:
        if offset + _FRAME.size > len(data):
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES or offset + _FRAME.size + length > len(data):
            break  # implausible length or torn payload
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if zlib.crc32(payload) != crc:
            break  # corrupt record: discard it and everything after
        payloads.append(payload)
        offset += _FRAME.size + length
    return payloads, offset


def iter_tail_frames(
    path: Union[str, Path], offset: int
) -> tuple[list[tuple[bytes, int]], int]:
    """Parse whole frames from byte ``offset`` onward (for WAL shipping).

    Returns ``(frames, end_offset)`` where each frame is ``(payload,
    offset_just_past_it)`` and ``end_offset`` is where the next call should
    resume. Unlike :func:`scan_records` this is tolerant by design: a torn
    or corrupt tail just stops the iteration — a concurrent append looks
    torn until its write completes, so the shipper re-reads from
    ``end_offset`` on its next poll. A missing file (the segment was just
    swapped by a checkpoint) yields ``([], offset)``.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], offset
    if len(data) < len(WAL_HEADER) or data[: len(WAL_HEADER)] != WAL_HEADER:
        return [], offset
    offset = max(offset, len(WAL_HEADER))
    frames: list[tuple[bytes, int]] = []
    while True:
        if offset + _FRAME.size > len(data):
            break
        length, crc = _FRAME.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES or offset + _FRAME.size + length > len(data):
            break
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if zlib.crc32(payload) != crc:
            break
        offset += _FRAME.size + length
        frames.append((payload, offset))
    return frames, offset


class WriteAheadLog:
    """Append-only writer over one log segment file.

    The caller is responsible for having truncated any torn tail first
    (recovery does, via :func:`scan_records`); the writer then appends whole
    frames and fsyncs on demand. All fault injection on the commit path
    happens here: ``wal.append.before_write`` / ``torn_write`` /
    ``after_write`` around the frame write and ``wal.fsync.before`` /
    ``after`` around the fsync.
    """

    def __init__(
        self,
        path: Union[str, Path],
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.path = Path(path)
        self._injector = injector if injector is not None else FaultInjector()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        # Unbuffered: every write reaches the OS immediately, so a torn
        # write really leaves partial bytes behind for recovery to find.
        self._file = open(self.path, "ab", buffering=0)
        if fresh:
            self._file.write(WAL_HEADER)
            os.fsync(self._file.fileno())
        self.size = self.path.stat().st_size
        self.synced_size = self.size
        """File length at the last completed fsync (the power-loss horizon)."""

    def append(self, payload: bytes) -> None:
        """Append one framed record (no fsync — see :meth:`fsync`)."""
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._injector.reach("wal.append.before_write")
        if self._injector.will_fire("wal.append.torn_write"):
            # Write only half the frame, then crash: the torn record must be
            # detected by CRC/length on recovery and discarded.
            half = frame[: max(1, len(frame) // 2)]
            self._file.write(half)
            self.size += len(half)
            self._injector.reach("wal.append.torn_write")
        self._file.write(frame)
        self.size += len(frame)
        self._injector.reach("wal.append.after_write")

    def fsync(self) -> None:
        """Make every appended record durable."""
        self._injector.reach("wal.fsync.before")
        os.fsync(self._file.fileno())
        self.synced_size = self.size
        self._injector.reach("wal.fsync.after")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def truncate_to_synced(self) -> None:
        """Simulate power loss: drop everything after the last fsync."""
        self.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(self.synced_size)
        self.size = self.synced_size
