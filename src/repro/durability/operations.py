"""Logical log records: what a commit writes and how replay applies it.

A committed transaction becomes one **commit record** holding, in exact
live-execution order:

* the *token suffix* — every label/type/property-key name registered since
  the last logged state (token registries are append-only, so replaying the
  suffixes in record order reproduces identical token ids),
* the *additive operations* in original call order (from
  ``TransactionState.redo_log``), then the *destructive operations* in
  commit-application order — replaying in this order reproduces the exact
  id-allocation sequence of the live run,
* the *path-index deltas* the maintenance applier actually performed
  (Algorithm 1's output), so recovery restores index contents without
  re-running maintenance queries.

Index DDL (create/drop) is logged as a separate **DDL record**; replaying a
``create_index`` re-runs Algorithm 2 initialization against the replayed
store, which at that point in the record stream is byte-identical to the
live store at DDL time, hence produces the same entries.

Replay applies operations through the public :class:`GraphStore` mutation
API, which maintains the label index, degree counters, dense-node groups
and — critically for the planner — :class:`GraphStatistics` exactly the way
live execution does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.durability.encoding import decode_value, encode_value
from repro.errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import GraphDatabase
    from repro.tx.state import TransactionState

REC_COMMIT = 1
REC_DDL = 2

OP_CREATE_NODE = 1
OP_CREATE_REL = 2
OP_ADD_LABEL = 3
OP_SET_NODE_PROP = 4
OP_SET_REL_PROP = 5
OP_DELETE_REL = 6
OP_REMOVE_LABEL = 7
OP_DELETE_NODE = 8

_OP_CODES = {
    "create_node": OP_CREATE_NODE,
    "create_rel": OP_CREATE_REL,
    "add_label": OP_ADD_LABEL,
    "set_node_prop": OP_SET_NODE_PROP,
    "set_rel_prop": OP_SET_REL_PROP,
    "delete_rel": OP_DELETE_REL,
    "remove_label": OP_REMOVE_LABEL,
    "delete_node": OP_DELETE_NODE,
}

CHANGE_ADD = 0
CHANGE_REMOVE = 1


def collect_operations(state: "TransactionState") -> list[tuple]:
    """One transaction's operations in live-application order.

    Additive operations were applied eagerly in call order (the redo log);
    destructive operations were deferred and applied at commit in list
    order — the same order ``Transaction._commit`` uses.
    """
    ops: list[tuple] = list(state.redo_log)
    for pending in state.deleted_relationships:
        ops.append(("delete_rel", pending.rel_id))
    for pending in state.removed_labels:
        ops.append(("remove_label", pending.node_id, pending.label_id))
    for node_id in state.deleted_nodes:
        ops.append(("delete_node", node_id))
    return ops


def encode_commit_record(
    seq: int,
    new_labels: Iterable[str],
    new_types: Iterable[str],
    new_keys: Iterable[str],
    ops: Iterable[tuple],
    index_changes: Iterable[tuple[str, str, tuple[int, ...]]],
) -> bytes:
    """Serialize one commit record payload (type byte + codec body)."""
    encoded_ops = []
    for op in ops:
        code = _OP_CODES.get(op[0])
        if code is None:
            raise DurabilityError(f"unknown logical operation {op[0]!r}")
        encoded_ops.append([code, *[_listify(arg) for arg in op[1:]]])
    encoded_changes = []
    for action, index_name, entry in index_changes:
        if action == "add":
            change = CHANGE_ADD
        elif action == "remove":
            change = CHANGE_REMOVE
        else:
            raise DurabilityError(f"unknown index change {action!r}")
        encoded_changes.append([change, index_name, list(entry)])
    body = [
        seq,
        list(new_labels),
        list(new_types),
        list(new_keys),
        encoded_ops,
        encoded_changes,
    ]
    return bytes([REC_COMMIT]) + encode_value(body)


def encode_ddl_record(
    seq: int, kind: str, name: str, pattern: str, partial: bool, populate: bool
) -> bytes:
    return bytes([REC_DDL]) + encode_value(
        [seq, kind, name, pattern, partial, populate]
    )


def _listify(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return sorted(value)
    return value


def decode_record(payload: bytes) -> tuple[int, list]:
    """Split a payload into (record type, decoded body)."""
    if not payload:
        raise DurabilityError("empty log record")
    record_type = payload[0]
    if record_type not in (REC_COMMIT, REC_DDL):
        raise DurabilityError(f"unknown log record type {record_type}")
    return record_type, decode_value(payload[1:])


def record_seq(body: list) -> int:
    return int(body[0])


def apply_commit_record(db: "GraphDatabase", body: list) -> None:
    """Replay one commit record against a recovering database."""
    _seq, new_labels, new_types, new_keys, ops, index_changes = body
    store = db.store
    for name in new_labels:
        store.labels.get_or_create(name)
    for name in new_types:
        store.types.get_or_create(name)
    for name in new_keys:
        store.property_keys.get_or_create(name)
    for op in ops:
        code = op[0]
        if code == OP_CREATE_NODE:
            node_id, label_ids = op[1], op[2]
            got = store.create_node(label_ids, node_id=node_id)
            if got != node_id:
                raise DurabilityError(
                    f"replay allocated node {got}, log says {node_id}"
                )
        elif code == OP_CREATE_REL:
            rel_id, start, end, type_id = op[1], op[2], op[3], op[4]
            got = store.create_relationship(start, end, type_id, rel_id=rel_id)
            if got != rel_id:
                raise DurabilityError(
                    f"replay allocated relationship {got}, log says {rel_id}"
                )
        elif code == OP_ADD_LABEL:
            store.add_label(op[1], op[2])
        elif code == OP_SET_NODE_PROP:
            store.set_node_property(op[1], op[2], op[3])
        elif code == OP_SET_REL_PROP:
            store.set_relationship_property(op[1], op[2], op[3])
        elif code == OP_DELETE_REL:
            store.delete_relationship(op[1])
        elif code == OP_REMOVE_LABEL:
            store.remove_label(op[1], op[2])
        elif code == OP_DELETE_NODE:
            store.delete_node(op[1])
        else:
            raise DurabilityError(f"unknown logical opcode {code}")
    for change, index_name, entry in index_changes:
        index = db.indexes.get(index_name)
        if change == CHANGE_ADD:
            # Partial indexes filter additions to materialized starts
            # themselves, exactly as live maintenance did.
            index.add(tuple(entry))
        elif change == CHANGE_REMOVE:
            index.remove(tuple(entry))
        else:
            raise DurabilityError(f"unknown index change code {change}")


def apply_ddl_record(db: "GraphDatabase", body: list) -> None:
    """Replay one index DDL record (create re-runs Algorithm 2)."""
    _seq, kind, name, pattern, partial, populate = body
    if kind == "create_index":
        db.create_path_index(name, pattern, populate=populate, partial=partial)
    elif kind == "drop_index":
        db.drop_path_index(name)
    else:
        raise DurabilityError(f"unknown DDL kind {kind!r}")
