"""The durability engine: group-committed WAL + atomic checkpoints + recovery.

Directory layout::

    <dir>/CURRENT                   text pointer: id of the live checkpoint
    <dir>/checkpoint-NNNNNN/        snapshot directory (repro.db.snapshot format)
    <dir>/wal-NNNNNN.log            the log segment paired with that checkpoint
    <dir>/EPOCH                     text: "<epoch> <promote_lsn>" — the leader
                                    epoch this directory last served under and
                                    the LSN at which that epoch began (absent
                                    means epoch 1, LSN 0). The fencing token
                                    for controlled failover.

Commit path — the engine is a transaction applier (registered *after* the
path-index maintainer, so index deltas are already known): each committed
transaction is serialized into one log record and appended; the fsync uses
**group commit** — the first waiter becomes the leader and fsyncs everything
appended so far, concurrent committers piggyback on that single fsync. The
query service defers the fsync until after it drops its exclusive write
lock (:meth:`DurabilityEngine.deferred_sync` / :meth:`sync_pending`), which
is what lets independent writers actually share an fsync.

Checkpoint — write a full snapshot into ``checkpoint-N.tmp``, fsync, rename
to ``checkpoint-N`` (atomic), start ``wal-N.log``, then atomically switch
``CURRENT`` and delete the old pair. A crash at any point leaves either the
old pair or the new pair fully intact; orphans are swept on the next open.

Recovery (:meth:`DurabilityEngine.open_database`, surfaced as
``GraphDatabase.open``) — load the checkpoint ``CURRENT`` points at, scan
the paired log's longest valid prefix (truncating any torn/corrupt tail),
and replay each record through the live mutation API. The invariant: the
recovered store is always the state after some *prefix* of the committed
transactions — every transaction whose fsync returned is in that prefix.

Every I/O point calls a named :class:`FaultInjector` kill-point, so tests
can deterministically kill the engine anywhere and assert that invariant.
"""

from __future__ import annotations

import os
import shutil
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.durability.faults import FaultInjector
from repro.durability.operations import (
    REC_COMMIT,
    apply_commit_record,
    apply_ddl_record,
    collect_operations,
    decode_record,
    encode_commit_record,
    encode_ddl_record,
    record_seq,
)
from repro.durability.wal import WAL_HEADER, WriteAheadLog, scan_records
from repro.errors import DurabilityError
from repro.tx.appliers import TransactionApplier

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import GraphDatabase
    from repro.tx.state import TransactionState


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs for the durability engine."""

    checkpoint_interval_records: int = 1024
    """Auto-checkpoint after this many log records (non-service usage)."""

    checkpoint_interval_bytes: int = 4 << 20
    """Auto-checkpoint after this many log bytes (non-service usage)."""

    auto_checkpoint: bool = True
    """Checkpoint from the commit path when an interval is exceeded. The
    query service disables the commit-path trigger implicitly (its commits
    run with a deferred fsync) and checkpoints from a background thread
    under its write lock instead."""


class _WalApplier(TransactionApplier):
    """Bridges transaction commit into the engine's log.

    Runs after the :class:`PathIndexMaintainer`, so by the time
    :meth:`after_apply` fires the store holds the transaction's final state
    and ``maintainer.last_changes`` lists the index deltas to log."""

    def __init__(self, engine: "DurabilityEngine") -> None:
        self._engine = engine

    def after_apply(self, state: "TransactionState", store) -> None:
        self._engine.log_commit(state)


class DurabilityEngine:
    """Owns one durability directory for one live :class:`GraphDatabase`."""

    def __init__(
        self,
        directory: Path,
        db: "GraphDatabase",
        config: DurabilityConfig,
        injector: FaultInjector,
        checkpoint_id: int,
        wal: WriteAheadLog,
        last_seq: int,
        replayed_records: int,
        replayed_bytes: int,
        segment_floor: int = 0,
        epoch: int = 1,
        promote_lsn: int = 0,
    ) -> None:
        self.directory = Path(directory)
        self.db = db
        self.config = config
        self.injector = injector
        self._checkpoint_id = checkpoint_id
        self._wal = wal
        self._seq = last_seq
        self._appended_seq = last_seq
        self._durable_seq = last_seq
        # Highest WAL sequence folded into the live checkpoint: every
        # record in the current segment has seq > _segment_floor, and a
        # replication subscriber whose start LSN is below it must catch up
        # from the checkpoint instead (those records are gone).
        self._segment_floor = segment_floor
        # Leader-epoch fence: the epoch this directory last served under
        # and the LSN at which that epoch began (its divergence floor).
        # Bumped only by promote(); adopted forward from a leader's stream
        # by adopt_epoch(). Never moves backwards.
        self._epoch = epoch
        self._promote_lsn = promote_lsn
        # True while apply_replicated replays a shipped record: the replay
        # path runs through the live mutation/DDL API, which must not log
        # fresh records for changes that came *from* the log.
        self._replicating = False
        self._records_since_checkpoint = replayed_records
        self._bytes_since_checkpoint = replayed_bytes
        store = db.store
        self._logged_labels = len(store.labels.all_tokens())
        self._logged_types = len(store.types.all_tokens())
        self._logged_keys = len(store.property_keys.all_tokens())
        # Appends serialize under _lock; the fsync deliberately does not,
        # so new appends can proceed while the group-commit leader syncs.
        self._lock = threading.RLock()
        self._sync_cond = threading.Condition()
        self._sync_leader = False
        self._deferred = threading.local()
        # Per-thread capture of the last commit's log sequence number, so
        # the database facade can return a read-your-writes LSN token with
        # each write query's result (see begin_lsn_capture/captured_lsn).
        self._lsn_capture = threading.local()
        # Separate capture for the version-publish protocol: consumed
        # (take-and-clear) exactly once per commit by publish_commit, so a
        # stale sequence from an earlier commit on this thread can never
        # stamp a later transaction's versions at an old LSN.
        self._publish_capture = threading.local()
        self.commits_logged = 0
        self.fsync_count = 0
        self.synced_commits = 0
        self.last_group_size = 0
        self.checkpoints_completed = 0
        self.recovered_records = replayed_records

    # ------------------------------------------------------------------
    # Open / recovery
    # ------------------------------------------------------------------

    @classmethod
    def open_database(
        cls,
        directory: Union[str, Path],
        config: Optional[DurabilityConfig] = None,
        injector: Optional[FaultInjector] = None,
        page_cache_pages: int = 1 << 20,
        page_size: Optional[int] = None,
        miss_latency_s: Optional[float] = None,
        dense_node_threshold: Optional[int] = None,
        maintenance_strategy: Optional[str] = None,
        execution_mode: Optional[str] = None,
        memory_budget: Optional[int] = None,
        memory_grant: Optional[int] = None,
    ) -> "GraphDatabase":
        """Open (creating or recovering) a durable database directory."""
        from repro.db.database import GraphDatabase
        from repro.db.snapshot import read_snapshot_metadata, read_snapshot_state

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        config = config if config is not None else DurabilityConfig()
        injector = injector if injector is not None else FaultInjector()
        db_kwargs = {
            "page_cache_pages": page_cache_pages,
            "execution_mode": execution_mode,
            "memory_budget": memory_budget,
            "memory_grant": memory_grant,
        }
        if miss_latency_s is not None:
            db_kwargs["miss_latency_s"] = miss_latency_s
        if maintenance_strategy is not None:
            db_kwargs["maintenance_strategy"] = maintenance_strategy

        epoch, promote_lsn = _read_epoch_file(directory)
        # A revived old leader re-reads its (stale) epoch here; the kill
        # point models it dying mid-revival, before serving anything.
        injector.reach("promote.old_leader_revival")

        base_lsn = 0
        segment_floor = 0
        current = directory / "CURRENT"
        if current.exists():
            # Existing database: configuration that shapes the stored
            # records comes from the checkpoint, not the caller.
            checkpoint_id = int(current.read_text().strip())
            checkpoint_dir = directory / _checkpoint_name(checkpoint_id)
            metadata = read_snapshot_metadata(checkpoint_dir)
            # LSN continuity across restarts: the checkpoint records the
            # publish watermark it folded (base_lsn) and the highest WAL
            # sequence it absorbed (base_wal_seq), so sequences — and the
            # read-your-writes tokens minted from them — never restart.
            base_lsn = int(metadata.get("base_lsn", 0))
            segment_floor = int(metadata.get("base_wal_seq", base_lsn))
            db = GraphDatabase(
                page_size=metadata.get("page_size", 8192),
                dense_node_threshold=metadata.get("dense_node_threshold", 50),
                **db_kwargs,
            )
            read_snapshot_state(db, checkpoint_dir)
        else:
            checkpoint_id = 1
            if page_size is not None:
                db_kwargs["page_size"] = page_size
            if dense_node_threshold is not None:
                db_kwargs["dense_node_threshold"] = dense_node_threshold
            db = GraphDatabase(**db_kwargs)
            cls._bootstrap(db, directory, checkpoint_id)
        _clean_orphans(directory, checkpoint_id)
        # Spill files live beside the WAL so a crash mid-spill is healed by
        # the same open-time sweep; the injector's spill.* kill-points fire
        # through the manager.
        db.spill_manager.attach(directory, injector)

        wal_path = directory / _wal_name(checkpoint_id)
        payloads, valid_length = scan_records(wal_path)
        if wal_path.exists() and wal_path.stat().st_size > valid_length:
            # Torn/corrupt tail: physically discard it before appending.
            with open(wal_path, "r+b") as handle:
                handle.truncate(valid_length)
        last_seq = base_lsn
        for payload in payloads:
            record_type, body = decode_record(payload)
            seq = record_seq(body)
            if seq <= last_seq:
                raise DurabilityError(
                    f"log sequence went backwards ({seq} after {last_seq})"
                )
            if record_type == REC_COMMIT:
                apply_commit_record(db, body)
            else:
                apply_ddl_record(db, body)
            # Stamp the replayed versions at the WAL sequence they were
            # originally committed under, so snapshot LSNs mean the same
            # thing across restarts (read-your-writes tokens survive).
            db.store.publish_commit(seq)
            last_seq = seq

        wal = WriteAheadLog(wal_path, injector)
        engine = cls(
            directory,
            db,
            config,
            injector,
            checkpoint_id,
            wal,
            last_seq,
            replayed_records=len(payloads),
            replayed_bytes=max(0, valid_length - len(WAL_HEADER)),
            segment_floor=segment_floor,
            epoch=epoch,
            promote_lsn=promote_lsn,
        )
        db.durability = engine
        db.tx_manager.register_applier(_WalApplier(engine))
        # Version-publish protocol: commits stamp their MVCC versions with
        # the exact WAL sequence log_commit assigned, and the clock's
        # watermark starts at the replayed prefix's last sequence (DDL
        # records publish nothing, so catch the watermark up here).
        db.tx_manager.lsn_provider = engine.take_publish_lsn
        db.store.mvcc.publish(last_seq)
        return db

    @staticmethod
    def _bootstrap(db: "GraphDatabase", directory: Path, checkpoint_id: int) -> None:
        """First open of a fresh directory: write the initial (empty)
        checkpoint and point ``CURRENT`` at it. No kill-points fire here —
        until ``CURRENT`` exists there is nothing to lose, and a crash
        mid-bootstrap is swept as orphans on the next open."""
        from repro.db.snapshot import write_snapshot_state

        tmp = directory / (_checkpoint_name(checkpoint_id) + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        write_snapshot_state(db, tmp)
        _fsync_tree(tmp)
        os.replace(tmp, directory / _checkpoint_name(checkpoint_id))
        _switch_current(directory, checkpoint_id)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------

    def log_commit(self, state: "TransactionState") -> None:
        """Serialize one committed transaction into the log.

        Called from the applier with the store fully updated. Read-only and
        token-only transactions write nothing (token registrations become
        durable as the prefix of the next real commit record)."""
        if self._replicating:
            return
        self.injector.check()
        ops = collect_operations(state)
        index_changes = list(self.db.maintainer.last_changes)
        if not ops and not index_changes:
            return
        store = self.db.store
        with self._lock:
            labels = store.labels.all_tokens()
            types = store.types.all_tokens()
            keys = store.property_keys.all_tokens()
            # Rollbacks and bulk-import adoption mint LSNs straight from
            # the version clock; keep WAL sequences strictly above them so
            # no two distinct publishes ever share a commit LSN.
            seq = max(self._seq, store.mvcc.published) + 1
            payload = encode_commit_record(
                seq,
                labels[self._logged_labels :],
                types[self._logged_types :],
                keys[self._logged_keys :],
                ops,
                index_changes,
            )
            self._append(payload, seq)
            self._logged_labels = len(labels)
            self._logged_types = len(types)
            self._logged_keys = len(keys)
            self.commits_logged += 1
        self._lsn_capture.seq = seq
        self._publish_capture.seq = seq
        if self._defer(seq):
            return
        self.sync(seq)
        if self.config.auto_checkpoint and self._should_checkpoint():
            self.checkpoint()

    def log_ddl(
        self,
        kind: str,
        name: str,
        pattern: str,
        partial: bool = False,
        populate: bool = True,
    ) -> None:
        """Log a path-index create/drop (replayed by re-running the DDL)."""
        if self._replicating:
            return
        self.injector.check()
        with self._lock:
            seq = max(self._seq, self.db.store.mvcc.published) + 1
            self._append(
                encode_ddl_record(seq, kind, name, pattern, partial, populate), seq
            )
        if not self._defer(seq):
            self.sync(seq)

    def _append(self, payload: bytes, seq: int) -> None:
        """Append one record; caller holds ``_lock``."""
        self._wal.append(payload)
        self._seq = seq
        self._appended_seq = seq
        self._records_since_checkpoint += 1
        self._bytes_since_checkpoint += len(payload) + 8

    def _defer(self, seq: int) -> bool:
        if getattr(self._deferred, "active", False):
            self._deferred.pending = seq
            return True
        return False

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------

    def sync(self, seq: int) -> None:
        """Block until record ``seq`` is durable — sharing fsyncs.

        The first waiter becomes the leader and fsyncs everything appended
        so far; waiters whose records that fsync covered return without
        ever touching the file."""
        while True:
            with self._sync_cond:
                while True:
                    if self._durable_seq >= seq:
                        return
                    if not self._sync_leader:
                        self._sync_leader = True
                        target = self._appended_seq
                        base = self._durable_seq
                        wal = self._wal
                        break
                    self._sync_cond.wait()
            try:
                wal.fsync()
            except BaseException:
                with self._sync_cond:
                    self._sync_leader = False
                    self._sync_cond.notify_all()
                raise
            with self._sync_cond:
                if target > self._durable_seq:
                    self.last_group_size = target - base
                    self.synced_commits += target - base
                    self._durable_seq = target
                self.fsync_count += 1
                self._sync_leader = False
                self._sync_cond.notify_all()

    def begin_lsn_capture(self) -> None:
        """Reset this thread's captured commit LSN; pair with
        :meth:`captured_lsn` around a write to learn its log sequence
        number (the read-your-writes token returned to clients)."""
        self._lsn_capture.seq = None

    def take_publish_lsn(self) -> Optional[int]:
        """The WAL sequence of the commit currently closing on this thread,
        cleared on read. Installed as ``TransactionManager.lsn_provider``:
        version publish stamps the commit's MVCC versions with it. None for
        transactions that logged nothing (token-only commits)."""
        seq = getattr(self._publish_capture, "seq", None)
        self._publish_capture.seq = None
        return seq

    def captured_lsn(self) -> Optional[int]:
        """The LSN of the last commit this thread logged since
        :meth:`begin_lsn_capture` (None if it logged nothing)."""
        return getattr(self._lsn_capture, "seq", None)

    @contextmanager
    def deferred_sync(self):
        """Within this context the calling thread's commits append to the
        log but do not fsync; call :meth:`sync_pending` afterwards. The
        query service brackets its lock-held write execution with this, so
        the fsync happens outside the exclusive lock and concurrent writers
        can share one group commit."""
        previous = getattr(self._deferred, "active", False)
        self._deferred.active = True
        try:
            yield
        finally:
            self._deferred.active = previous

    def sync_pending(self) -> None:
        """Make the calling thread's deferred commits durable."""
        seq = getattr(self._deferred, "pending", None)
        self._deferred.pending = None
        if seq is not None:
            self.sync(seq)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def _should_checkpoint(self) -> bool:
        return (
            self._records_since_checkpoint >= self.config.checkpoint_interval_records
            or self._bytes_since_checkpoint >= self.config.checkpoint_interval_bytes
        )

    def checkpoint(self) -> None:
        """Write an atomic snapshot and truncate the log.

        Takes the store's MVCC write lock itself (reentrant, so the
        commit-path auto-checkpoint nests under the committing writer):
        writers are excluded for the duration, while snapshot readers
        continue unimpeded — they resolve against version chains the
        checkpoint only reads. Afterwards, with the store quiescent,
        version chains are vacuumed and index deltas folded.
        """
        from repro.db.snapshot import write_snapshot_state

        injector = self.injector
        injector.check()
        with self.db.store.mvcc.exclusive_writer(), self._lock:
            injector.reach("checkpoint.before")
            next_id = self._checkpoint_id + 1
            tmp = self.directory / (_checkpoint_name(next_id) + ".tmp")
            if tmp.exists():
                shutil.rmtree(tmp)
            tmp.mkdir()
            # The snapshot absorbs every appended record and the publish
            # watermark (rollbacks mint LSNs above the last append); both
            # are recorded so reopen resumes the sequence and replication
            # knows which start LSNs this segment can still serve.
            floor = self._appended_seq
            watermark = max(self._appended_seq, self.db.store.mvcc.published)
            write_snapshot_state(
                self.db,
                tmp,
                on_progress=lambda _name: injector.reach("checkpoint.mid_snapshot"),
                extra_metadata={"base_lsn": watermark, "base_wal_seq": floor},
            )
            _fsync_tree(tmp)
            injector.reach("checkpoint.before_rename")
            os.replace(tmp, self.directory / _checkpoint_name(next_id))
            _fsync_dir(self.directory)
            new_wal = WriteAheadLog(self.directory / _wal_name(next_id), injector)
            injector.reach("checkpoint.before_current")
            _switch_current(self.directory, next_id)
            injector.reach("checkpoint.after_current")
            # The new pair is live. Swap the writer (waiting out any
            # in-flight group-commit leader: records appended but not yet
            # fsynced are covered by the snapshot, so they are durable now)
            # and then sweep the old pair.
            old_checkpoint = self.directory / _checkpoint_name(self._checkpoint_id)
            with self._sync_cond:
                while self._sync_leader:
                    self._sync_cond.wait()
                old_wal = self._wal
                self._wal = new_wal
                self._durable_seq = self._appended_seq
                self._sync_cond.notify_all()
            old_wal.close()
            try:
                os.remove(old_wal.path)
            except FileNotFoundError:
                pass
            shutil.rmtree(old_checkpoint, ignore_errors=True)
            injector.reach("checkpoint.after")
            self._checkpoint_id = next_id
            self._segment_floor = floor
            self._records_since_checkpoint = 0
            self._bytes_since_checkpoint = 0
            self.checkpoints_completed += 1
            # Reclaim version chains behind the oldest live snapshot and
            # fold stamped index deltas (skipped automatically while any
            # snapshot is live). Already under the write lock here.
            self.db.store.collect_versions()

    # ------------------------------------------------------------------
    # Replication (leader side: segment iteration + checkpoint shipping;
    # replica side: idempotent record application + snapshot install)
    # ------------------------------------------------------------------

    def maybe_checkpoint(self) -> bool:
        """Checkpoint now if the configured interval is exceeded (the
        replica apply loop calls this — its records bypass the commit
        path's auto-checkpoint trigger)."""
        if self.config.auto_checkpoint and self._should_checkpoint():
            self.checkpoint()
            return True
        return False

    def replication_position(self) -> dict:
        """Where the live segment is, for the leader-side shipper.

        The shipper compares ``checkpoint_id`` across polls to notice the
        segment being swapped out underneath it, and ``segment_floor`` to
        decide whether a subscriber's start LSN can still be served from
        the log (``from_lsn >= segment_floor``) or requires checkpoint
        catch-up. Only records with ``seq <= durable_seq`` may ship: a
        replica must never apply a record the leader could lose.
        """
        with self._lock:
            return {
                "checkpoint_id": self._checkpoint_id,
                "wal_path": self._wal.path,
                "segment_floor": self._segment_floor,
                "durable_seq": self._durable_seq,
                "epoch": self._epoch,
                "promote_lsn": self._promote_lsn,
            }

    def applied_lsn(self) -> int:
        """The highest LSN this database has applied/published."""
        return max(self._seq, self.db.store.mvcc.published)

    # ------------------------------------------------------------------
    # Leader epochs (controlled failover)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The leader epoch this directory last served under (>= 1)."""
        return self._epoch

    @property
    def promote_lsn(self) -> int:
        """The LSN at which the current epoch began — the divergence
        floor: records at or below it are shared history with every lower
        epoch; records above it exist only on this epoch's timeline."""
        return self._promote_lsn

    def adopt_epoch(self, epoch: int, promote_lsn: int = 0) -> None:
        """Persist a higher epoch learned from a leader's stream (replica
        side). Lower or equal epochs are no-ops — epochs never regress."""
        self.injector.check()
        with self._lock:
            if epoch <= self._epoch:
                return
            _write_epoch_file(self.directory, epoch, promote_lsn)
            self._epoch = epoch
            self._promote_lsn = promote_lsn

    def promote(self) -> int:
        """Claim leadership: verify the WAL tail, fence the old epoch,
        and return the new one.

        The promotion recipe for a (stopped-tailing) replica: make every
        appended record durable, re-scan the on-disk tail and check that
        recovery would land exactly on the applied state, then atomically
        persist ``epoch + 1`` with this node's applied LSN as the new
        divergence floor. A crash before the EPOCH write means the
        promotion never happened (the node re-opens as a replica of the
        old epoch); a crash after it means the node re-opens already
        promoted. Both kill-points on that path are armed by the failover
        test matrix.
        """
        injector = self.injector
        injector.check()
        with self.db.store.mvcc.exclusive_writer(), self._lock:
            # Nothing the new leader could still lose may remain
            # unsynced: its state becomes the authoritative timeline.
            if self._appended_seq > self._durable_seq:
                self.sync(self._appended_seq)
            # Tail replay verification: scan the live segment the way
            # recovery would (the WAL file is unbuffered, so the scan
            # sees every appended byte) and require it to end exactly at
            # the applied sequence — a torn or lagging tail must surface
            # here, not after the epoch is claimed.
            injector.reach("promote.mid_tail_replay")
            payloads, _valid_length = scan_records(self._wal.path)
            tail_seq = self._segment_floor
            for payload in payloads:
                tail_seq = record_seq(decode_record(payload)[1])
            if payloads and tail_seq != self._appended_seq:
                raise DurabilityError(
                    f"promotion tail mismatch: log ends at sequence "
                    f"{tail_seq}, applied state at {self._appended_seq}"
                )
            injector.reach("promote.before_epoch_bump")
            new_epoch = self._epoch + 1
            divergence = self.applied_lsn()
            _write_epoch_file(self.directory, new_epoch, divergence)
            self._epoch = new_epoch
            self._promote_lsn = divergence
        return new_epoch

    def read_checkpoint(self) -> tuple[int, dict[str, bytes]]:
        """The live checkpoint's files, for shipping to a lagging replica.

        Returns ``(resume_lsn, files)``: after installing ``files`` the
        replica holds every change up to ``resume_lsn`` (the segment
        floor) and resubscribes from there. Read under the engine lock so
        a concurrent checkpoint cannot delete the directory mid-read.
        """
        self.injector.check()
        with self._lock:
            checkpoint_dir = self.directory / _checkpoint_name(self._checkpoint_id)
            files = {
                entry.name: entry.read_bytes()
                for entry in sorted(checkpoint_dir.iterdir())
                if entry.is_file()
            }
            return self._segment_floor, files

    def apply_replicated(self, payload: bytes) -> Optional[int]:
        """Apply one shipped log record; returns its LSN, or None if it
        was already applied (re-delivery after a reconnect is a no-op —
        idempotence comes from the monotonic sequence check, same as
        recovery's backwards-sequence guard).

        Runs under the store's exclusive writer lock so snapshot readers
        stay lock-free and consistent: the record's versions are pending
        (invisible) until ``publish_commit`` stamps them, and the lock
        keeps ``db.snapshot()``'s orphan-adoption path from publishing
        them early. The original payload bytes are appended verbatim to
        the replica's own WAL, so its directory recovers exactly like a
        leader's.
        """
        self.injector.check()
        record_type, body = decode_record(payload)
        seq = record_seq(body)
        store = self.db.store
        with store.mvcc.exclusive_writer(), self._lock:
            if seq <= max(self._seq, store.mvcc.published):
                return None
            self._replicating = True
            try:
                if record_type == REC_COMMIT:
                    apply_commit_record(self.db, body)
                else:
                    apply_ddl_record(self.db, body)
            finally:
                self._replicating = False
            self._append(payload, seq)
            store.publish_commit(seq)
            # Token registries advanced via the record's token suffix;
            # keep the logged-token cursors in step in case this database
            # is ever promoted to accept writes of its own.
            self._logged_labels = len(store.labels.all_tokens())
            self._logged_types = len(store.types.all_tokens())
            self._logged_keys = len(store.property_keys.all_tokens())
        return seq

    @staticmethod
    def install_checkpoint(directory: Union[str, Path], files: dict) -> None:
        """Install shipped checkpoint files as ``directory``'s live pair.

        The replica's catch-up path: writes the files into a fresh
        checkpoint directory (same tmp → fsync → rename → ``CURRENT``
        dance as a local checkpoint, so a crash mid-install leaves the old
        pair intact), then sweeps the obsolete pair. The caller re-opens
        the directory afterwards; the paired WAL segment starts empty.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        current = directory / "CURRENT"
        next_id = 1
        if current.exists():
            next_id = int(current.read_text().strip()) + 1
        tmp = directory / (_checkpoint_name(next_id) + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        for name, data in files.items():
            if "/" in name or name.startswith("."):
                raise DurabilityError(f"unsafe checkpoint file name {name!r}")
            (tmp / name).write_bytes(data)
        _fsync_tree(tmp)
        os.replace(tmp, directory / _checkpoint_name(next_id))
        _fsync_dir(directory)
        _switch_current(directory, next_id)
        _clean_orphans(directory, next_id)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Fsync anything pending and release the log file."""
        if self.injector.crashed:
            self._wal.close()
            return
        with self._lock:
            if self._appended_seq > self._durable_seq:
                self.sync(self._appended_seq)
            self._wal.close()

    def simulate_power_loss(self) -> None:
        """After a simulated crash: drop log bytes the OS never fsynced,
        modelling power loss rather than a mere process kill."""
        self._wal.truncate_to_synced()

    def status(self) -> dict:
        """Counters for the service metrics section and the shell."""
        return {
            "directory": str(self.directory),
            "checkpoint_id": self._checkpoint_id,
            "appended_seq": self._appended_seq,
            "durable_seq": self._durable_seq,
            "commits_logged": self.commits_logged,
            "fsyncs": self.fsync_count,
            "synced_commits": self.synced_commits,
            "last_group_size": self.last_group_size,
            "checkpoints": self.checkpoints_completed,
            "segment_floor": self._segment_floor,
            "epoch": self._epoch,
            "promote_lsn": self._promote_lsn,
            "recovered_records": self.recovered_records,
            "records_since_checkpoint": self._records_since_checkpoint,
            "bytes_since_checkpoint": self._bytes_since_checkpoint,
            "crashed": self.injector.crashed,
        }


# ---------------------------------------------------------------------------
# Directory helpers
# ---------------------------------------------------------------------------


def _checkpoint_name(checkpoint_id: int) -> str:
    return f"checkpoint-{checkpoint_id:06d}"


def _wal_name(checkpoint_id: int) -> str:
    return f"wal-{checkpoint_id:06d}.log"


def _read_epoch_file(directory: Path) -> tuple[int, int]:
    """``(epoch, promote_lsn)`` from ``EPOCH``; ``(1, 0)`` when absent."""
    try:
        parts = (directory / "EPOCH").read_text().split()
    except FileNotFoundError:
        return 1, 0
    try:
        epoch = int(parts[0])
        promote_lsn = int(parts[1]) if len(parts) > 1 else 0
    except (IndexError, ValueError) as exc:
        raise DurabilityError(f"malformed EPOCH file in {directory}") from exc
    if epoch < 1 or promote_lsn < 0:
        raise DurabilityError(f"malformed EPOCH file in {directory}")
    return epoch, promote_lsn


def _write_epoch_file(directory: Path, epoch: int, promote_lsn: int) -> None:
    """Atomically persist the epoch fence (write temp, fsync, rename,
    fsync dir — same dance as ``CURRENT``, so a crash leaves either the
    old fence or the new one, never a torn file)."""
    tmp = directory / "EPOCH.tmp"
    tmp.write_text(f"{epoch} {promote_lsn}\n")
    _fsync_file(tmp)
    os.replace(tmp, directory / "EPOCH")
    _fsync_dir(directory)


def _switch_current(directory: Path, checkpoint_id: int) -> None:
    """Atomically repoint ``CURRENT`` (write temp, fsync, rename, fsync dir)."""
    tmp = directory / "CURRENT.tmp"
    tmp.write_text(f"{checkpoint_id:06d}\n")
    _fsync_file(tmp)
    os.replace(tmp, directory / "CURRENT")
    _fsync_dir(directory)


def _clean_orphans(directory: Path, keep_id: int) -> None:
    """Sweep artifacts of an interrupted checkpoint or bootstrap: anything
    not referenced by ``CURRENT`` is garbage by construction. Spill files
    are always transient (a query that crashed mid-spill never commits
    anything that references them), so every ``*.spill`` goes too."""
    keep = {_checkpoint_name(keep_id), _wal_name(keep_id), "CURRENT", "EPOCH"}
    for entry in directory.iterdir():
        if entry.name in keep:
            continue
        if entry.name.startswith("checkpoint-"):
            shutil.rmtree(entry, ignore_errors=True)
        elif (
            entry.name.startswith("wal-")
            or entry.name == "CURRENT.tmp"
            or entry.name == "EPOCH.tmp"
            or entry.name.endswith(".spill")
        ):
            try:
                os.remove(entry)
            except OSError:
                pass


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    _fsync_file(path)


def _fsync_tree(path: Path) -> None:
    for child in path.iterdir():
        _fsync_file(child)
    _fsync_dir(path)
