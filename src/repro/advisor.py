"""Index advisor: which patterns should be path-indexed?

§9 of the paper names index selection "an interesting optimization problem"
and §7.3 describes the manual procedure the authors used on YAGO: compare
the planner's cardinality estimate for workload patterns against actual
counts; a large *misprediction factor* signals correlated data, and a low
actual cardinality signals a selective pattern — the combination is the
path-index sweet spot (§8). This module automates that procedure:

1. extract candidate patterns from a Cypher workload (each path-shaped MATCH
   plus all of its contiguous sub-patterns, the Sub1..SubN family of the
   evaluation);
2. score each candidate by misprediction × selectivity;
3. greedily pick candidates under a storage budget (estimated from the
   actual count and the 8·(2k+1) entry size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.bptree.keys import entry_size_bytes
from repro.cypher import analyze, parse
from repro.db.database import GraphDatabase
from repro.db.patternquery import run_pattern_query
from repro.errors import ReproError
from repro.pathindex.pattern import PathPattern, PatternRelationship
from repro.planner import CardinalityEstimator, PlannerHints
from repro.querygraph import QueryGraph, build_query_parts

_BASELINE = PlannerHints(use_path_indexes=False)

# B+-tree pages are ~50–70% full on random insertion; Table 2 shows ≈2.3×
# on-disk overhead over raw entry data in Neo4j's implementation.
_DISK_OVERHEAD = 2.0


@dataclass(frozen=True)
class IndexCandidate:
    """One scored candidate pattern."""

    pattern: PathPattern
    actual_cardinality: int
    estimated_cardinality: float
    estimated_bytes: int

    @property
    def misprediction_factor(self) -> float:
        """≥1; how wrong the independence estimate is, either direction."""
        if self.actual_cardinality == 0:
            return float("inf") if self.estimated_cardinality > 1 else 1.0
        ratio = self.estimated_cardinality / self.actual_cardinality
        if ratio <= 0:
            return float("inf")
        return max(ratio, 1.0 / ratio)

    def score(self, total_relationships: int) -> float:
        """Misprediction × selectivity — the §8 heuristic, quantified."""
        selectivity = 1.0 - min(
            1.0, self.actual_cardinality / max(total_relationships, 1)
        )
        factor = self.misprediction_factor
        if factor == float("inf"):
            factor = 1e6
        return factor * selectivity


class IndexAdvisor:
    """Scores and selects path-index candidates for a workload."""

    def __init__(self, db: GraphDatabase) -> None:
        self.db = db
        self.estimator = CardinalityEstimator(
            db.store.statistics, db.store.labels, db.store.types
        )

    # ------------------------------------------------------------------
    # Candidate extraction
    # ------------------------------------------------------------------

    def patterns_from_query(self, query_text: str) -> list[PathPattern]:
        """The query's path pattern plus all contiguous sub-patterns."""
        pattern = extract_path_pattern(query_text)
        if pattern is None:
            return []
        family = [pattern]
        family.extend(pattern.sub_patterns())
        return family

    def candidates(self, workload: Iterable[str]) -> list[IndexCandidate]:
        """Deduplicated, scored candidates for a workload, best first."""
        seen: dict[str, PathPattern] = {}
        for query_text in workload:
            for pattern in self.patterns_from_query(query_text):
                seen.setdefault(str(pattern), pattern)
        scored = [self.evaluate(pattern) for pattern in seen.values()]
        total = self.db.store.statistics.relationship_count
        scored.sort(key=lambda candidate: candidate.score(total), reverse=True)
        return scored

    def evaluate(self, pattern: PathPattern) -> IndexCandidate:
        """Count the pattern (exactly) and estimate it (independence model)."""
        entries, _ = run_pattern_query(
            self.db.store, self.db.indexes, pattern, hints=_BASELINE
        )
        actual = sum(1 for _ in entries)
        graph = _pattern_query_graph(pattern)
        estimate = self.estimator.pattern_cardinality(
            graph, frozenset(graph.relationships), frozenset(graph.nodes)
        )
        bytes_estimate = int(
            actual * entry_size_bytes(pattern.key_width) * _DISK_OVERHEAD
        )
        return IndexCandidate(
            pattern=pattern,
            actual_cardinality=actual,
            estimated_cardinality=estimate,
            estimated_bytes=bytes_estimate,
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def advise(
        self,
        workload: Iterable[str],
        budget_bytes: Optional[int] = None,
        max_indexes: Optional[int] = None,
    ) -> list[IndexCandidate]:
        """Greedy selection of the best candidates under the constraints."""
        chosen: list[IndexCandidate] = []
        remaining = budget_bytes
        for candidate in self.candidates(workload):
            if max_indexes is not None and len(chosen) >= max_indexes:
                break
            if remaining is not None and candidate.estimated_bytes > remaining:
                continue
            chosen.append(candidate)
            if remaining is not None:
                remaining -= candidate.estimated_bytes
        return chosen

    def create_advised(
        self,
        workload: Iterable[str],
        budget_bytes: Optional[int] = None,
        max_indexes: Optional[int] = None,
        name_prefix: str = "advised",
    ) -> list[str]:
        """Advise and actually build the chosen indexes; returns their names."""
        names = []
        for position, candidate in enumerate(
            self.advise(workload, budget_bytes, max_indexes)
        ):
            name = f"{name_prefix}_{position}"
            self.db.create_path_index(name, candidate.pattern)
            names.append(name)
        return names


# ---------------------------------------------------------------------------
# Pattern extraction from Cypher
# ---------------------------------------------------------------------------


def extract_path_pattern(query_text: str) -> Optional[PathPattern]:
    """The single path pattern of a query, or None if the query's shape is
    not an open chain (path indexes cover chains only)."""
    try:
        parts = build_query_parts(analyze(parse(query_text)))
    except ReproError:
        return None
    if len(parts) != 1:
        return None
    graph = parts[0].query_graph
    if not graph.relationships or len(graph.nodes) != len(graph.relationships) + 1:
        return None
    # Chain check: every node appears in ≤2 relationships; find the ends.
    incidence: dict[str, list] = {name: [] for name in graph.nodes}
    for rel in graph.relationships.values():
        if rel.start == rel.end or not rel.directed:
            return None
        incidence[rel.start].append(rel)
        incidence[rel.end].append(rel)
    ends = [name for name, rels in incidence.items() if len(rels) == 1]
    if len(ends) != 2 or any(len(rels) > 2 for rels in incidence.values()):
        return None
    current = min(ends)
    labels = []
    steps = []
    used: set[str] = set()
    while True:
        node = graph.nodes[current]
        labels.append(min(node.labels) if node.labels else None)
        next_rels = [rel for rel in incidence[current] if rel.name not in used]
        if not next_rels:
            break
        rel = next_rels[0]
        used.add(rel.name)
        if len(rel.types) > 1:
            return None
        type_name = min(rel.types) if rel.types else None
        steps.append(PatternRelationship(type_name, forward=rel.start == current))
        current = rel.other(current)
    if len(steps) != len(graph.relationships):
        return None
    return PathPattern(labels=tuple(labels), relationships=tuple(steps))


def _pattern_query_graph(pattern: PathPattern) -> QueryGraph:
    from repro.db.patternquery import build_pattern_part

    part, _ = build_pattern_part(pattern)
    return part.query_graph
