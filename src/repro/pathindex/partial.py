"""Partially materialized path indexes (§4.1).

The paper notes its index implementation was modified "to facilitate
partially materialized indexes". This module provides that facility: a
:class:`PartialPathIndex` stores pattern occurrences only for *start nodes
that have been asked about*. It can never serve a full PathIndexScan — the
planner offers it exclusively through PathIndexPrefixSeek — but a prefix
seek materializes the bound start node on first touch (by anchored
traversal) and serves every later seek from the B+-tree.

Maintenance integrates naturally with Algorithm 1: removals apply verbatim
(absent entries are no-ops), additions are filtered to materialized start
nodes (everything else will be recomputed on demand anyway).

Under MVCC, materialization is a *latest-mode* operation: it mutates the
shared index. A snapshot reader must not publish entries other snapshots
could half-observe, and could not share them anyway (its traversal sees
the graph at its own LSN) — so snapshot seeks materialize into a private
per-snapshot cache (:attr:`Snapshot.partial_cache`) and serve prefix scans
from it, leaving all shared state untouched.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.db.patternquery import NodeAnchor
from repro.errors import PathIndexError
from repro.pathindex.index import PathIndex
from repro.pathindex.maintenance import traverse_pattern
from repro.pathindex.pattern import PathPattern
from repro.storage.graphstore import GraphStore
from repro.storage.pagecache import PageCache
from repro.storage.versions import VersionClock


class PartialPathIndex(PathIndex):
    """A lazily-populated path index keyed by materialized start nodes."""

    supports_full_scan = False

    def __init__(
        self,
        name: str,
        pattern: PathPattern,
        page_cache: Optional[PageCache] = None,
        clock: Optional[VersionClock] = None,
    ) -> None:
        super().__init__(name, pattern, page_cache, clock=clock)
        self._materialized_starts: set[int] = set()

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    @property
    def materialized_start_count(self) -> int:
        return len(self._materialized_starts)

    def is_materialized(self, start_node: int) -> bool:
        return start_node in self._materialized_starts

    def _ambient_snapshot(self):
        if self.clock is None:
            return None
        return self.clock.ambient()

    def prepare_prefix(self, prefix: Sequence[int], store: GraphStore) -> None:
        """Materialize the prefix's start node before a seek (runtime hook).

        Latest-mode readers (writers, embedded use) materialize into the
        shared index; snapshot readers compute the start's occurrences at
        their own LSN into the snapshot's private cache.
        """
        if not prefix:
            raise PathIndexError(
                f"partial index {self.name!r} requires a non-empty seek prefix"
            )
        start_node = int(prefix[0])
        snapshot = self._ambient_snapshot()
        if snapshot is None:
            self.materialize_start(start_node, store)
            return
        key = (id(self), start_node)
        if key in snapshot.partial_cache:
            return
        entries: list[tuple[int, ...]] = []
        if store.node_exists(start_node):
            anchor = NodeAnchor(0, start_node)
            for entry in traverse_pattern(store, self.pattern, anchor):
                entries.append(tuple(entry))
        entries.sort()
        snapshot.partial_cache[key] = entries

    def materialize_start(self, start_node: int, store: GraphStore) -> int:
        """Compute and insert all occurrences beginning at ``start_node``;
        returns how many entries were added (0 if already materialized)."""
        if start_node in self._materialized_starts:
            return 0
        added = 0
        if store.node_exists(start_node):
            anchor = NodeAnchor(0, start_node)
            for entry in traverse_pattern(store, self.pattern, anchor):
                if self.add_if_covered(entry, force=True):
                    added += 1
        self._materialized_starts.add(start_node)
        return added

    def restore_materialized_starts(self, starts: Sequence[int]) -> None:
        """Snapshot support: mark these start nodes as materialized."""
        self._materialized_starts.update(int(start) for start in starts)

    def materialized_starts(self) -> list[int]:
        return sorted(self._materialized_starts)

    def evict_start(self, start_node: int) -> int:
        """Drop a start node's entries (cache-style eviction); returns the
        number of removed entries."""
        removed = 0
        for entry in list(self.scan_prefix((start_node,))):
            if self.remove(entry):
                removed += 1
        self._materialized_starts.discard(start_node)
        return removed

    # ------------------------------------------------------------------
    # Maintenance integration
    # ------------------------------------------------------------------

    def add_if_covered(self, entry: Sequence[int], force: bool = False) -> bool:
        """Insert an occurrence only if its start node is materialized."""
        entry_tuple = tuple(entry)
        if not force and entry_tuple[0] not in self._materialized_starts:
            return False
        return super().add(entry_tuple)

    def add(self, entry: Sequence[int]) -> bool:
        return self.add_if_covered(entry)

    # ------------------------------------------------------------------
    # Scans: only prefix access is meaningful
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, ...]]:
        raise PathIndexError(
            f"partial index {self.name!r} cannot serve a full scan; "
            "use prefix seeks"
        )

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[tuple[int, ...]]:
        snapshot = self._ambient_snapshot()
        if snapshot is not None:
            prefix_tuple = tuple(int(value) for value in prefix)
            cached = snapshot.partial_cache.get((id(self), prefix_tuple[0]))
            if cached is not None:
                width = len(prefix_tuple)
                return (
                    entry for entry in cached if entry[:width] == prefix_tuple
                )
        return super().scan_prefix(prefix)

    def count_prefix(self, prefix: Sequence[int]) -> int:
        snapshot = self._ambient_snapshot()
        if snapshot is not None:
            prefix_tuple = tuple(int(value) for value in prefix)
            cached = snapshot.partial_cache.get((id(self), prefix_tuple[0]))
            if cached is not None:
                width = len(prefix_tuple)
                return sum(
                    1 for entry in cached if entry[:width] == prefix_tuple
                )
        return super().count_prefix(prefix)

    def scan_materialized(self) -> Iterator[tuple[int, ...]]:
        """Everything currently materialized (diagnostics/tests); merges
        unfolded overlay deltas at the reader's LSN."""
        if not self._deltas:
            return self.tree.scan()
        return self._merged(
            self.tree.scan(), self._overlay_at(self._reading_lsn())
        )

    def __repr__(self) -> str:
        return (
            f"PartialPathIndex({self.name!r}, {self.pattern}, "
            f"n={self.cardinality}, starts={self.materialized_start_count})"
        )
