"""A single path index: one pattern, one B+-tree (§2.3.1).

Entries are identifier tuples ``(n0, r0, n1, ..., nk)`` in pattern order.
The index never stores pattern information — each pattern has its own tree —
so the only data are the identifiers, exactly as in Figure 4.

Under MVCC (see ``repro.storage.versions``) a *sealed* index never mutates
its shared B+-tree during commits. Maintenance appends to a delta overlay —
an append-only list of ``(lsn, is_add, entry)`` events stamped at commit
publish — and every scan merges the tree with the overlay filtered to the
reader's snapshot LSN. The tree itself only changes while the index is
*unsealed* (initial population, checkpoint restore) or during a fold, both
of which run with no live snapshots. Lock-free readers therefore never see
a half-applied B+-tree split.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.bptree import BPlusTree
from repro.errors import PathIndexError
from repro.pathindex.pattern import PathPattern
from repro.storage.pagecache import PageCache
from repro.storage.versions import PENDING, VersionClock


class PathIndex:
    """B+-tree-backed index over one path pattern."""

    supports_full_scan = True
    """Fully materialized indexes serve PathIndexScan; partial ones do not."""

    def __init__(
        self,
        name: str,
        pattern: PathPattern,
        page_cache: Optional[PageCache] = None,
        clock: Optional[VersionClock] = None,
    ) -> None:
        self.name = name
        self.pattern = pattern
        self.tree = BPlusTree(
            key_width=pattern.key_width,
            page_cache=page_cache,
            file_name=f"pathindex.{name}.db",
        )
        #: The store's version clock; ``None`` for standalone (test) use,
        #: in which case every read resolves at latest.
        self.clock = clock
        #: While False (construction, restore) adds/removes go straight to
        #: the tree; once sealed they go through the delta overlay.
        self.sealed = False
        #: Commit LSN at which the index became visible to planners.
        #: ``PENDING`` while a build is in flight (invisible to everyone).
        self.created_lsn = 0
        # The overlay: append-only (lsn, is_add, entry) events, plus a
        # latest-membership cache and the net entry-count correction.
        self._deltas: list[tuple[float, bool, tuple[int, ...]]] = []
        self._delta_latest: dict[tuple[int, ...], bool] = {}
        self._delta_net = 0

    # ------------------------------------------------------------------
    # MVCC lifecycle
    # ------------------------------------------------------------------

    def seal(self, created_lsn: int) -> None:
        """End construction: future writes become overlay deltas and the
        index is planner-visible to snapshots at ``created_lsn`` or later."""
        self.sealed = True
        self.created_lsn = created_lsn

    def _reading_lsn(self) -> Optional[float]:
        """The ambient snapshot's LSN, or None for latest-mode reads."""
        if self.clock is None:
            return None
        return self.clock.reading_lsn()

    # -- commit-publish protocol (GraphStore publisher) -----------------

    def has_pending(self) -> bool:
        deltas = self._deltas
        return bool(deltas) and deltas[-1][0] is PENDING

    def publish(self, lsn: int) -> None:
        """Stamp the contiguous pending tail of the overlay at ``lsn``."""
        deltas = self._deltas
        for i in range(len(deltas) - 1, -1, -1):
            stamp, is_add, entry = deltas[i]
            if stamp is not PENDING:
                break
            deltas[i] = (lsn, is_add, entry)

    def delta_count(self) -> int:
        return len(self._deltas)

    def fold(self) -> int:
        """Apply every *stamped* delta to the tree and drop it.

        Caller must guarantee no live snapshots (they resolve against the
        tree) and hold the store write lock. Pending deltas of an in-flight
        commit (auto-checkpoint runs mid-commit) are kept. Returns the
        number of folded deltas.
        """
        deltas = self._deltas
        keep: list[tuple[float, bool, tuple[int, ...]]] = []
        folded = 0
        for stamp, is_add, entry in deltas:
            if stamp is PENDING:
                keep.append((stamp, is_add, entry))
                continue
            if is_add:
                self.tree.insert(entry)
            else:
                self.tree.delete(entry)
            folded += 1
        if folded:
            latest = {entry: is_add for _, is_add, entry in keep}
            net = sum(1 if is_add else -1 for _, is_add, _ in keep)
            self._delta_latest = latest
            self._delta_net = net
            self._deltas = keep
        return folded

    # ------------------------------------------------------------------
    # Entry operations
    # ------------------------------------------------------------------

    def add(self, entry: Sequence[int]) -> bool:
        """Insert one path occurrence; returns False if already present."""
        entry_tuple = self._validated(entry)
        if not self.sealed:
            return self.tree.insert(entry_tuple)
        if self._member_latest(entry_tuple):
            return False
        self._deltas.append((PENDING, True, entry_tuple))
        self._delta_latest[entry_tuple] = True
        self._delta_net += 1
        return True

    def remove(self, entry: Sequence[int]) -> bool:
        """Remove one path occurrence; returns False if absent."""
        entry_tuple = self._validated(entry)
        if not self.sealed:
            return self.tree.delete(entry_tuple)
        if not self._member_latest(entry_tuple):
            return False
        self._deltas.append((PENDING, False, entry_tuple))
        self._delta_latest[entry_tuple] = False
        self._delta_net -= 1
        return True

    def __contains__(self, entry: Sequence[int]) -> bool:
        entry_tuple = tuple(entry)
        if self._deltas:
            lsn = self._reading_lsn()
            if lsn is None:
                state = self._delta_latest.get(entry_tuple)
                if state is not None:
                    return state
            else:
                for stamp, is_add, delta_entry in reversed(self._deltas):
                    if stamp > lsn:
                        continue
                    if delta_entry == entry_tuple:
                        return is_add
        return entry_tuple in self.tree

    def _member_latest(self, entry_tuple: tuple[int, ...]) -> bool:
        state = self._delta_latest.get(entry_tuple)
        if state is not None:
            return state
        return entry_tuple in self.tree

    # ------------------------------------------------------------------
    # Scans (the three access paths of §5.1)
    # ------------------------------------------------------------------

    def _overlay_at(
        self, lsn: Optional[float], prefix: tuple[int, ...] = ()
    ) -> dict[tuple[int, ...], bool]:
        """Net overlay membership visible at ``lsn`` (latest when None),
        restricted to entries starting with ``prefix``."""
        out: dict[tuple[int, ...], bool] = {}
        width = len(prefix)
        # Appends race-free: events landing after iteration starts are
        # either PENDING or stamped above any pinned snapshot's LSN.
        for stamp, is_add, entry in self._deltas:
            if lsn is not None and stamp > lsn:
                continue
            if width and entry[:width] != prefix:
                continue
            out[entry] = is_add
        return out

    def _merged(
        self,
        tree_iter: Iterator[tuple[int, ...]],
        overlay: dict[tuple[int, ...], bool],
    ) -> Iterator[tuple[int, ...]]:
        """Sorted merge of a tree scan with an overlay dict."""
        adds = sorted(entry for entry, alive in overlay.items() if alive)
        position, count = 0, len(adds)
        for entry in tree_iter:
            while position < count and adds[position] < entry:
                yield adds[position]
                position += 1
            if position < count and adds[position] == entry:
                position += 1  # re-added tree entry: emit once, below
            if overlay.get(entry) is False:
                continue
            yield entry
        while position < count:
            yield adds[position]
            position += 1

    def scan(self) -> Iterator[tuple[int, ...]]:
        if not self._deltas:
            return self.tree.scan()
        return self._merged(self.tree.scan(), self._overlay_at(self._reading_lsn()))

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[tuple[int, ...]]:
        if not self._deltas:
            return self.tree.scan_prefix(prefix)
        prefix_tuple = tuple(prefix)
        return self._merged(
            self.tree.scan_prefix(prefix_tuple),
            self._overlay_at(self._reading_lsn(), prefix_tuple),
        )

    def prepare_prefix(self, prefix: Sequence[int], store) -> None:
        """Hook invoked before a prefix seek; partial indexes materialize the
        bound start node here. Fully materialized indexes need nothing."""

    def scan_from(self, lower: Sequence[int]) -> Iterator[tuple[int, ...]]:
        if not self._deltas:
            return self.tree.scan_from(lower)
        lower_tuple = tuple(lower)
        overlay = {
            entry: alive
            for entry, alive in self._overlay_at(self._reading_lsn()).items()
            if entry >= lower_tuple
        }
        return self._merged(self.tree.scan_from(lower_tuple), overlay)

    def count_prefix(self, prefix: Sequence[int]) -> int:
        prefix_tuple = tuple(prefix)
        count = self.tree.count_prefix(prefix_tuple)
        if self._deltas:
            overlay = self._overlay_at(self._reading_lsn(), prefix_tuple)
            for entry, alive in overlay.items():
                in_tree = entry in self.tree
                if alive and not in_tree:
                    count += 1
                elif not alive and in_tree:
                    count -= 1
        return count

    # ------------------------------------------------------------------
    # Statistics (Table 2/6/9/12 columns)
    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of indexed path occurrences (at the reader's snapshot)."""
        if not self._deltas:
            return len(self.tree)
        lsn = self._reading_lsn()
        if lsn is None:
            return len(self.tree) + self._delta_net
        net = 0
        for entry, alive in self._overlay_at(lsn).items():
            in_tree = entry in self.tree
            if alive and not in_tree:
                net += 1
            elif not alive and in_tree:
                net -= 1
        return len(self.tree) + net

    def size_on_disk(self) -> int:
        return self.tree.size_on_disk()

    def total_data_size(self) -> int:
        return self.tree.total_data_size()

    def _validated(self, entry: Sequence[int]) -> tuple[int, ...]:
        entry_tuple = tuple(entry)
        if len(entry_tuple) != self.pattern.key_width:
            raise PathIndexError(
                f"index {self.name!r} expects {self.pattern.key_width} "
                f"identifiers, got {len(entry_tuple)}"
            )
        return entry_tuple

    def __repr__(self) -> str:
        return f"PathIndex({self.name!r}, {self.pattern}, n={self.cardinality})"
