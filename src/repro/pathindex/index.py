"""A single path index: one pattern, one B+-tree (§2.3.1).

Entries are identifier tuples ``(n0, r0, n1, ..., nk)`` in pattern order.
The index never stores pattern information — each pattern has its own tree —
so the only data are the identifiers, exactly as in Figure 4.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.bptree import BPlusTree
from repro.errors import PathIndexError
from repro.pathindex.pattern import PathPattern
from repro.storage.pagecache import PageCache


class PathIndex:
    """B+-tree-backed index over one path pattern."""

    supports_full_scan = True
    """Fully materialized indexes serve PathIndexScan; partial ones do not."""

    def __init__(
        self,
        name: str,
        pattern: PathPattern,
        page_cache: Optional[PageCache] = None,
    ) -> None:
        self.name = name
        self.pattern = pattern
        self.tree = BPlusTree(
            key_width=pattern.key_width,
            page_cache=page_cache,
            file_name=f"pathindex.{name}.db",
        )

    # ------------------------------------------------------------------
    # Entry operations
    # ------------------------------------------------------------------

    def add(self, entry: Sequence[int]) -> bool:
        """Insert one path occurrence; returns False if already present."""
        return self.tree.insert(self._validated(entry))

    def remove(self, entry: Sequence[int]) -> bool:
        """Remove one path occurrence; returns False if absent."""
        return self.tree.delete(self._validated(entry))

    def __contains__(self, entry: Sequence[int]) -> bool:
        return tuple(entry) in self.tree

    # ------------------------------------------------------------------
    # Scans (the three access paths of §5.1)
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, ...]]:
        return self.tree.scan()

    def scan_prefix(self, prefix: Sequence[int]) -> Iterator[tuple[int, ...]]:
        return self.tree.scan_prefix(prefix)

    def prepare_prefix(self, prefix: Sequence[int], store) -> None:
        """Hook invoked before a prefix seek; partial indexes materialize the
        bound start node here. Fully materialized indexes need nothing."""

    def scan_from(self, lower: Sequence[int]) -> Iterator[tuple[int, ...]]:
        return self.tree.scan_from(lower)

    def count_prefix(self, prefix: Sequence[int]) -> int:
        return self.tree.count_prefix(prefix)

    # ------------------------------------------------------------------
    # Statistics (Table 2/6/9/12 columns)
    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of indexed path occurrences."""
        return len(self.tree)

    def size_on_disk(self) -> int:
        return self.tree.size_on_disk()

    def total_data_size(self) -> int:
        return self.tree.total_data_size()

    def _validated(self, entry: Sequence[int]) -> tuple[int, ...]:
        entry_tuple = tuple(entry)
        if len(entry_tuple) != self.pattern.key_width:
            raise PathIndexError(
                f"index {self.name!r} expects {self.pattern.key_width} "
                f"identifiers, got {len(entry_tuple)}"
            )
        return entry_tuple

    def __repr__(self) -> str:
        return f"PathIndex({self.name!r}, {self.pattern}, n={self.cardinality})"
