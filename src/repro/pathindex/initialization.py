"""Path index initialization — Algorithm 2 of the paper.

The new index's pattern is queried on the existing data graph and the result
set is added entry by entry ("our more naive approach", §4.1.2 — the paper
notes bulk-loading a B+-tree from sorted results was not practical in their
code base either). Other, already-initialized indexes may be used by the
planner while answering the initialization query; the index being built is
forbidden.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.db.patternquery import run_pattern_query
from repro.pathindex.index import PathIndex
from repro.pathindex.store import PathIndexStore
from repro.planner import PlannerHints
from repro.resources import KEY_BYTES, NULL_TRACKER
from repro.storage.graphstore import GraphStore


@dataclass(frozen=True)
class InitializationStats:
    """What Table 2/6/9/12 report per index."""

    index_name: str
    cardinality: int
    size_on_disk: int
    total_data_size: int
    seconds: float


def initialize_index(
    store: GraphStore,
    index_store: PathIndexStore,
    index: PathIndex,
    hints: Optional[PlannerHints] = None,
    tracker=None,
) -> InitializationStats:
    """Populate ``index`` by querying its pattern (Algorithm 2).

    ``tracker`` (a :class:`repro.resources.MemoryTracker`) accounts the
    transient build cost against the memory pool: one :data:`KEY_BYTES`
    charge per entry. Entries land in the index itself, so the build cannot
    spill — exhausting the pool fails the build fast with
    ``MemoryLimitExceeded``, and the caller rolls the half-built index
    back. The caller owns (and closes) the tracker.
    """
    tracker = tracker if tracker is not None else NULL_TRACKER
    hints = (hints or PlannerHints()).forbidding(index.name)
    started = time.perf_counter()
    entries, _ = run_pattern_query(store, index_store, index.pattern, hints=hints)
    label = f"index build: {index.name}"
    for entry in entries:
        tracker.charge(label, KEY_BYTES)
        index.add(entry)
    elapsed = time.perf_counter() - started
    return InitializationStats(
        index_name=index.name,
        cardinality=index.cardinality,
        size_on_disk=index.size_on_disk(),
        total_data_size=index.total_data_size(),
        seconds=elapsed,
    )
