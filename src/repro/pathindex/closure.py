"""PathIndexClosure — the §5.1.4 operator, implemented as a library API.

The paper wanted an operator producing the Kleene-star closure of an indexed
pattern but dropped it because Cypher cannot express a closure over an
arbitrary pattern expression. Nothing stops a *library* API from offering
it: each index entry ``(n0, ..., nk)`` is treated as a macro-edge
``n0 → nk``, and the closure is computed by breadth-first expansion where
each step is a **prefix seek** on the index — exactly the access path the
operator was designed around.

The default semantics are Cypher-like: a node may not repeat within one
closure path (simple paths), so the traversal terminates even on cyclic
pattern graphs; pass ``simple_paths=False`` for reachability semantics
(visited-set pruning, each endpoint reported once at its minimum depth).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.pathindex.index import PathIndex


@dataclass(frozen=True)
class ClosureStep:
    """One closure result: ``end`` reachable from ``start`` in ``depth``
    applications of the indexed pattern."""

    start: int
    end: int
    depth: int


def closure(
    index: PathIndex,
    start_nodes: Optional[Iterable[int]] = None,
    min_depth: int = 1,
    max_depth: Optional[int] = None,
    simple_paths: bool = True,
) -> Iterator[ClosureStep]:
    """Enumerate the Kleene closure of ``index``'s pattern.

    ``start_nodes`` defaults to every node occurring at the pattern's first
    position. ``min_depth``/``max_depth`` bound the number of pattern
    applications (``min_depth=0`` also yields each start node itself).
    """
    if min_depth < 0:
        raise ValueError("min_depth must be non-negative")
    if max_depth is not None and max_depth < min_depth:
        raise ValueError("max_depth must be >= min_depth")
    if start_nodes is None:
        starts = _first_position_nodes(index)
    else:
        starts = list(dict.fromkeys(start_nodes))
    for start in starts:
        if min_depth == 0:
            yield ClosureStep(start, start, 0)
        if simple_paths:
            yield from _simple_closure(index, start, min_depth, max_depth)
        else:
            yield from _reachability_closure(index, start, min_depth, max_depth)


def reachable_from(
    index: PathIndex, node: int, max_depth: Optional[int] = None
) -> set[int]:
    """All nodes reachable from ``node`` via ≥1 pattern applications."""
    return {
        step.end
        for step in closure(
            index, [node], max_depth=max_depth, simple_paths=False
        )
    }


def _first_position_nodes(index: PathIndex) -> list[int]:
    nodes: dict[int, None] = {}
    for entry in index.scan():
        nodes.setdefault(entry[0], None)
    return list(nodes)


def _pattern_successors(index: PathIndex, node: int) -> Iterator[int]:
    seen: set[int] = set()
    for entry in index.scan_prefix((node,)):
        end = entry[-1]
        if end not in seen:
            seen.add(end)
            yield end


def _simple_closure(index, start, min_depth, max_depth):
    stack = [(start, 1, {start})]
    while stack:
        node, depth, on_path = stack.pop()
        if max_depth is not None and depth > max_depth:
            continue
        for successor in _pattern_successors(index, node):
            if successor in on_path:
                continue
            if depth >= min_depth:
                yield ClosureStep(start, successor, depth)
            stack.append((successor, depth + 1, on_path | {successor}))


def _reachability_closure(index, start, min_depth, max_depth):
    visited = {start}
    frontier = deque([(start, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for successor in _pattern_successors(index, node):
            if successor in visited:
                continue
            visited.add(successor)
            if depth + 1 >= min_depth:
                yield ClosureStep(start, successor, depth + 1)
            frontier.append((successor, depth + 1))
