"""Query-based path index maintenance — Algorithm 1 of the paper.

The maintainer is a transaction applier. Per committing transaction:

* **removal phase** (``before_destructive``, store unchanged): for every
  relationship deletion and label removal, the affected indexes are found
  (sorted by pattern length ascending, Algorithm 1 lines 4–5) and an
  *anchored* pattern query computes all indexed paths through the update; the
  collected entries are then removed from their indexes. We compute every
  removal set before touching any index so that maintenance plans may freely
  use other indexes — a snapshot variant of the paper's small-to-large
  ordering that is correct regardless of the chosen plan.
* **addition phase** (``after_apply``, store fully updated): additions are
  processed index by index, smallest pattern first; each anchored query runs
  with the current index *and every not-yet-updated index* forbidden
  (Algorithm 1, line 17: "Query(P but avoid using index, G)"), so plans only
  consult indexes that are already consistent.

A traversal-based fallback (De Jong's translation 1) is available as an
alternative strategy and for differential testing.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterator, Optional

from repro.db.patternquery import (
    Anchor,
    NodeAnchor,
    anchors_for_relationship,
    run_pattern_query,
)
from repro.pathindex.index import PathIndex
from repro.pathindex.pattern import PathPattern
from repro.pathindex.store import PathIndexStore
from repro.planner import PlannerHints
from repro.storage.graphstore import Direction, GraphStore
from repro.tx.appliers import TransactionApplier
from repro.tx.state import TransactionState

if TYPE_CHECKING:  # pragma: no cover
    from repro.tx.manager import TransactionManager

QUERY_BASED = "query"
TRAVERSAL_BASED = "traversal"


class PathIndexMaintainer(TransactionApplier):
    """Keeps every registered path index consistent across commits."""

    def __init__(
        self,
        store: GraphStore,
        index_store: PathIndexStore,
        tx_manager: Optional["TransactionManager"] = None,
        strategy: str = QUERY_BASED,
        hints: Optional[PlannerHints] = None,
    ) -> None:
        if strategy not in (QUERY_BASED, TRAVERSAL_BASED):
            raise ValueError(f"unknown maintenance strategy {strategy!r}")
        self.store = store
        self.index_store = index_store
        self.tx_manager = tx_manager
        self.strategy = strategy
        self.hints = hints or PlannerHints()
        self.last_report: dict[str, float] = {}
        self.last_entry_counts: dict[str, int] = {}
        self.last_changes: list[tuple[str, str, tuple[int, ...]]] = []
        """Every index delta of the last commit as ``(op, index, entry)``
        with op "add"/"remove" — only updates that actually changed an index.
        The durability engine logs these verbatim so recovery can restore
        index contents without re-running Algorithm 1."""

    # ------------------------------------------------------------------
    # Applier phases
    # ------------------------------------------------------------------

    def before_destructive(self, state: TransactionState, store: GraphStore) -> None:
        self.last_report = {}
        self.last_entry_counts = {}
        self.last_changes = []
        if len(self.index_store) == 0:
            return
        removals: list[tuple[PathIndex, tuple[int, ...]]] = []
        for pending in state.deleted_relationships:
            type_name = self.store.types.name_of(pending.type_id)
            start_labels = self._label_names(pending.start_node)
            end_labels = self._label_names(pending.end_node)
            affected = self.index_store.affected_by_relationship(
                type_name, start_labels, end_labels
            )
            for index in affected:
                anchors = anchors_for_relationship(
                    index.pattern,
                    pending.rel_id,
                    type_name,
                    pending.start_node,
                    pending.end_node,
                    start_labels,
                    end_labels,
                )
                for anchor in anchors:
                    for entry in self._timed_entries(index, anchor):
                        removals.append((index, entry))
        for pending in state.removed_labels:
            label = self.store.labels.name_of(pending.label_id)
            for index in self.index_store.affected_by_label(label):
                for position, pattern_label in enumerate(index.pattern.labels):
                    if pattern_label != label:
                        continue
                    anchor = NodeAnchor(position, pending.node_id)
                    for entry in self._timed_entries(index, anchor):
                        removals.append((index, entry))
        for index, entry in removals:
            started = time.perf_counter()
            if index.remove(entry):
                self.last_entry_counts[index.name] = (
                    self.last_entry_counts.get(index.name, 0) + 1
                )
                self.last_changes.append(("remove", index.name, entry))
            self._charge(index.name, time.perf_counter() - started)

    def after_apply(self, state: TransactionState, store: GraphStore) -> None:
        if len(self.index_store) == 0:
            return
        additions = self._collect_additions(state)
        if not additions:
            return
        # Global small-to-large order over every index affected by any
        # addition; queries may only use indexes updated earlier in the order.
        affected_names: list[str] = []
        for index, _ in additions:
            if index.name not in affected_names:
                affected_names.append(index.name)
        affected_names.sort(
            key=lambda name: (
                self.index_store.get(name).pattern.length,
                name,
            )
        )
        for position, name in enumerate(affected_names):
            index = self.index_store.get(name)
            not_yet_updated = affected_names[position:]
            hints = self.hints.forbidding(*not_yet_updated)
            for anchor_index, anchor in additions:
                if anchor_index.name != name:
                    continue
                for entry in self._timed_entries(index, anchor, hints):
                    started = time.perf_counter()
                    if index.add(entry):
                        self.last_entry_counts[index.name] = (
                            self.last_entry_counts.get(index.name, 0) + 1
                        )
                        self.last_changes.append(("add", index.name, entry))
                    self._charge(index.name, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Collection helpers
    # ------------------------------------------------------------------

    def _collect_additions(self, state: TransactionState):
        additions: list[tuple[PathIndex, object]] = []
        for rel_id in state.created_relationships:
            if not self.store.relationship_exists(rel_id):
                continue  # created and deleted within the same transaction
            record = self.store.relationship(rel_id)
            type_name = self.store.types.name_of(record.type_id)
            start_labels = self._label_names(record.start_node)
            end_labels = self._label_names(record.end_node)
            for index in self.index_store.affected_by_relationship(
                type_name, start_labels, end_labels
            ):
                for anchor in anchors_for_relationship(
                    index.pattern,
                    rel_id,
                    type_name,
                    record.start_node,
                    record.end_node,
                    start_labels,
                    end_labels,
                ):
                    additions.append((index, anchor))
        for node_id, label_id in state.added_labels:
            if not self.store.node_exists(node_id):
                continue
            if label_id not in self.store.node_labels(node_id):
                continue  # label re-removed within the same transaction
            label = self.store.labels.name_of(label_id)
            for index in self.index_store.affected_by_label(label):
                for position, pattern_label in enumerate(index.pattern.labels):
                    if pattern_label == label:
                        additions.append((index, NodeAnchor(position, node_id)))
        return additions

    def _label_names(self, node_id: int) -> frozenset[str]:
        return frozenset(
            self.store.labels.name_of(label_id)
            for label_id in self.store.node_labels(node_id)
        )

    # ------------------------------------------------------------------
    # Entry computation per strategy
    # ------------------------------------------------------------------

    def _timed_entries(
        self,
        index: PathIndex,
        anchor,
        hints: Optional[PlannerHints] = None,
    ) -> list[tuple[int, ...]]:
        started = time.perf_counter()
        entries = list(self._entries(index.pattern, anchor, hints))
        self._charge(index.name, time.perf_counter() - started)
        return entries

    def _entries(
        self,
        pattern: PathPattern,
        anchor,
        hints: Optional[PlannerHints],
    ) -> Iterator[tuple[int, ...]]:
        if self.strategy == TRAVERSAL_BASED:
            yield from traverse_pattern(self.store, pattern, anchor)
            return
        effective = hints if hints is not None else self.hints
        if self.tx_manager is not None:
            # The paper's work-around: detach the committing transaction's
            # state while the maintenance query runs (Algorithm 1, lines 6–7).
            with self.tx_manager.suspended():
                entries, _ = run_pattern_query(
                    self.store, self.index_store, pattern, anchor, effective
                )
                yield from entries
        else:
            entries, _ = run_pattern_query(
                self.store, self.index_store, pattern, anchor, effective
            )
            yield from entries

    def _charge(self, index_name: str, seconds: float) -> None:
        self.last_report[index_name] = self.last_report.get(index_name, 0.0) + seconds


# ---------------------------------------------------------------------------
# Traversal-based translation (De Jong's method 1) — the always-available
# fallback the paper's conclusion mentions.
# ---------------------------------------------------------------------------


def traverse_pattern(
    store: GraphStore, pattern: PathPattern, anchor
) -> Iterator[tuple[int, ...]]:
    """Enumerate pattern occurrences through ``anchor`` by graph traversal."""
    if isinstance(anchor, Anchor):
        left = anchor.position
        right = anchor.position + 1
        node_ids = [anchor.source_id, anchor.target_id]
        rel_ids = [anchor.rel_id]
        if not _node_matches(store, pattern, left, anchor.source_id):
            return
        if not _node_matches(store, pattern, right, anchor.target_id):
            return
    elif isinstance(anchor, NodeAnchor):
        left = right = anchor.position
        node_ids = [anchor.node_id]
        rel_ids = []
        if not _node_matches(store, pattern, left, anchor.node_id):
            return
    else:
        raise TypeError(f"unsupported anchor {anchor!r}")
    yield from _extend(store, pattern, left, right, node_ids, rel_ids)


def _extend(store, pattern, left, right, node_ids, rel_ids):
    if left > 0:
        step = pattern.relationships[left - 1]
        # Walking leftwards: a forward step arrives at node_ids[0].
        direction = Direction.INCOMING if step.forward else Direction.OUTGOING
        type_id = _type_id(store, step.type)
        if step.type is not None and type_id is None:
            return
        for rel in store.relationships_of(node_ids[0], direction, type_id):
            if rel.id in rel_ids:
                continue
            neighbour = rel.other_node(node_ids[0])
            if not _node_matches(store, pattern, left - 1, neighbour):
                continue
            yield from _extend(
                store,
                pattern,
                left - 1,
                right,
                [neighbour] + node_ids,
                [rel.id] + rel_ids,
            )
        return
    if right < pattern.length:
        step = pattern.relationships[right]
        direction = Direction.OUTGOING if step.forward else Direction.INCOMING
        type_id = _type_id(store, step.type)
        if step.type is not None and type_id is None:
            return
        for rel in store.relationships_of(node_ids[-1], direction, type_id):
            if rel.id in rel_ids:
                continue
            neighbour = rel.other_node(node_ids[-1])
            if not _node_matches(store, pattern, right + 1, neighbour):
                continue
            yield from _extend(
                store,
                pattern,
                left,
                right + 1,
                node_ids + [neighbour],
                rel_ids + [rel.id],
            )
        return
    entry: list[int] = [node_ids[0]]
    for position, rel_id in enumerate(rel_ids):
        entry.append(rel_id)
        entry.append(node_ids[position + 1])
    yield tuple(entry)


def _node_matches(store, pattern, position, node_id) -> bool:
    label = pattern.labels[position]
    if label is None:
        return True
    label_id = store.labels.id_of(label)
    return label_id is not None and store.has_label(node_id, label_id)


def _type_id(store, type_name):
    return store.types.id_of(type_name) if type_name is not None else None
