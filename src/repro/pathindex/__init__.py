"""Path indexes: the paper's core contribution.

A path index stores every occurrence of a fixed *path pattern* — a chain of
label-constrained nodes joined by type-constrained, direction-aware
relationships — as a sorted list of identifiers in its own B+-tree (§2.3.1).
This package provides:

* :class:`PathPattern` — the pattern model with parsing, sub-pattern
  enumeration and reversal;
* :class:`PathIndex` — one pattern's B+-tree with sizing and statistics;
* :class:`PathIndexStore` — the registry the planner and maintenance consult;
* :func:`initialize_index` — Algorithm 2 (query the pattern, bulk-add);
* :class:`QueryBasedMaintenance` — Algorithm 1 (query-based translation of
  graph updates into index updates) with a traversal-based fallback.
"""

from repro.pathindex.pattern import PathPattern, PatternRelationship
from repro.pathindex.index import PathIndex
from repro.pathindex.store import PathIndexStore

__all__ = ["PathIndex", "PathIndexStore", "PathPattern", "PatternRelationship"]
