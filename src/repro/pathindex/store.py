"""The path index store: registry of all path indexes of one database.

The planner asks it for patterns to match, the maintenance applier for the
indexes affected by an update (Algorithm 1, line 4, sorted by pattern length),
and the §6.1 baseline extension for its single-relationship type indexes.

It also acts as the graph store's *publisher* for MVCC commits: when a
transaction publishes, every index's pending overlay deltas are stamped
with the commit LSN, and the version garbage collector folds stamped
deltas into the B+-trees whenever no snapshot is live to observe it.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import PathIndexError
from repro.pathindex.index import PathIndex
from repro.pathindex.pattern import PathPattern
from repro.storage.pagecache import PageCache
from repro.storage.versions import PENDING, VersionClock


class PathIndexStore:
    """Name → :class:`PathIndex` registry."""

    def __init__(
        self,
        page_cache: Optional[PageCache] = None,
        clock: Optional[VersionClock] = None,
    ) -> None:
        self._page_cache = page_cache
        self._clock = clock
        self._indexes: dict[str, PathIndex] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(
        self, name: str, pattern: PathPattern, partial: bool = False
    ) -> PathIndex:
        """Register a new, empty index (initialization is separate).

        ``partial=True`` creates a §4.1 partially materialized index that
        fills itself lazily per seek prefix and never serves full scans.
        The index starts *unsealed* — writes go straight to its tree and
        it is visible from LSN 0; ``GraphDatabase.create_path_index`` seals
        it after population so commit-time maintenance becomes versioned
        overlay deltas.
        """
        if name in self._indexes:
            raise PathIndexError(f"path index {name!r} already exists")
        if partial:
            from repro.pathindex.partial import PartialPathIndex

            index: PathIndex = PartialPathIndex(
                name, pattern, self._page_cache, clock=self._clock
            )
        else:
            index = PathIndex(name, pattern, self._page_cache, clock=self._clock)
        self._indexes[name] = index
        return index

    def drop(self, name: str) -> None:
        if name not in self._indexes:
            raise PathIndexError(f"no path index {name!r}")
        del self._indexes[name]

    def get(self, name: str) -> PathIndex:
        index = self._indexes.get(name)
        if index is None:
            raise PathIndexError(f"no path index {name!r}")
        return index

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def __iter__(self) -> Iterator[PathIndex]:
        return iter(self._indexes.values())

    def __len__(self) -> int:
        return len(self._indexes)

    def names(self) -> list[str]:
        return list(self._indexes)

    # ------------------------------------------------------------------
    # MVCC visibility and the commit-publish protocol
    # ------------------------------------------------------------------

    def _visible(self, index: PathIndex) -> bool:
        """Planner visibility: a building index (``created_lsn`` pending)
        is invisible to everyone; a snapshot reader additionally skips
        indexes attached after its LSN."""
        created = index.created_lsn
        if created is PENDING:
            return False
        if self._clock is None:
            return True
        lsn = self._clock.reading_lsn()
        return lsn is None or created <= lsn

    def visible_names(self) -> list[str]:
        """Names the current reader's planner may use (plan-cache key)."""
        return [
            name for name, index in self._indexes.items() if self._visible(index)
        ]

    def has_pending(self) -> bool:
        return any(index.has_pending() for index in self._indexes.values())

    def publish(self, lsn: int) -> None:
        for index in list(self._indexes.values()):
            index.publish(lsn)

    def collect(self, cutoff: float) -> int:
        """Fold stamped overlay deltas into the trees, if no snapshot is
        live to observe the mutation. Returns the folded delta count."""
        if self._clock is None or not any(
            index.delta_count() for index in self._indexes.values()
        ):
            return 0
        if not self._clock.try_begin_fold():
            return 0
        try:
            return sum(index.fold() for index in list(self._indexes.values()))
        finally:
            self._clock.end_fold()

    def delta_count(self) -> int:
        return sum(index.delta_count() for index in self._indexes.values())

    # ------------------------------------------------------------------
    # Lookup used by the planner
    # ------------------------------------------------------------------

    def patterns(self) -> dict[str, PathPattern]:
        """Pattern of every visible index (the matcher's input)."""
        return {
            name: index.pattern
            for name, index in self._indexes.items()
            if self._visible(index)
        }

    def type_scan_index(self, type_name: str) -> Optional[PathIndex]:
        """The §6.1 baseline extension: a length-1, label-free, forward index
        on exactly ``type_name``, if one is registered."""
        for index in self._indexes.values():
            pattern = index.pattern
            if (
                self._visible(index)
                and index.supports_full_scan
                and pattern.length == 1
                and pattern.labels == (None, None)
                and pattern.relationships[0].forward
                and pattern.relationships[0].type == type_name
            ):
                return index
        return None

    # ------------------------------------------------------------------
    # Lookup used by maintenance (Algorithm 1)
    # ------------------------------------------------------------------

    def affected_by_relationship(
        self,
        type_name: Optional[str],
        start_labels: frozenset[str],
        end_labels: frozenset[str],
    ) -> list[PathIndex]:
        """Indexes whose patterns could contain such a relationship, sorted by
        pattern length ascending (Algorithm 1, lines 4–5)."""
        hits = [
            index
            for index in self._indexes.values()
            if index.pattern.contains_step(type_name, start_labels, end_labels)
        ]
        hits.sort(key=lambda index: (index.pattern.length, index.name))
        return hits

    def affected_by_label(self, label: str) -> list[PathIndex]:
        """Indexes whose patterns mention ``label``, sorted by length."""
        hits = [
            index
            for index in self._indexes.values()
            if index.pattern.mentions_label(label)
        ]
        hits.sort(key=lambda index: (index.pattern.length, index.name))
        return hits

    # ------------------------------------------------------------------
    # Sizing (indexes are "measured and reported separately", §6.3)
    # ------------------------------------------------------------------

    def size_on_disk(self) -> int:
        return sum(index.size_on_disk() for index in self._indexes.values())
