"""Path pattern model: what a path index indexes.

A pattern is an alternating chain of ``k + 1`` node constraints and ``k``
relationship constraints, e.g. ``(:A)-[:X]->(:A)-[:Y]->(:B)``. Node
constraints are a single optional label; relationship constraints are a
single optional type plus an arrow direction (patterns may mix directions,
as the GeoSpecies index ``(a)-[x]->(b)<-[y]-(c)-[z]->(d)`` does).

An *occurrence* of a length-``k`` pattern is the identifier list
``(n0, r0, n1, r1, ..., nk)`` — ``2k + 1`` identifiers — which is exactly the
B+-tree key (§2.3.1, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PatternSyntaxError


@dataclass(frozen=True)
class PatternRelationship:
    """One step of a pattern: optional type constraint plus direction.

    ``forward`` is True for ``-[:T]->`` (the arrow follows the pattern's
    reading order) and False for ``<-[:T]-``.
    """

    type: Optional[str]
    forward: bool = True

    def reversed(self) -> "PatternRelationship":
        return PatternRelationship(self.type, not self.forward)

    def __str__(self) -> str:
        body = f"[:{self.type}]" if self.type else "[]"
        return f"-{body}->" if self.forward else f"<-{body}-"


@dataclass(frozen=True)
class PathPattern:
    """An immutable path pattern: ``len(labels) == len(relationships) + 1``."""

    labels: tuple[Optional[str], ...]
    relationships: tuple[PatternRelationship, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.relationships) + 1:
            raise PatternSyntaxError(
                f"pattern needs {len(self.relationships) + 1} node constraints, "
                f"got {len(self.labels)}"
            )
        if not self.relationships:
            raise PatternSyntaxError("pattern must contain at least one relationship")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of relationships, the pattern length ``k``."""
        return len(self.relationships)

    @property
    def key_width(self) -> int:
        """Identifiers per index entry: ``2k + 1`` (§2.3.1)."""
        return 2 * self.length + 1

    # ------------------------------------------------------------------
    # Parsing and formatting
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "PathPattern":
        """Parse ``(:A)-[:X]->(:B)<-[:Y]-(:C)`` style pattern strings.

        Variables inside parentheses/brackets are allowed and ignored
        (``(a:A)-[w:X]->(b)``); labels and types are optional.
        """
        return _parse_pattern(text)

    def __str__(self) -> str:
        parts = [_format_node(self.labels[0])]
        for step, label in zip(self.relationships, self.labels[1:]):
            parts.append(str(step))
            parts.append(_format_node(label))
        return "".join(parts)

    # ------------------------------------------------------------------
    # Derived patterns
    # ------------------------------------------------------------------

    def reversed(self) -> "PathPattern":
        """The same chain read right-to-left (used for reverse prefix scans)."""
        return PathPattern(
            labels=tuple(reversed(self.labels)),
            relationships=tuple(
                step.reversed() for step in reversed(self.relationships)
            ),
        )

    def sub_pattern(self, start: int, length: int) -> "PathPattern":
        """The contiguous sub-pattern covering steps ``start .. start+length``."""
        if length < 1 or start < 0 or start + length > self.length:
            raise PatternSyntaxError(
                f"sub-pattern [{start}, {start + length}) out of range for "
                f"length {self.length}"
            )
        return PathPattern(
            labels=self.labels[start : start + length + 1],
            relationships=self.relationships[start : start + length],
        )

    def sub_patterns(self) -> Iterator["PathPattern"]:
        """All proper contiguous sub-patterns, longest first (De Jong's
        sub-pattern family, used in the Sub1..SubN experiments)."""
        for length in range(self.length - 1, 0, -1):
            for start in range(0, self.length - length + 1):
                yield self.sub_pattern(start, length)

    def contains_step(
        self,
        type_name: Optional[str],
        start_labels: frozenset[str],
        end_labels: frozenset[str],
    ) -> bool:
        """Could a relationship with this type/endpoint-labels occur in the
        pattern? Used to select the indexes affected by an update
        (Algorithm 1, line 4)."""
        for position, step in enumerate(self.relationships):
            if step.type is not None and step.type != type_name:
                continue
            if step.forward:
                source_label = self.labels[position]
                target_label = self.labels[position + 1]
            else:
                source_label = self.labels[position + 1]
                target_label = self.labels[position]
            if source_label is not None and source_label not in start_labels:
                continue
            if target_label is not None and target_label not in end_labels:
                continue
            return True
        return False

    def step_positions_for(
        self,
        type_name: Optional[str],
        start_labels: frozenset[str],
        end_labels: frozenset[str],
    ) -> list[int]:
        """Positions at which the given relationship could appear."""
        positions = []
        for position, step in enumerate(self.relationships):
            if step.type is not None and step.type != type_name:
                continue
            if step.forward:
                source_label = self.labels[position]
                target_label = self.labels[position + 1]
            else:
                source_label = self.labels[position + 1]
                target_label = self.labels[position]
            if source_label is not None and source_label not in start_labels:
                continue
            if target_label is not None and target_label not in end_labels:
                continue
            positions.append(position)
        return positions

    def mentions_label(self, label: str) -> bool:
        return label in self.labels


def _format_node(label: Optional[str]) -> str:
    return f"(:{label})" if label else "()"


# ---------------------------------------------------------------------------
# Pattern string parsing (reuses the Cypher front-end)
# ---------------------------------------------------------------------------


def _parse_pattern(text: str) -> PathPattern:
    from repro.cypher import ast as cypher_ast
    from repro.cypher.parser import parse as cypher_parse
    from repro.errors import CypherSyntaxError

    try:
        query = cypher_parse(f"MATCH {text.strip()} RETURN x")
    except CypherSyntaxError as exc:
        raise PatternSyntaxError(f"bad pattern {text!r}: {exc}") from exc
    match = query.clauses[0]
    assert isinstance(match, cypher_ast.MatchClause)
    if len(match.patterns) != 1:
        raise PatternSyntaxError("pattern must be a single path")
    path = match.patterns[0]
    labels: list[Optional[str]] = []
    steps: list[PatternRelationship] = []
    for element in path.elements:
        if isinstance(element, cypher_ast.NodePatternAst):
            if len(element.labels) > 1:
                raise PatternSyntaxError(
                    "pattern nodes take at most one label (paper §2.3)"
                )
            labels.append(element.labels[0] if element.labels else None)
        else:
            if element.direction is cypher_ast.RelDirection.UNDIRECTED:
                raise PatternSyntaxError("pattern relationships must be directed")
            if len(element.types) > 1:
                raise PatternSyntaxError(
                    "pattern relationships take at most one type"
                )
            steps.append(
                PatternRelationship(
                    type=element.types[0] if element.types else None,
                    forward=element.direction
                    is cypher_ast.RelDirection.LEFT_TO_RIGHT,
                )
            )
    return PathPattern(labels=tuple(labels), relationships=tuple(steps))
