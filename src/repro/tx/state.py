"""Transaction state: the delta a transaction will commit.

Additive entries record what was already applied eagerly (for the undo log);
destructive entries record what remains to be applied at commit. Path index
maintenance consumes both: removals are translated to index updates *before*
the store changes, additions *after* (paper §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PendingRelationshipDeletion:
    """A relationship deletion deferred to commit time."""

    rel_id: int
    type_id: int
    start_node: int
    end_node: int


@dataclass(frozen=True)
class PendingLabelRemoval:
    """A label removal deferred to commit time."""

    node_id: int
    label_id: int


@dataclass
class TransactionState:
    """Accumulated write commands of one transaction."""

    # Additive (already applied to the store, kept for undo + maintenance).
    created_nodes: list[int] = field(default_factory=list)
    created_relationships: list[int] = field(default_factory=list)
    added_labels: list[tuple[int, int]] = field(default_factory=list)  # (node, label)

    # Destructive (deferred until commit).
    deleted_relationships: list[PendingRelationshipDeletion] = field(
        default_factory=list
    )
    removed_labels: list[PendingLabelRemoval] = field(default_factory=list)
    deleted_nodes: list[int] = field(default_factory=list)

    # Undo log of callables reverting eagerly-applied operations, in order.
    undo_log: list = field(default_factory=list)

    # Redo log for durability: every eagerly-applied additive operation as a
    # string-tagged tuple in call order (destructive operations are derived
    # from the pending lists at commit). Consumed by repro.durability.
    redo_log: list[tuple] = field(default_factory=list)

    def is_read_only(self) -> bool:
        return not (
            self.created_nodes
            or self.created_relationships
            or self.added_labels
            or self.deleted_relationships
            or self.removed_labels
            or self.deleted_nodes
            or self.undo_log
            or self.redo_log
        )

    def pending_deleted_rel_ids(self) -> set[int]:
        return {pending.rel_id for pending in self.deleted_relationships}

    def clear(self) -> None:
        self.created_nodes.clear()
        self.created_relationships.clear()
        self.added_labels.clear()
        self.deleted_relationships.clear()
        self.removed_labels.clear()
        self.deleted_nodes.clear()
        self.undo_log.clear()
        self.redo_log.clear()
