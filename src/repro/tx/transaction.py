"""The transaction object: eager additive writes, deferred destructive writes.

Mirrors the Neo4j behaviour the paper depends on: a transaction is bound to
the thread that opened it, all work happens inside it, and marking it
successful before close applies its state through the transaction appliers
(§2.1.4). Deleting a node that still has relationships is refused — the
invariant that lets path index maintenance ignore node deletions (§4.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConstraintViolationError, TransactionError
from repro.tx.state import (
    PendingLabelRemoval,
    PendingRelationshipDeletion,
    TransactionState,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.graphstore import GraphStore
    from repro.tx.appliers import TransactionApplier
    from repro.tx.manager import TransactionManager


class Transaction:
    """A unit of work against the graph store.

    Use as a context manager::

        with manager.begin() as tx:
            node = tx.create_node(["Person"])
            tx.success()
    """

    def __init__(
        self,
        store: "GraphStore",
        manager: Optional["TransactionManager"] = None,
        appliers: Iterable["TransactionApplier"] = (),
    ) -> None:
        self._store = store
        self._manager = manager
        self._appliers = list(appliers)
        self.state = TransactionState()
        self._successful = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def success(self) -> None:
        """Mark the transaction successful; changes apply on close."""
        self._check_open()
        self._successful = True

    def failure(self) -> None:
        """Mark the transaction failed; changes roll back on close."""
        self._check_open()
        self._successful = False

    def close(self) -> None:
        """Close the transaction, committing or rolling back its state."""
        self._check_open()
        self._closed = True
        try:
            if self._successful:
                self._commit()
            else:
                self._rollback()
        finally:
            if self._manager is not None:
                self._manager._transaction_closed(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        if exc_type is not None:
            self._successful = False
        self.close()

    # ------------------------------------------------------------------
    # Write API (token ids; the database facade translates names)
    # ------------------------------------------------------------------

    def create_node(self, label_ids: Iterable[int] = ()) -> int:
        self._check_open()
        label_ids = list(label_ids)
        node_id = self._store.create_node(label_ids)
        self.state.created_nodes.append(node_id)
        self.state.undo_log.append(lambda: self._store.delete_node(node_id))
        self.state.redo_log.append(("create_node", node_id, sorted(label_ids)))
        return node_id

    def create_relationship(self, start: int, end: int, type_id: int) -> int:
        self._check_open()
        rel_id = self._store.create_relationship(start, end, type_id)
        self.state.created_relationships.append(rel_id)
        self.state.undo_log.append(lambda: self._store.delete_relationship(rel_id))
        self.state.redo_log.append(("create_rel", rel_id, start, end, type_id))
        return rel_id

    def add_label(self, node_id: int, label_id: int) -> bool:
        self._check_open()
        added = self._store.add_label(node_id, label_id)
        if added:
            self.state.added_labels.append((node_id, label_id))
            self.state.undo_log.append(
                lambda: self._store.remove_label(node_id, label_id)
            )
            self.state.redo_log.append(("add_label", node_id, label_id))
        return added

    def set_node_property(self, node_id: int, key_id: int, value: object) -> None:
        self._check_open()
        old = self._store.node_property(node_id, key_id)
        self._store.set_node_property(node_id, key_id, value)
        if old is None:
            self.state.undo_log.append(
                lambda: self._store.remove_node_property(node_id, key_id)
            )
        else:
            self.state.undo_log.append(
                lambda: self._store.set_node_property(node_id, key_id, old)
            )
        self.state.redo_log.append(("set_node_prop", node_id, key_id, value))

    def set_relationship_property(
        self, rel_id: int, key_id: int, value: object
    ) -> None:
        self._check_open()
        old = self._store.relationship_property(rel_id, key_id)
        self._store.set_relationship_property(rel_id, key_id, value)
        self.state.undo_log.append(
            lambda: self._store.set_relationship_property(rel_id, key_id, old)
        )
        self.state.redo_log.append(("set_rel_prop", rel_id, key_id, value))

    def delete_relationship(self, rel_id: int) -> None:
        """Defer the deletion to commit (maintenance must see the old paths)."""
        self._check_open()
        if rel_id in self.state.pending_deleted_rel_ids():
            raise TransactionError(f"relationship {rel_id} already deleted")
        record = self._store.relationship(rel_id)
        self.state.deleted_relationships.append(
            PendingRelationshipDeletion(
                rel_id=rel_id,
                type_id=record.type_id,
                start_node=record.start_node,
                end_node=record.end_node,
            )
        )

    def remove_label(self, node_id: int, label_id: int) -> None:
        """Defer the removal to commit (maintenance must see the old label)."""
        self._check_open()
        if not self._store.has_label(node_id, label_id):
            return
        pending = PendingLabelRemoval(node_id=node_id, label_id=label_id)
        if pending not in self.state.removed_labels:
            self.state.removed_labels.append(pending)

    def delete_node(self, node_id: int) -> None:
        """Defer node deletion; refused unless the node ends up disconnected."""
        self._check_open()
        live_degree = self._store.degree(node_id)
        pending = self.state.pending_deleted_rel_ids()
        for rel in self._store.relationships_of(node_id):
            if rel.id in pending:
                live_degree -= 1
                if rel.start_node == rel.end_node:
                    pass  # a loop contributes one to our degree counter
        if live_degree > 0:
            raise ConstraintViolationError(
                f"cannot delete node {node_id}: it still has relationships"
            )
        self.state.deleted_nodes.append(node_id)

    # ------------------------------------------------------------------
    # Commit / rollback
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        for applier in self._appliers:
            applier.before_destructive(self.state, self._store)
        for pending in self.state.deleted_relationships:
            self._store.delete_relationship(pending.rel_id)
        for pending in self.state.removed_labels:
            self._store.remove_label(pending.node_id, pending.label_id)
        for node_id in self.state.deleted_nodes:
            self._store.delete_node(node_id)
        for applier in self._appliers:
            applier.after_apply(self.state, self._store)
        # Publish every version this transaction built under one commit
        # LSN — the WAL sequence when durability captured one, else a
        # fresh clock LSN. After this, snapshot readers can see the commit.
        lsn = None
        if self._manager is not None and self._manager.lsn_provider is not None:
            lsn = self._manager.lsn_provider()
        self._store.publish_commit(lsn)
        self.state.clear()

    def _rollback(self) -> None:
        # Destructive ops were never applied; undo the eager additive ones.
        for undo in reversed(self.state.undo_log):
            undo()
        # The eager applies and their undos both wrote PENDING versions.
        # Publish the net-zero result (freshly-allocated ids end up as
        # tombstones, everything else at its pre-transaction value) so no
        # orphaned pending versions outlive the transaction.
        self._store.publish_commit()
        self.state.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise TransactionError("transaction already closed")
