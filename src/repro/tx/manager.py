"""Thread-bound transaction manager.

Neo4j 3.5 binds a transaction and its state to the opening thread; asking for
a new transaction on a thread that already has one returns the active one
(paper §4.1.1). Path index maintenance runs *during* commit on that same
thread and must not observe the committing transaction's state, so the
manager provides the paper's work-around explicitly: `suspended()` saves the
active transaction, installs a fresh read-only view for the duration of the
maintenance query, and restores the old state afterwards (Algorithm 1,
lines 6–7 and 19).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import TransactionError
from repro.tx.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.graphstore import GraphStore
    from repro.tx.appliers import TransactionApplier


class TransactionManager:
    """Creates, tracks, and suspends the per-thread active transaction."""

    def __init__(self, store: "GraphStore") -> None:
        self._store = store
        self._appliers: list["TransactionApplier"] = []
        self._local = threading.local()
        # Supplies the commit LSN at publish time. The durability engine
        # installs its WAL-sequence capture here so versions are stamped
        # with the exact sequence the redo log assigned; without it the
        # store's version clock mints counter LSNs.
        self.lsn_provider = None

    def register_applier(self, applier: "TransactionApplier") -> None:
        self._appliers.append(applier)

    def begin(self) -> Transaction:
        """Open a transaction bound to the calling thread.

        Unlike Neo4j's silent reuse of the active transaction, nested begins
        raise: the silent reuse is exactly what broke the paper's maintenance
        queries, and this prototype inherits the single-writer restriction.
        """
        if self.current() is not None:
            raise TransactionError(
                "a transaction is already active on this thread "
                "(concurrent/nested transactions are unsupported, as in the "
                "paper's prototype)"
            )
        # Writers serialize with writers (and with checkpoint/DDL/GC)
        # on the store's MVCC write lock; readers never take it. Held
        # until the transaction closes.
        self._store.mvcc.write_lock.acquire()
        try:
            tx = Transaction(self._store, manager=self, appliers=self._appliers)
            self._local.active = tx
        except BaseException:
            self._store.mvcc.write_lock.release()
            raise
        return tx

    def current(self) -> Optional[Transaction]:
        """The calling thread's active transaction, if any."""
        return getattr(self._local, "active", None)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Temporarily detach the active transaction (Algorithm 1 work-around).

        Inside the block the thread appears transaction-free, so maintenance
        queries can run in a clean context; the original transaction state is
        restored on exit no matter what.
        """
        saved = self.current()
        self._local.active = None
        try:
            yield
        finally:
            self._local.active = saved

    def _transaction_closed(self, tx: Transaction) -> None:
        if self.current() is tx:
            self._local.active = None
        self._store.mvcc.write_lock.release()
