"""Transaction appliers: commit-time hooks in Algorithm-1 order.

At commit, the transaction invokes each registered applier twice:

1. :meth:`TransactionApplier.before_destructive` — destructive commands are
   known but not yet applied to the store, so the paths being removed are
   still traversable. The path index applier runs its *removal* maintenance
   queries here (Algorithm 1, lines 8–13).
2. :meth:`TransactionApplier.after_apply` — all commands (additive and
   destructive) are in the store. The path index applier runs its *addition*
   maintenance queries here (Algorithm 1, lines 14–18).

Graph statistics are maintained inside :class:`~repro.storage.GraphStore`
mutations, so no separate statistics applier is needed.

Registration order is load-bearing: the durability engine's WAL applier is
registered *after* the path-index maintainer, so by the time it serializes
the commit record in ``after_apply`` the maintainer has already produced
the index deltas the record must include.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.storage.graphstore import GraphStore
    from repro.tx.state import TransactionState


class TransactionApplier:
    """Base class; subclasses override one or both phases."""

    def before_destructive(
        self, state: "TransactionState", store: "GraphStore"
    ) -> None:
        """Called before deferred destructive commands hit the store."""

    def after_apply(self, state: "TransactionState", store: "GraphStore") -> None:
        """Called after every command of the transaction is in the store."""
