"""Transactions: thread-bound lifecycle, state, and commit-time appliers.

Reproduces the transactional context of the paper's query pipeline (§2.1.4,
Figure 3): every query runs inside a transaction; closing a transaction marked
successful turns its state into commands that transaction appliers apply to
the stores, the statistics and — crucially for this paper — the path indexes
(Algorithm 1).

Write model: *additive* operations (create node/relationship, add label, set
property) are applied to the store eagerly with an undo log for rollback;
*destructive* operations (delete relationship/node, remove label) are deferred
to commit. This gives index maintenance exactly the view Algorithm 1 needs:
removal queries run while the removed data is still present, addition queries
run after all data is in place. Like the paper's prototype, concurrent write
transactions are unsupported; transactions are bound to their opening thread.
"""

from repro.tx.state import TransactionState
from repro.tx.transaction import Transaction
from repro.tx.appliers import TransactionApplier
from repro.tx.manager import TransactionManager

__all__ = [
    "Transaction",
    "TransactionApplier",
    "TransactionManager",
    "TransactionState",
]
