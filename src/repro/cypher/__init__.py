"""Cypher front-end: lexer, parser, AST and semantic analysis.

Implements the subset of Cypher the paper exercises (§2.1.3): `MATCH` with
pattern expressions (labels, relationship types, direction), `WHERE`
predicates, `WITH`/`RETURN` projection boundaries, and `CREATE`/`DELETE` for
updates. The parser produces an AST; :func:`analyze` checks variable scoping
across projection boundaries and annotates each variable as a node or
relationship, ready for query-graph construction.
"""

from repro.cypher.lexer import Token, TokenType, tokenize
from repro.cypher.parser import parse
from repro.cypher.semantics import AnalyzedQuery, analyze
from repro.cypher import ast

__all__ = [
    "AnalyzedQuery",
    "Token",
    "TokenType",
    "analyze",
    "ast",
    "parse",
    "tokenize",
]
