"""Tokenizer for the Cypher subset.

Keywords are case-insensitive (as in Cypher); identifiers, labels and types
are case-sensitive. Comments (`//` to end of line) are skipped. Multi-char
operators `<=`, `>=`, `<>` are combined here; pattern arrows (`->`, `<-`) are
assembled by the parser from `-`, `<`, `>` tokens because `<` and `>` are also
comparison operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import CypherSyntaxError

KEYWORDS = {
    "MATCH",
    "OPTIONAL",
    "WHERE",
    "WITH",
    "RETURN",
    "CREATE",
    "DELETE",
    "DETACH",
    "AS",
    "AND",
    "OR",
    "NOT",
    "XOR",
    "TRUE",
    "FALSE",
    "NULL",
    "DISTINCT",
    "ORDER",
    "BY",
    "LIMIT",
    "SKIP",
    "ASC",
    "DESC",
}


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COLON = ":"
    COMMA = ","
    DOT = "."
    SEMICOLON = ";"
    PIPE = "|"
    MINUS = "-"
    PLUS = "+"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "="
    NEQ = "<>"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names


_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ";": TokenType.SEMICOLON,
    "|": TokenType.PIPE,
    "-": TokenType.MINUS,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`CypherSyntaxError` on bad input."""
    return list(_token_stream(text))


def _token_stream(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "/" and text.startswith("//", position):
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if char == "<":
            if text.startswith("<=", position):
                yield Token(TokenType.LE, "<=", position)
                position += 2
            elif text.startswith("<>", position):
                yield Token(TokenType.NEQ, "<>", position)
                position += 2
            else:
                yield Token(TokenType.LT, "<", position)
                position += 1
            continue
        if char == ">":
            if text.startswith(">=", position):
                yield Token(TokenType.GE, ">=", position)
                position += 2
            else:
                yield Token(TokenType.GT, ">", position)
                position += 1
            continue
        if char in _SINGLE_CHAR:
            yield Token(_SINGLE_CHAR[char], char, position)
            position += 1
            continue
        if char.isdigit():
            start = position
            while position < length and text[position].isdigit():
                position += 1
            if (
                position < length
                and text[position] == "."
                and position + 1 < length
                and text[position + 1].isdigit()
            ):
                position += 1
                while position < length and text[position].isdigit():
                    position += 1
                yield Token(TokenType.FLOAT, text[start:position], start)
            else:
                yield Token(TokenType.INTEGER, text[start:position], start)
            continue
        if char in ("'", '"'):
            start = position
            position += 1
            chunks: list[str] = []
            while position < length and text[position] != char:
                if text[position] == "\\" and position + 1 < length:
                    chunks.append(text[position + 1])
                    position += 2
                else:
                    chunks.append(text[position])
                    position += 1
            if position >= length:
                raise CypherSyntaxError("unterminated string literal", start)
            position += 1
            yield Token(TokenType.STRING, "".join(chunks), start)
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            if word.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.upper(), start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        if char == "`":
            start = position
            end = text.find("`", position + 1)
            if end < 0:
                raise CypherSyntaxError("unterminated backtick identifier", start)
            yield Token(TokenType.IDENT, text[position + 1 : end], start)
            position = end + 1
            continue
        raise CypherSyntaxError(f"unexpected character {char!r}", position)
    yield Token(TokenType.EOF, "", length)
