"""Recursive-descent parser for the Cypher subset.

Grammar (informal)::

    query       := clause+ [';']
    clause      := matchClause | withClause | returnClause
                 | createClause | deleteClause
    matchClause := [OPTIONAL] MATCH pattern (',' pattern)* [WHERE expr]
    withClause  := WITH [DISTINCT] ('*' | items) [WHERE expr]
    returnClause:= RETURN [DISTINCT] ('*' | items)
                   [ORDER BY orderItems] [SKIP int] [LIMIT int]
    pattern     := nodePattern (relPattern nodePattern)*
    nodePattern := '(' [ident] (':' ident)* [mapLiteral] ')'
    relPattern  := '-' ['[' relBody ']'] '->'      (left to right)
                 | '<-' ['[' relBody ']'] '-'      (right to left)
                 | '-' ['[' relBody ']'] '-'       (undirected)
    relBody     := [ident] (':' ident ('|' [':'] ident)*) [mapLiteral]

Expressions use conventional precedence:
OR < XOR < AND < NOT < comparison < additive < multiplicative < unary < primary.
"""

from __future__ import annotations

from typing import Optional

from repro.cypher import ast
from repro.cypher.lexer import Token, TokenType, tokenize
from repro.errors import CypherSyntaxError


def parse(query_text: str) -> ast.SingleQuery:
    """Parse ``query_text`` into an AST; raises :class:`CypherSyntaxError`."""
    return _Parser(tokenize(query_text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType, what: str = "") -> Token:
        if self._current.type is not token_type:
            raise CypherSyntaxError(
                f"expected {what or token_type.value!r}, got "
                f"{self._current.text!r}",
                self._current.position,
            )
        return self._advance()

    def _expect_keyword(self, *names: str) -> Token:
        if not self._current.is_keyword(*names):
            raise CypherSyntaxError(
                f"expected {' or '.join(names)}, got {self._current.text!r}",
                self._current.position,
            )
        return self._advance()

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._current.type is token_type:
            return self._advance()
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    # -- query structure -----------------------------------------------------

    def parse_query(self) -> ast.SingleQuery:
        clauses: list[ast.Clause] = []
        while True:
            token = self._current
            if token.type is TokenType.EOF:
                break
            if token.type is TokenType.SEMICOLON:
                self._advance()
                if self._current.type is not TokenType.EOF:
                    raise CypherSyntaxError(
                        "text after query terminator", self._current.position
                    )
                break
            if token.is_keyword("MATCH") or token.is_keyword("OPTIONAL"):
                clauses.append(self._parse_match())
            elif token.is_keyword("WITH"):
                clauses.append(self._parse_with())
            elif token.is_keyword("RETURN"):
                clauses.append(self._parse_return())
            elif token.is_keyword("CREATE"):
                clauses.append(self._parse_create())
            elif token.is_keyword("DELETE") or token.is_keyword("DETACH"):
                clauses.append(self._parse_delete())
            else:
                raise CypherSyntaxError(
                    f"unexpected token {token.text!r}", token.position
                )
        if not clauses:
            raise CypherSyntaxError("empty query", 0)
        return ast.SingleQuery(clauses)

    def _parse_match(self) -> ast.MatchClause:
        optional = self._accept_keyword("OPTIONAL") is not None
        if optional:
            raise CypherSyntaxError(
                "OPTIONAL MATCH is not supported by this subset",
                self._current.position,
            )
        self._expect_keyword("MATCH")
        patterns = [self._parse_pattern()]
        while self._accept(TokenType.COMMA):
            patterns.append(self._parse_pattern())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.MatchClause(patterns=patterns, where=where, optional=optional)

    def _parse_with(self) -> ast.WithClause:
        self._expect_keyword("WITH")
        distinct = self._accept_keyword("DISTINCT") is not None
        star, items = self._parse_projection_body()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.WithClause(items=items, star=star, distinct=distinct, where=where)

    def _parse_return(self) -> ast.ReturnClause:
        self._expect_keyword("RETURN")
        distinct = self._accept_keyword("DISTINCT") is not None
        star, items = self._parse_projection_body()
        order_by: list[tuple[ast.Expression, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expression()
                ascending = True
                if self._accept_keyword("DESC"):
                    ascending = False
                else:
                    self._accept_keyword("ASC")
                order_by.append((expr, ascending))
                if not self._accept(TokenType.COMMA):
                    break
        skip = None
        if self._accept_keyword("SKIP"):
            skip = int(self._expect(TokenType.INTEGER, "integer").text)
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = int(self._expect(TokenType.INTEGER, "integer").text)
        return ast.ReturnClause(
            items=items,
            star=star,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            skip=skip,
        )

    def _parse_projection_body(self) -> tuple[bool, list[ast.ProjectionItem]]:
        if self._accept(TokenType.STAR):
            return True, []
        items = [self._parse_projection_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._parse_projection_item())
        return False, items

    def _parse_projection_item(self) -> ast.ProjectionItem:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect(TokenType.IDENT, "alias").text
        return ast.ProjectionItem(expression=expression, alias=alias)

    def _parse_create(self) -> ast.CreateClause:
        self._expect_keyword("CREATE")
        patterns = [self._parse_pattern()]
        while self._accept(TokenType.COMMA):
            patterns.append(self._parse_pattern())
        return ast.CreateClause(patterns=patterns)

    def _parse_delete(self) -> ast.DeleteClause:
        detach = self._accept_keyword("DETACH") is not None
        self._expect_keyword("DELETE")
        expressions = [self._parse_expression()]
        while self._accept(TokenType.COMMA):
            expressions.append(self._parse_expression())
        return ast.DeleteClause(expressions=expressions, detach=detach)

    # -- patterns --------------------------------------------------------------

    def _parse_pattern(self) -> ast.PatternPath:
        elements: list = [self._parse_node_pattern()]
        while self._current.type in (TokenType.MINUS, TokenType.LT):
            elements.append(self._parse_rel_pattern())
            elements.append(self._parse_node_pattern())
        return ast.PatternPath(elements)

    def _parse_node_pattern(self) -> ast.NodePatternAst:
        self._expect(TokenType.LPAREN, "'(' starting a node pattern")
        variable = None
        if self._current.type is TokenType.IDENT:
            variable = self._advance().text
        labels: list[str] = []
        while self._accept(TokenType.COLON):
            labels.append(self._expect(TokenType.IDENT, "label name").text)
        properties = {}
        if self._current.type is TokenType.LBRACE:
            properties = self._parse_map_literal()
        self._expect(TokenType.RPAREN, "')' closing a node pattern")
        return ast.NodePatternAst(
            variable=variable, labels=tuple(labels), properties=properties
        )

    def _parse_rel_pattern(self) -> ast.RelPatternAst:
        # Leading arrow half: '-' or '<-'.
        points_left = False
        if self._accept(TokenType.LT):
            points_left = True
            self._expect(TokenType.MINUS, "'-' after '<'")
        else:
            self._expect(TokenType.MINUS, "'-' starting a relationship pattern")
        variable = None
        types: list[str] = []
        properties: dict[str, ast.Expression] = {}
        if self._accept(TokenType.LBRACKET):
            if self._current.type is TokenType.IDENT:
                variable = self._advance().text
            if self._accept(TokenType.COLON):
                types.append(self._expect(TokenType.IDENT, "relationship type").text)
                while self._accept(TokenType.PIPE):
                    self._accept(TokenType.COLON)
                    types.append(
                        self._expect(TokenType.IDENT, "relationship type").text
                    )
            if self._current.type is TokenType.LBRACE:
                properties = self._parse_map_literal()
            self._expect(TokenType.RBRACKET, "']' closing a relationship pattern")
        # Trailing arrow half: '->' or '-'.
        self._expect(TokenType.MINUS, "'-' after relationship body")
        points_right = self._accept(TokenType.GT) is not None
        if points_left and points_right:
            raise CypherSyntaxError(
                "relationship cannot point both ways", self._current.position
            )
        if points_left:
            direction = ast.RelDirection.RIGHT_TO_LEFT
        elif points_right:
            direction = ast.RelDirection.LEFT_TO_RIGHT
        else:
            direction = ast.RelDirection.UNDIRECTED
        return ast.RelPatternAst(
            variable=variable,
            types=tuple(types),
            direction=direction,
            properties=properties,
        )

    def _parse_map_literal(self) -> dict[str, ast.Expression]:
        self._expect(TokenType.LBRACE)
        entries: dict[str, ast.Expression] = {}
        if self._current.type is not TokenType.RBRACE:
            while True:
                key = self._expect(TokenType.IDENT, "map key").text
                self._expect(TokenType.COLON)
                entries[key] = self._parse_expression()
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RBRACE)
        return entries

    # -- expressions --------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_xor()
        while self._accept_keyword("OR"):
            left = ast.BooleanOp("OR", left, self._parse_xor())
        return left

    def _parse_xor(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("XOR"):
            left = ast.BooleanOp("XOR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BooleanOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_comparison()

    _COMPARISON_OPS = {
        TokenType.EQ: ast.ComparisonOp.EQ,
        TokenType.NEQ: ast.ComparisonOp.NEQ,
        TokenType.LT: ast.ComparisonOp.LT,
        TokenType.GT: ast.ComparisonOp.GT,
        TokenType.LE: ast.ComparisonOp.LE,
        TokenType.GE: ast.ComparisonOp.GE,
    }

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token_type = self._current.type
        if token_type in self._COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return ast.Comparison(self._COMPARISON_OPS[token_type], left, right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._current.type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().text
            left = ast.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._current.type in (
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
        ):
            op = self._advance().text
            left = ast.Arithmetic(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._accept(TokenType.MINUS):
            return ast.Arithmetic("-", ast.Literal(0), self._parse_unary())
        if self._accept(TokenType.PLUS):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.text))
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.IDENT:
            self._advance()
            name = token.text
            if self._current.type is TokenType.LPAREN and (
                name.lower() in ast.AGGREGATE_FUNCTIONS
                or name.lower() in ast.SCALAR_FUNCTIONS
            ):
                return self._parse_function_call(name.lower())
            if self._accept(TokenType.DOT):
                key = self._expect(TokenType.IDENT, "property key").text
                return ast.PropertyAccess(name, key)
            if self._current.type is TokenType.COLON:
                # `var:Label` used as a predicate.
                self._advance()
                label = self._expect(TokenType.IDENT, "label name").text
                return ast.HasLabel(name, label)
            return ast.Variable(name)
        raise CypherSyntaxError(
            f"unexpected token {token.text!r} in expression", token.position
        )

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect(TokenType.LPAREN)
        if name == "count" and self._accept(TokenType.STAR):
            self._expect(TokenType.RPAREN, "')' after count(*)")
            return ast.FunctionCall(name="count", star=True)
        distinct = self._accept_keyword("DISTINCT") is not None
        argument = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' closing function arguments")
        return ast.FunctionCall(name=name, argument=argument, distinct=distinct)
