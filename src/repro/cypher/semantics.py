"""Semantic analysis: scoping and variable-kind annotation.

Walks the clause list, tracking which variables are in scope and whether each
names a node, a relationship or a plain value — the annotation step of the
pipeline (§2.2: "this AST is semantically annotated"). Projection boundaries
(`WITH`, `RETURN`) reset the scope to the projected names. `RETURN *` /
`WITH *` are expanded here into explicit items, in order of introduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cypher import ast
from repro.errors import CypherSemanticError


class VariableKind(enum.Enum):
    NODE = "node"
    RELATIONSHIP = "relationship"
    VALUE = "value"


@dataclass
class AnalyzedQuery:
    """The AST plus the results of semantic analysis.

    ``variable_kinds`` maps every variable name (across the whole query) to
    its kind; boundary clauses carry their expanded projection items in
    ``resolved_projections`` keyed by clause identity.
    """

    query: ast.SingleQuery
    variable_kinds: dict[str, VariableKind] = field(default_factory=dict)
    resolved_projections: dict[int, list[ast.ProjectionItem]] = field(
        default_factory=dict
    )
    is_write: bool = False

    def projection_items(self, clause: ast.Clause) -> list[ast.ProjectionItem]:
        return self.resolved_projections[id(clause)]


def analyze(query: ast.SingleQuery) -> AnalyzedQuery:
    """Check scoping rules and annotate variable kinds; raises
    :class:`CypherSemanticError` on violations."""
    return _Analyzer(query).run()


class _Analyzer:
    def __init__(self, query: ast.SingleQuery) -> None:
        self.query = query
        self.result = AnalyzedQuery(query=query)
        # In-scope variables, in order of introduction.
        self.scope: dict[str, VariableKind] = {}

    def run(self) -> AnalyzedQuery:
        clauses = self.query.clauses
        if not clauses:
            raise CypherSemanticError("query has no clauses")
        for position, clause in enumerate(clauses):
            is_last = position == len(clauses) - 1
            if isinstance(clause, ast.MatchClause):
                self._analyze_match(clause)
            elif isinstance(clause, ast.WithClause):
                self._analyze_projection(clause)
            elif isinstance(clause, ast.ReturnClause):
                if not is_last:
                    raise CypherSemanticError("RETURN must be the final clause")
                self._analyze_projection(clause)
            elif isinstance(clause, ast.CreateClause):
                self.result.is_write = True
                self._analyze_create(clause)
            elif isinstance(clause, ast.DeleteClause):
                self.result.is_write = True
                self._analyze_delete(clause)
            else:  # pragma: no cover - parser produces only the above
                raise CypherSemanticError(f"unsupported clause {clause!r}")
        last = clauses[-1]
        if not self.result.is_write and not isinstance(last, ast.ReturnClause):
            raise CypherSemanticError("a read query must end with RETURN")
        return self.result

    # ------------------------------------------------------------------

    def _analyze_match(self, clause: ast.MatchClause) -> None:
        for pattern in clause.patterns:
            self._declare_pattern(pattern, allow_rebinding=True)
        if clause.where is not None:
            if ast.contains_aggregate(clause.where):
                raise CypherSemanticError(
                    "aggregate functions are not allowed in WHERE"
                )
            self._check_expression(clause.where)

    def _analyze_create(self, clause: ast.CreateClause) -> None:
        for pattern in clause.patterns:
            for element in pattern.elements:
                if isinstance(element, ast.NodePatternAst):
                    if element.variable is None:
                        continue
                    existing = self.scope.get(element.variable)
                    if existing is None:
                        self._bind(element.variable, VariableKind.NODE)
                    elif existing is not VariableKind.NODE:
                        raise CypherSemanticError(
                            f"variable {element.variable!r} already bound as "
                            f"{existing.value}"
                        )
                    elif element.labels:
                        raise CypherSemanticError(
                            f"cannot add labels to bound node "
                            f"{element.variable!r} in CREATE"
                        )
                else:
                    if len(element.types) != 1:
                        raise CypherSemanticError(
                            "CREATE requires exactly one relationship type"
                        )
                    if element.direction is ast.RelDirection.UNDIRECTED:
                        raise CypherSemanticError(
                            "CREATE requires a directed relationship"
                        )
                    if element.variable is not None:
                        if element.variable in self.scope:
                            raise CypherSemanticError(
                                f"relationship variable {element.variable!r} "
                                "already bound"
                            )
                        self._bind(element.variable, VariableKind.RELATIONSHIP)

    def _analyze_delete(self, clause: ast.DeleteClause) -> None:
        for expression in clause.expressions:
            if not isinstance(expression, ast.Variable):
                raise CypherSemanticError("DELETE expects variables")
            if expression.name not in self.scope:
                raise CypherSemanticError(
                    f"variable {expression.name!r} not defined"
                )

    def _analyze_projection(self, clause) -> None:
        if clause.star:
            items = [
                ast.ProjectionItem(ast.Variable(name), alias=name)
                for name in self.scope
            ]
            if not items:
                raise CypherSemanticError("RETURN * with nothing in scope")
        else:
            items = clause.items
            for item in items:
                self._check_expression(item.expression)
                self._check_aggregate_nesting(item.expression)
        self.result.resolved_projections[id(clause)] = items
        old_scope = self.scope
        # The projection defines the next scope.
        new_scope: dict[str, VariableKind] = {}
        for item in items:
            name = item.output_name
            kind = self._expression_kind(item.expression)
            if name in new_scope:
                raise CypherSemanticError(f"duplicate projection name {name!r}")
            new_scope[name] = kind
        self.scope = new_scope
        for name, kind in new_scope.items():
            self._record_kind(name, kind)
        if isinstance(clause, ast.WithClause) and clause.where is not None:
            self._check_expression(clause.where)
        if isinstance(clause, ast.ReturnClause):
            # ORDER BY may reference both projected names and the variables
            # of the preceding MATCH (Cypher's hybrid scope).
            combined = dict(old_scope)
            combined.update(new_scope)
            for expression, _ in clause.order_by:
                for name in expression.variables():
                    if name not in combined:
                        raise CypherSemanticError(
                            f"variable {name!r} not defined"
                        )

    # ------------------------------------------------------------------

    def _declare_pattern(self, pattern: ast.PatternPath, allow_rebinding: bool) -> None:
        if not pattern.elements or isinstance(
            pattern.elements[-1], ast.RelPatternAst
        ):
            raise CypherSemanticError("pattern must start and end with a node")
        seen_rel_vars: set[str] = set()
        for element in pattern.elements:
            if isinstance(element, ast.NodePatternAst):
                if element.variable is not None:
                    self._bind_checked(element.variable, VariableKind.NODE)
                for value in element.properties.values():
                    self._check_expression(value, allow_unbound=True)
            else:
                if element.variable is not None:
                    if element.variable in seen_rel_vars or (
                        self.scope.get(element.variable)
                        is VariableKind.RELATIONSHIP
                        and not allow_rebinding
                    ):
                        raise CypherSemanticError(
                            f"relationship variable {element.variable!r} "
                            "reused in pattern"
                        )
                    seen_rel_vars.add(element.variable)
                    self._bind_checked(element.variable, VariableKind.RELATIONSHIP)

    def _bind_checked(self, name: str, kind: VariableKind) -> None:
        existing = self.scope.get(name)
        if existing is not None and existing is not kind:
            raise CypherSemanticError(
                f"variable {name!r} already bound as {existing.value}, "
                f"cannot rebind as {kind.value}"
            )
        self._bind(name, kind)

    def _bind(self, name: str, kind: VariableKind) -> None:
        self.scope[name] = kind
        self._record_kind(name, kind)

    def _record_kind(self, name: str, kind: VariableKind) -> None:
        previous = self.result.variable_kinds.get(name)
        if previous is None or previous is VariableKind.VALUE:
            self.result.variable_kinds[name] = kind

    def _check_expression(
        self, expression: ast.Expression, allow_unbound: bool = False
    ) -> None:
        if allow_unbound:
            return
        for name in expression.variables():
            if name not in self.scope:
                raise CypherSemanticError(f"variable {name!r} not defined")

    def _check_aggregate_nesting(
        self, expression: ast.Expression, inside_aggregate: bool = False
    ) -> None:
        if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
            if inside_aggregate:
                raise CypherSemanticError("aggregate functions cannot be nested")
            if expression.argument is not None:
                self._check_aggregate_nesting(expression.argument, True)
            return
        for attr in ("left", "right", "operand", "argument"):
            child = getattr(expression, attr, None)
            if isinstance(child, ast.Expression):
                self._check_aggregate_nesting(child, inside_aggregate)

    def _expression_kind(self, expression: ast.Expression) -> VariableKind:
        if isinstance(expression, ast.Variable):
            return self.scope.get(expression.name, VariableKind.VALUE)
        return VariableKind.VALUE
