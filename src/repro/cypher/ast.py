"""AST node definitions for the Cypher subset.

Plain dataclasses; the parser builds them and the semantic analyzer / query
graph builder consume them. Expression nodes know how to render themselves
back to Cypher text (used in error messages and plan descriptions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression AST nodes."""

    def variables(self) -> set[str]:
        """Free variables referenced by this expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    value: object

    def variables(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass(frozen=True)
class Variable(Expression):
    name: str

    def variables(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PropertyAccess(Expression):
    subject: str
    key: str

    def variables(self) -> set[str]:
        return {self.subject}

    def __str__(self) -> str:
        return f"{self.subject}.{self.key}"


class ComparisonOp(enum.Enum):
    EQ = "="
    NEQ = "<>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="


@dataclass(frozen=True)
class Comparison(Expression):
    op: ComparisonOp
    left: Expression
    right: Expression

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class BooleanOp(Expression):
    op: str  # "AND" | "OR" | "XOR"
    left: Expression
    right: Expression

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    op: str  # "+", "-", "*", "/", "%"
    left: Expression
    right: Expression

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "min", "max", "avg", "collect"})
SCALAR_FUNCTIONS = frozenset({"id", "type", "labels", "size"})


@dataclass(frozen=True)
class FunctionCall(Expression):
    """``count(*)``, ``sum(x)``, ``collect(DISTINCT x)``, ``id(n)``, ..."""

    name: str  # lower-cased
    argument: Optional["Expression"] = None
    star: bool = False  # count(*)
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def variables(self) -> set[str]:
        if self.argument is None:
            return set()
        return self.argument.variables()

    def __str__(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = f"DISTINCT {self.argument}" if self.distinct else str(self.argument)
        return f"{self.name}({inner})"


def contains_aggregate(expression: "Expression") -> bool:
    """Does any sub-expression call an aggregate function?"""
    if isinstance(expression, FunctionCall):
        if expression.is_aggregate:
            return True
        return expression.argument is not None and contains_aggregate(
            expression.argument
        )
    for attr in ("left", "right", "operand", "argument"):
        child = getattr(expression, attr, None)
        if isinstance(child, Expression) and contains_aggregate(child):
            return True
    return False


@dataclass(frozen=True)
class HasLabel(Expression):
    """`var:Label` used as a predicate (also produced by semantic analysis)."""

    subject: str
    label: str

    def variables(self) -> set[str]:
        return {self.subject}

    def __str__(self) -> str:
        return f"{self.subject}:{self.label}"


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class RelDirection(enum.Enum):
    """Syntactic arrow direction of a relationship pattern element."""

    LEFT_TO_RIGHT = "->"
    RIGHT_TO_LEFT = "<-"
    UNDIRECTED = "--"


@dataclass
class NodePatternAst:
    """`(var:Label {key: value, ...})`."""

    variable: Optional[str]
    labels: tuple[str, ...] = ()
    properties: dict[str, Expression] = field(default_factory=dict)

    def __str__(self) -> str:
        label_text = "".join(f":{label}" for label in self.labels)
        return f"({self.variable or ''}{label_text})"


@dataclass
class RelPatternAst:
    """`-[var:TYPE]->` (or reversed / undirected)."""

    variable: Optional[str]
    types: tuple[str, ...] = ()
    direction: RelDirection = RelDirection.LEFT_TO_RIGHT
    properties: dict[str, Expression] = field(default_factory=dict)

    def __str__(self) -> str:
        type_text = "|".join(f":{t}" for t in self.types)
        body = f"[{self.variable or ''}{type_text}]"
        if self.direction is RelDirection.LEFT_TO_RIGHT:
            return f"-{body}->"
        if self.direction is RelDirection.RIGHT_TO_LEFT:
            return f"<-{body}-"
        return f"-{body}-"


@dataclass
class PatternPath:
    """Alternating node/relationship pattern elements, nodes at both ends."""

    elements: list[Union[NodePatternAst, RelPatternAst]]

    def nodes(self) -> list[NodePatternAst]:
        return [e for e in self.elements if isinstance(e, NodePatternAst)]

    def relationships(self) -> list[RelPatternAst]:
        return [e for e in self.elements if isinstance(e, RelPatternAst)]

    def __str__(self) -> str:
        return "".join(str(element) for element in self.elements)


# ---------------------------------------------------------------------------
# Clauses and query structure
# ---------------------------------------------------------------------------


@dataclass
class ProjectionItem:
    expression: Expression
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias is not None:
            return self.alias
        return str(self.expression)

    def __str__(self) -> str:
        if self.alias is not None:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


class Clause:
    """Base class for clause AST nodes."""


@dataclass
class MatchClause(Clause):
    patterns: list[PatternPath]
    where: Optional[Expression] = None
    optional: bool = False


@dataclass
class WithClause(Clause):
    items: list[ProjectionItem]
    star: bool = False
    distinct: bool = False
    where: Optional[Expression] = None


@dataclass
class ReturnClause(Clause):
    items: list[ProjectionItem]
    star: bool = False
    distinct: bool = False
    order_by: list[tuple[Expression, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    skip: Optional[int] = None


@dataclass
class CreateClause(Clause):
    patterns: list[PatternPath]


@dataclass
class DeleteClause(Clause):
    expressions: list[Expression]
    detach: bool = False


@dataclass
class SingleQuery:
    """A full query: an ordered list of clauses ending in RETURN (for reads)
    or any write clause (for updates)."""

    clauses: list[Clause]

    def __str__(self) -> str:
        return f"SingleQuery({len(self.clauses)} clauses)"
