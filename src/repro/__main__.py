"""``python -m repro`` — the interactive Cypher shell."""

import sys

from repro.shell import main

if __name__ == "__main__":
    sys.exit(main())
