"""The public database facade: :class:`GraphDatabase` and :class:`Result`."""

from repro.db.database import GraphDatabase, IndexCreationStats
from repro.db.result import Result

__all__ = ["GraphDatabase", "IndexCreationStats", "Result"]
