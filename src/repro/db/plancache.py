"""The query (plan) cache of the pipeline (§4.1.1).

Neo4j caches executable plans per query string; the paper's maintenance
queries had to *bypass* it ("otherwise we had no control over which indexes
would be used in the maintenance queries"). This reproduction does the same:
:meth:`GraphDatabase.execute` consults the cache, while the anchored pattern
queries of Algorithm 1 go straight to the planner.

Entries are keyed by (query text, hints) and invalidated when the index set
changes or the graph statistics drift beyond a threshold — a plan chosen for
very different cardinalities is likely stale.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

DEFAULT_CAPACITY = 128
DEFAULT_DRIFT = 0.25


@dataclass
class CachedQuery:
    """A fully analyzed + planned query ready for execution."""

    analyzed: object  # AnalyzedQuery
    planned_parts: list  # [(QueryPart, LogicalPlan)]
    columns: list[str]
    node_count: int
    relationship_count: int
    index_signature: frozenset[str]


class PlanCache:
    """Bounded LRU cache of planned queries with staleness invalidation."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        drift_threshold: float = DEFAULT_DRIFT,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.drift_threshold = drift_threshold
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(
        self,
        key,
        node_count: int,
        relationship_count: int,
        index_signature: frozenset[str],
    ) -> Optional[CachedQuery]:
        """A fresh cached entry for ``key``, or None (stale entries are
        evicted on sight)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.index_signature != index_signature or self._drifted(
            entry, node_count, relationship_count
        ):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key, entry: CachedQuery) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def _drifted(self, entry: CachedQuery, nodes: int, relationships: int) -> bool:
        return _drift(entry.node_count, nodes) > self.drift_threshold or _drift(
            entry.relationship_count, relationships
        ) > self.drift_threshold


def _drift(then: int, now: int) -> float:
    if then == now:
        return 0.0
    return abs(now - then) / max(then, 1)
