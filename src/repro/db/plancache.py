"""The query (plan) cache of the pipeline (§4.1.1).

Neo4j caches executable plans per query string; the paper's maintenance
queries had to *bypass* it ("otherwise we had no control over which indexes
would be used in the maintenance queries"). This reproduction does the same:
:meth:`GraphDatabase.execute` consults the cache, while the anchored pattern
queries of Algorithm 1 go straight to the planner.

Entries are keyed by (query text, hints) and invalidated when the index set
changes or the graph statistics drift beyond a threshold — a plan chosen for
very different cardinalities is likely stale.

The cache is thread-safe (a single lock guards the LRU map and its
counters) so the concurrent query service can share one database across
worker threads, and capacity evictions are counted. Observers register a
callback with :meth:`PlanCache.subscribe` to receive
``"hit" | "miss" | "eviction" | "invalidation"`` events — the service layer
points one at its metrics registry and detaches it on shutdown, so several
services (or a replaced service) never steal each other's traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

DEFAULT_CAPACITY = 128
DEFAULT_DRIFT = 0.25

ENTRY_BYTES = 8 * 1024
"""Deterministic estimate for one cached plan (analyzed query + plan tree +
possible codegen artifact) — an accounting figure for the memory pool's
cache gauges, in the same spirit as the runtime's per-row estimates."""


@dataclass
class CachedQuery:
    """A fully analyzed + planned query ready for execution."""

    analyzed: object  # AnalyzedQuery
    planned_parts: list  # [(QueryPart, LogicalPlan)]
    columns: list[str]
    node_count: int
    relationship_count: int
    index_signature: frozenset[str]
    #: Codegen artifact (``repro.runtime.compiled.CompiledQuery``), built
    #: lazily on the first compiled-mode execution. It shares this entry's
    #: lifetime, so plan invalidation drops the generated code too.
    compiled: Optional[object] = None


class PlanCache:
    """Bounded, thread-safe LRU cache of planned queries with staleness
    invalidation."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        drift_threshold: float = DEFAULT_DRIFT,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.drift_threshold = drift_threshold
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self._subscribers: list[Callable[[str], None]] = []

    def lookup(
        self,
        key,
        node_count: int,
        relationship_count: int,
        index_signature: frozenset[str],
    ) -> Optional[CachedQuery]:
        """A fresh cached entry for ``key``, or None (stale entries are
        evicted on sight)."""
        events: list[str] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                events.append("miss")
                entry = None
            elif entry.index_signature != index_signature or self._drifted(
                entry, node_count, relationship_count
            ):
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                events.extend(("invalidation", "miss"))
                entry = None
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                events.append("hit")
        self._emit(events)
        return entry

    def store(self, key, entry: CachedQuery) -> None:
        events: list[str] = []
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                events.append("eviction")
        self._emit(events)

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """Register ``callback`` for cache events (duplicates are kept, so
        pair each subscribe with one :meth:`unsubscribe`)."""
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[str], None]) -> None:
        """Detach one registration of ``callback``; missing is a no-op."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def approx_bytes(self) -> int:
        """Estimated resident size, reported via the memory pool's cache
        gauges (never charged to a query)."""
        with self._lock:
            return len(self._entries) * ENTRY_BYTES

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _emit(self, events: list[str]) -> None:
        if not events:
            return
        # Callbacks run outside the lock: they may be arbitrarily slow
        # (metrics); the snapshot keeps iteration safe against concurrent
        # (un)subscribes.
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            for event in events:
                callback(event)

    def _drifted(self, entry: CachedQuery, nodes: int, relationships: int) -> bool:
        return _drift(entry.node_count, nodes) > self.drift_threshold or _drift(
            entry.relationship_count, relationships
        ) > self.drift_threshold


def _drift(then: int, now: int) -> float:
    if then == now:
        return 0.0
    return abs(now - then) / max(then, 1)
