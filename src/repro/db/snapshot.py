"""Snapshot persistence: save a database to a directory and load it back.

The paper's prototype inherits Neo4j's on-disk stores; this reproduction
keeps records in memory, so baseline durability comes from explicit
snapshots (and the durability engine builds checkpoints out of the same
format — see :mod:`repro.durability.engine`). A snapshot directory holds
JSON-lines files mirroring the record stores plus every path index's
pattern and verbatim entry list — restoring is a faithful replay (record
ids, relationship chains, dense-node groups and index contents all come
back identical; derived structures are recomputed).

Layout::

    <dir>/metadata.json       versions, counts, configuration
    <dir>/tokens.json         label / type / property-key registries
    <dir>/nodes.jsonl         one node record per line
    <dir>/relationships.jsonl
    <dir>/properties.jsonl
    <dir>/groups.jsonl
    <dir>/indexes.json        [{name, pattern}]
    <dir>/index_<name>.jsonl  one entry (identifier array) per line

The module exposes two layers: :func:`write_snapshot_state` /
:func:`read_snapshot_state` operate on an existing directory / database
(the checkpoint engine uses these, threading a progress callback through
for fault injection), while :func:`save_snapshot` / :func:`load_snapshot`
are the one-call convenience wrappers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Union

from repro.db.database import GraphDatabase
from repro.errors import StorageError
from repro.pathindex.pattern import PathPattern
from repro.storage.records import (
    NodeRecord,
    PropertyRecord,
    RelationshipGroupRecord,
    RelationshipRecord,
)

SNAPSHOT_FORMAT_VERSION = 1


def write_snapshot_state(
    db: GraphDatabase,
    path: Path,
    on_progress: Optional[Callable[[str], None]] = None,
    extra_metadata: Optional[dict] = None,
) -> None:
    """Write every snapshot file for ``db`` into the existing ``path``.

    ``on_progress`` is invoked with each file's name just after it is
    written — the checkpoint engine uses it to expose a mid-snapshot
    fault-injection point. ``extra_metadata`` keys are merged into
    ``metadata.json`` (the checkpoint engine records its base LSNs there,
    which replication and LSN continuity across restarts depend on).
    """

    def progress(name: str) -> None:
        if on_progress is not None:
            on_progress(name)

    store = db.store
    metadata = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "node_count": store.statistics.node_count,
        "relationship_count": store.statistics.relationship_count,
        "dense_node_threshold": store.dense_node_threshold,
        "page_size": db.page_cache.page_size,
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    (path / "metadata.json").write_text(json.dumps(metadata, indent=2))
    progress("metadata.json")
    (path / "tokens.json").write_text(
        json.dumps(
            {
                "labels": store.labels.all_tokens(),
                "types": store.types.all_tokens(),
                "property_keys": store.property_keys.all_tokens(),
            }
        )
    )
    progress("tokens.json")
    _write_jsonl(
        path / "nodes.jsonl",
        (
            {
                "id": record.id,
                "first_rel": record.first_rel,
                "first_prop": record.first_prop,
                "labels": sorted(record.labels),
                "dense": record.dense,
            }
            for record in store.nodes.dump_records().values()
        ),
    )
    progress("nodes.jsonl")
    _write_jsonl(
        path / "relationships.jsonl",
        (
            {
                "id": r.id,
                "type_id": r.type_id,
                "start_node": r.start_node,
                "end_node": r.end_node,
                "first_prop": r.first_prop,
                "start_prev": r.start_prev,
                "start_next": r.start_next,
                "end_prev": r.end_prev,
                "end_next": r.end_next,
            }
            for r in store.relationships.dump_records().values()
        ),
    )
    progress("relationships.jsonl")
    _write_jsonl(
        path / "properties.jsonl",
        (
            {
                "id": p.id,
                "key_id": p.key_id,
                "value": p.value,
                "prev_prop": p.prev_prop,
                "next_prop": p.next_prop,
            }
            for p in store.properties.dump_records().values()
        ),
    )
    progress("properties.jsonl")
    _write_jsonl(
        path / "groups.jsonl",
        (
            {
                "id": g.id,
                "owning_node": g.owning_node,
                "type_id": g.type_id,
                "next_group": g.next_group,
                "first_out": g.first_out,
                "first_in": g.first_in,
                "first_loop": g.first_loop,
                "count_out": g.count_out,
                "count_in": g.count_in,
                "count_loop": g.count_loop,
            }
            for g in store.groups.dump_records().values()
        ),
    )
    progress("groups.jsonl")
    specs = []
    for index in db.indexes:
        spec = {"name": index.name, "pattern": str(index.pattern)}
        if not index.supports_full_scan:
            spec["partial"] = True
            spec["materialized_starts"] = index.materialized_starts()
        specs.append(spec)
    (path / "indexes.json").write_text(json.dumps(specs))
    progress("indexes.json")
    for index in db.indexes:
        entries = (
            index.scan() if index.supports_full_scan else index.scan_materialized()
        )
        _write_jsonl(
            path / f"index_{index.name}.jsonl",
            (list(entry) for entry in entries),
        )
        progress(f"index_{index.name}.jsonl")


def read_snapshot_metadata(directory: Union[str, Path]) -> dict:
    """Read and validate a snapshot directory's ``metadata.json``."""
    metadata = json.loads((Path(directory) / "metadata.json").read_text())
    if metadata.get("format_version") != SNAPSHOT_FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format {metadata.get('format_version')!r}"
        )
    return metadata


def read_snapshot_state(db: GraphDatabase, path: Path) -> None:
    """Restore snapshot files from ``path`` into a freshly constructed ``db``."""
    store = db.store
    tokens = json.loads((path / "tokens.json").read_text())
    store.labels.restore_tokens(tokens["labels"])
    store.types.restore_tokens(tokens["types"])
    store.property_keys.restore_tokens(tokens["property_keys"])
    store.nodes.restore_records(
        {
            row["id"]: NodeRecord(
                id=row["id"],
                first_rel=row["first_rel"],
                first_prop=row["first_prop"],
                labels=frozenset(row["labels"]),
                dense=row["dense"],
            )
            for row in _read_jsonl(path / "nodes.jsonl")
        }
    )
    store.relationships.restore_records(
        {
            row["id"]: RelationshipRecord(**row)
            for row in _read_jsonl(path / "relationships.jsonl")
        }
    )
    store.properties.restore_records(
        {
            row["id"]: PropertyRecord(**row)
            for row in _read_jsonl(path / "properties.jsonl")
        }
    )
    store.groups.restore_records(
        {
            row["id"]: RelationshipGroupRecord(**row)
            for row in _read_jsonl(path / "groups.jsonl")
        }
    )
    store.rebuild_derived_state()
    for spec in json.loads((path / "indexes.json").read_text()):
        partial = bool(spec.get("partial"))
        index = db.indexes.create(
            spec["name"], PathPattern.parse(spec["pattern"]), partial=partial
        )
        if partial:
            index.restore_materialized_starts(spec.get("materialized_starts", []))
        for entry in _read_jsonl(path / f"index_{spec['name']}.jsonl"):
            index.add(tuple(entry))
        # Entries above went straight to the tree (unsealed); seal at the
        # version base so WAL replay maintains the index through overlay
        # deltas and the index is visible to every snapshot.
        index.seal(0)


def save_snapshot(db: GraphDatabase, directory: Union[str, Path]) -> Path:
    """Write a complete snapshot of ``db`` into ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    write_snapshot_state(db, path)
    return path


def load_snapshot(
    directory: Union[str, Path],
    page_cache_pages: int = 1 << 20,
) -> GraphDatabase:
    """Reconstruct a :class:`GraphDatabase` from a snapshot directory."""
    path = Path(directory)
    metadata = read_snapshot_metadata(path)
    db = GraphDatabase(
        page_cache_pages=page_cache_pages,
        page_size=metadata.get("page_size", 8192),
        dense_node_threshold=metadata.get("dense_node_threshold", 50),
    )
    read_snapshot_state(db, path)
    return db


def _write_jsonl(path: Path, rows) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row))
            handle.write("\n")


def _read_jsonl(path: Path):
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
