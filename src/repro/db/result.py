"""Query results: a timed iterator over projected rows.

The benchmark methodology of the paper reports "the time between submitting
the query and the first or last result to be received from the result
iterator" (§7.1.1). :class:`Result` records exactly those two timestamps as
the caller pulls rows.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional, Sequence

from repro.planner.plans import LogicalPlan
from repro.runtime.executor import ExecutionProfile
from repro.runtime.row import Row


class Result:
    """Iterator over result rows with first/last-result timing."""

    def __init__(
        self,
        rows: Iterator[Row],
        columns: Sequence[str],
        profile: ExecutionProfile,
        submitted_at: float,
        extra_seconds: float = 0.0,
    ) -> None:
        self._rows = rows
        self.columns = list(columns)
        self.profile = profile
        self._submitted_at = submitted_at
        self._extra_seconds = extra_seconds
        self._first_at: Optional[float] = None
        self._last_at: Optional[float] = None
        self._count = 0
        self._exhausted = False
        #: Log sequence number of the commit this (write) query produced, a
        #: read-your-writes token for replication catch-up. ``None`` for
        #: reads, non-durable databases, and writes that changed nothing.
        self.commit_lsn: Optional[int] = None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> "Result":
        return self

    def __next__(self) -> dict[str, object]:
        try:
            row = next(self._rows)
        except StopIteration:
            if self._last_at is None:
                self._last_at = time.perf_counter()
            self._exhausted = True
            raise
        now = time.perf_counter()
        if self._first_at is None:
            self._first_at = now
        self._last_at = now
        self._count += 1
        return {column: row.values.get(column) for column in self.columns}

    def consume(self) -> int:
        """Drain the iterator; returns the number of rows."""
        for _ in self:
            pass
        return self._count

    def to_list(self) -> list[dict[str, object]]:
        return list(self)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def time_to_first_result(self) -> float:
        """Seconds from submission to the first row (query time for empty
        results)."""
        anchor = self._first_at if self._first_at is not None else self._last_at
        if anchor is None:
            return 0.0
        return anchor - self._submitted_at + self._extra_seconds

    @property
    def time_to_last_result(self) -> float:
        """Seconds from submission until the iterator was exhausted."""
        if self._last_at is None:
            return 0.0
        return self._last_at - self._submitted_at + self._extra_seconds

    @property
    def max_intermediate_cardinality(self) -> int:
        return self.profile.max_intermediate_cardinality

    @property
    def plans(self) -> list[LogicalPlan]:
        return self.profile.plans

    def plan_description(self) -> str:
        return "\n".join(plan.render() for plan in self.profile.plans)
