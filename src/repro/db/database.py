"""The embedded graph database: the library's main entry point.

Wires together every subsystem of the reproduction — record stores on a
simulated page cache, transactions with path-index maintenance appliers,
the Cypher front-end, the cost-based planner with path-index support, and
the iterator runtime — behind a compact public API:

>>> db = GraphDatabase()
>>> with db.begin() as tx:
...     a = tx.create_node([db.label("Person")])
...     tx.success()
>>> result = db.execute("MATCH (n:Person) RETURN n")
>>> rows = result.to_list()
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.cypher import analyze, parse
from repro.db.plancache import CachedQuery, PlanCache
from repro.db.result import Result
from repro.errors import PathIndexError, ReproError
from repro.pathindex.index import PathIndex
from repro.pathindex.initialization import InitializationStats, initialize_index
from repro.pathindex.maintenance import QUERY_BASED, PathIndexMaintainer
from repro.pathindex.pattern import PathPattern
from repro.pathindex.store import PathIndexStore
from repro.planner import Planner, PlannerHints
from repro.querygraph import build_query_parts
from repro.resources import MemoryPool, SpillManager
from repro.runtime import Executor
from repro.storage import GraphStore, PageCache
from repro.storage.graphstore import DEFAULT_DENSE_NODE_THRESHOLD
from repro.storage.pagecache import DEFAULT_MISS_LATENCY_S, DEFAULT_PAGE_SIZE
from repro.storage.versions import PENDING, Snapshot
from repro.tx import Transaction, TransactionManager

IndexCreationStats = InitializationStats


def _closing(rows, tracker):
    """Release a query's memory grant/spill files when its lazy result is
    drained (or closed); runs after the executor's profile merge."""
    try:
        yield from rows
    finally:
        tracker.close()


@dataclass
class SizeReport:
    """Disk footprint, indexes reported separately (§6.3)."""

    graph_bytes: int
    index_bytes: dict[str, int]

    @property
    def total_index_bytes(self) -> int:
        return sum(self.index_bytes.values())


class GraphDatabase:
    """An embedded property-graph database with path indexes."""

    def __init__(
        self,
        page_cache_pages: int = 1 << 20,
        page_size: int = DEFAULT_PAGE_SIZE,
        miss_latency_s: float = DEFAULT_MISS_LATENCY_S,
        dense_node_threshold: int = DEFAULT_DENSE_NODE_THRESHOLD,
        maintenance_strategy: str = QUERY_BASED,
        execution_mode: Optional[str] = None,
        memory_budget: Optional[int] = None,
        memory_grant: Optional[int] = None,
    ) -> None:
        if execution_mode is None:
            execution_mode = os.environ.get("REPRO_EXECUTION_MODE", "batched")
        if execution_mode not in ("row", "batched", "compiled"):
            raise ReproError(f"unknown execution mode {execution_mode!r}")
        #: Default engine for :meth:`execute` — "batched" (morsel-at-a-time
        #: over slot rows), "compiled" (data-centric Python codegen), or
        #: "row" (the legacy tuple-at-a-time pipeline). Defaults to the
        #: ``REPRO_EXECUTION_MODE`` environment variable, then "batched".
        self.execution_mode = execution_mode
        self.page_cache = PageCache(page_cache_pages, page_size, miss_latency_s)
        self.store = GraphStore(self.page_cache, dense_node_threshold)
        self.indexes = PathIndexStore(self.page_cache, clock=self.store.mvcc)
        # Commits stamp path-index overlay deltas with their LSN, and the
        # version GC folds them into the trees when no snapshot is live.
        self.store.register_publisher(self.indexes)
        self.tx_manager = TransactionManager(self.store)
        self.maintainer = PathIndexMaintainer(
            self.store,
            self.indexes,
            tx_manager=self.tx_manager,
            strategy=maintenance_strategy,
        )
        self.tx_manager.register_applier(self.maintainer)
        # The §4.1.1 query cache. Maintenance queries bypass it by design
        # (they plan directly via run_pattern_query).
        self.plan_cache = PlanCache()
        #: Set by :meth:`open` — the durability engine persisting commits to
        #: a write-ahead log. ``None`` for purely in-memory databases.
        self.durability = None
        # Resource governance: the process-wide memory budget shared by
        # every query of this database, and the spill-file manager the
        # blocking operators write through once a query exceeds its grant.
        # ``memory_budget=None`` (and no REPRO_MEMORY_BUDGET) means
        # unbounded: memory is tracked but never denied and never spilled.
        if memory_budget is None:
            env = os.environ.get("REPRO_MEMORY_BUDGET")
            memory_budget = int(env) if env else None
        if memory_grant is None:
            env = os.environ.get("REPRO_MEMORY_GRANT")
            memory_grant = int(env) if env else None
        self.memory_pool = MemoryPool(memory_budget, memory_grant)
        self.spill_manager = SpillManager()
        self._register_cache_gauges()

    def _register_cache_gauges(self) -> None:
        """Account the long-lived shared caches in the pool snapshot."""
        self.memory_pool.register_gauge(
            "plan_cache_bytes", self.plan_cache.approx_bytes
        )
        self.memory_pool.register_gauge(
            "page_cache_bytes",
            lambda: self.page_cache.resident_pages * self.page_cache.page_size,
        )

    def set_memory_budget(
        self, budget_bytes: Optional[int], grant_bytes: Optional[int] = None
    ) -> MemoryPool:
        """Swap in a fresh :class:`MemoryPool` (tests, live reconfiguration).

        Queries already holding grants keep them against the old pool;
        only new queries see the new budget. Returns the new pool.
        """
        self.memory_pool = MemoryPool(budget_bytes, grant_bytes)
        self._register_cache_gauges()
        return self.memory_pool

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory,
        durability_config=None,
        fault_injector=None,
        **kwargs,
    ) -> "GraphDatabase":
        """Open (creating or recovering) a *durable* database at ``directory``.

        Commits are written to a CRC-checksummed write-ahead log and
        fsynced with group commit; :meth:`checkpoint` (or the automatic
        thresholds in ``durability_config``) compacts the log into an
        atomic snapshot. Re-opening after a crash replays the last
        checkpoint plus the log's valid prefix — a torn or corrupt tail is
        discarded, so recovery always lands on a prefix of the committed
        transactions. Keyword arguments match the constructor; the ones
        that shape stored records (``page_size``, ``dense_node_threshold``)
        are taken from the existing checkpoint when re-opening.
        """
        from repro.durability.engine import DurabilityEngine

        return DurabilityEngine.open_database(
            directory,
            config=durability_config,
            injector=fault_injector,
            **kwargs,
        )

    def checkpoint(self) -> None:
        """Force a checkpoint (snapshot + log truncation) now."""
        if self.durability is None:
            raise ReproError("database was not opened with GraphDatabase.open")
        self.durability.checkpoint()

    def close(self) -> None:
        """Flush and release durability resources and spill files."""
        if self.durability is not None:
            self.durability.close()
        self.spill_manager.close()

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------

    def label(self, name: str) -> int:
        """Token id for a label, creating it if needed."""
        return self.store.labels.get_or_create(name)

    def relationship_type(self, name: str) -> int:
        return self.store.types.get_or_create(name)

    def property_key(self, name: str) -> int:
        return self.store.property_keys.get_or_create(name)

    # ------------------------------------------------------------------
    # Transactions and direct write API
    # ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a transaction on the calling thread."""
        return self.tx_manager.begin()

    # ------------------------------------------------------------------
    # MVCC snapshots
    # ------------------------------------------------------------------

    @contextmanager
    def snapshot(self) -> Iterator[Snapshot]:
        """Pin the current committed state for lock-free reading.

        Inside the block, every read on this thread — queries on any of
        the three engines, direct store reads, index scans, statistics —
        resolves at the snapshot's commit LSN, untouched by concurrent
        writers. Acquiring a snapshot takes no lock; writers never wait
        for readers and readers never wait for writers.
        """
        clock = self.store.mvcc
        # Bulk loaders (dataset generators, restore helpers) write to the
        # store directly outside any transaction, leaving PENDING versions
        # with no commit to publish them. Adopt such orphans before
        # pinning: when no writer is active the non-blocking acquire
        # succeeds and we stamp them under a fresh LSN; when a writer IS
        # active the pending versions belong to it and its own commit
        # publishes them.
        if self.store.has_pending_versions() and self.tx_manager.current() is None:
            if clock.write_lock.acquire(blocking=False):
                try:
                    self.store.publish_commit()
                finally:
                    clock.write_lock.release()
        snap = clock.acquire()
        try:
            with clock.reading(snap):
                yield snap
        finally:
            clock.release(snap)

    def vacuum_versions(self) -> dict[str, int]:
        """Reclaim version chains and fold index deltas no live snapshot
        can reach (runs automatically at checkpoints). Returns counters."""
        with self.store.mvcc.exclusive_writer():
            return self.store.collect_versions()

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: Optional[dict[str, object]] = None,
    ) -> int:
        """Create a node in its own transaction (or the open one)."""
        with self._write_tx() as (tx, own):
            node_id = tx.create_node([self.label(name) for name in labels])
            for key, value in (properties or {}).items():
                tx.set_node_property(node_id, self.property_key(key), value)
            if own:
                tx.success()
        return node_id

    def create_relationship(
        self,
        start: int,
        end: int,
        type_name: str,
        properties: Optional[dict[str, object]] = None,
    ) -> int:
        with self._write_tx() as (tx, own):
            rel_id = tx.create_relationship(
                start, end, self.relationship_type(type_name)
            )
            for key, value in (properties or {}).items():
                tx.set_relationship_property(rel_id, self.property_key(key), value)
            if own:
                tx.success()
        return rel_id

    def delete_relationship(self, rel_id: int) -> None:
        with self._write_tx() as (tx, own):
            tx.delete_relationship(rel_id)
            if own:
                tx.success()

    def add_label(self, node_id: int, label: str) -> None:
        with self._write_tx() as (tx, own):
            tx.add_label(node_id, self.label(label))
            if own:
                tx.success()

    def remove_label(self, node_id: int, label: str) -> None:
        with self._write_tx() as (tx, own):
            tx.remove_label(node_id, self.label(label))
            if own:
                tx.success()

    def _write_tx(self):
        """Context yielding ``(transaction, owns_it)``."""
        database = self

        class _Ctx:
            def __enter__(self):
                current = database.tx_manager.current()
                if current is not None:
                    self.tx, self.own = current, False
                else:
                    self.tx, self.own = database.tx_manager.begin(), True
                return self.tx, self.own

            def __exit__(self, exc_type, exc, tb):
                if self.own:
                    if exc_type is not None:
                        self.tx.failure()
                    if not self.tx.closed:
                        self.tx.close()

        return _Ctx()

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(
        self,
        query_text: str,
        hints: Optional[PlannerHints] = None,
        token: Optional[object] = None,
        prepared: Optional[CachedQuery] = None,
        execution_mode: Optional[str] = None,
        tracker: Optional[object] = None,
    ) -> Result:
        """Parse, plan and run a Cypher query; returns a timed Result.

        Read-only queries stream lazily; update queries apply their writes
        (committing an implicit transaction unless one is already open) and
        return materialized rows. ``token`` is an optional cooperative
        cancellation token (``repro.service.CancellationToken``) checked at
        row/morsel boundaries; a cancelled/timed-out write rolls back.
        ``prepared`` (from :meth:`prepare`) skips the plan-cache lookup —
        the service layer uses it so planning is looked up and timed
        exactly once. ``execution_mode`` selects the engine per call
        ("batched", "compiled" or "row"), defaulting to the database-wide
        :attr:`execution_mode`. ``tracker`` is an optional
        :class:`~repro.resources.MemoryTracker` whose grant the caller
        already reserved (the service layer); without one, the query
        reserves its own grant from :attr:`memory_pool` and releases it
        when the result is drained. A query whose non-spillable buffers
        exhaust the pool raises
        :class:`~repro.errors.MemoryLimitExceeded`; for writes the
        implicit transaction rolls back first.
        """
        submitted = time.perf_counter()
        mode = execution_mode if execution_mode is not None else self.execution_mode
        if mode not in ("row", "batched", "compiled"):
            raise ReproError(f"unknown execution mode {mode!r}")
        cached = prepared if prepared is not None else self._planned(query_text, hints)
        executor = Executor(
            self.store, self.indexes, cached.analyzed.variable_kinds
        )
        compiled = self._compiled(cached, executor) if mode == "compiled" else None
        own_tracker = tracker is None
        if own_tracker:
            tracker = self.memory_pool.tracker(
                label="query", spill_manager=self.spill_manager
            )
        if not cached.analyzed.is_write:
            try:
                rows, profile = executor.execute(
                    cached.planned_parts,
                    token=token,
                    mode=mode,
                    compiled=compiled,
                    tracker=tracker,
                )
            except BaseException:
                if own_tracker:
                    tracker.close()
                raise
            if own_tracker:
                rows = _closing(rows, tracker)
            return Result(rows, cached.columns, profile, submitted)
        durability = self.durability
        if durability is not None:
            durability.begin_lsn_capture()
        try:
            with self._write_tx() as (tx, own):
                rows, profile = executor.execute(
                    cached.planned_parts,
                    transaction=tx,
                    token=token,
                    mode=mode,
                    compiled=compiled,
                    tracker=tracker,
                )
                materialized = list(rows)
                if own:
                    tx.success()
        finally:
            if own_tracker:
                tracker.close()
        result = Result(iter(materialized), cached.columns, profile, submitted)
        if durability is not None:
            # The commit's LSN (logged during the transaction close above on
            # this same thread) is the caller's read-your-writes token.
            result.commit_lsn = durability.captured_lsn()
        return result

    def _compiled(self, cached: CachedQuery, executor: Executor):
        """The cached codegen artifact for ``cached``, compiling on first
        use. The artifact lives on the plan-cache entry, so statistics
        drift or index changes invalidate both together."""
        artifact = cached.compiled
        if artifact is None:
            artifact = executor.compile_artifact(cached.planned_parts)
            cached.compiled = artifact
        return artifact

    def compiled_source(
        self, query_text: str, hints: Optional[PlannerHints] = None
    ) -> str:
        """The generated Python pipeline source for a query (the shell's
        ``:source`` meta-command), compiling and caching the artifact."""
        cached = self._planned(query_text, hints)
        executor = Executor(
            self.store, self.indexes, cached.analyzed.variable_kinds
        )
        return self._compiled(cached, executor).source()

    def prepare(self, query_text: str, hints: Optional[PlannerHints] = None) -> CachedQuery:
        """Analyze and plan a query (through the plan cache) without running
        it — the service layer uses this to classify reads vs. writes and to
        time planning separately from execution."""
        return self._planned(query_text, hints)

    def _planned(self, query_text: str, hints: Optional[PlannerHints]) -> CachedQuery:
        """Plan a query, consulting the §4.1.1 query cache."""
        key = (query_text, hints)
        # Visible names, not all names: a snapshot reader planning against
        # an index attached after its LSN would read entries it must not
        # see, and a cached plan from the pre-attach window must be
        # invalidated once the index becomes visible.
        signature = frozenset(self.indexes.visible_names())
        stats = self.store.statistics_view()
        entry = self.plan_cache.lookup(
            key, stats.node_count, stats.relationship_count, signature
        )
        if entry is not None:
            return entry
        analyzed = analyze(parse(query_text))
        parts = build_query_parts(analyzed)
        planner = Planner(self.store, self.indexes)
        planned = [(part, planner.plan_part(part, hints)) for part in parts]
        entry = CachedQuery(
            analyzed=analyzed,
            planned_parts=planned,
            columns=self._result_columns(parts),
            node_count=stats.node_count,
            relationship_count=stats.relationship_count,
            index_signature=signature,
        )
        self.plan_cache.store(key, entry)
        return entry

    def explain(
        self, query_text: str, hints: Optional[PlannerHints] = None
    ) -> str:
        """The logical plan for a query, rendered as a tree."""
        analyzed = analyze(parse(query_text))
        parts = build_query_parts(analyzed)
        planner = Planner(self.store, self.indexes)
        return "\n".join(
            planner.plan_part(part, hints).render() for part in parts
        )

    @staticmethod
    def _result_columns(parts) -> list[str]:
        if not parts:
            return []
        return [item.output_name for item in parts[-1].projection]

    # ------------------------------------------------------------------
    # Path indexes
    # ------------------------------------------------------------------

    def create_path_index(
        self,
        name: str,
        pattern: Union[str, PathPattern],
        populate: bool = True,
        hints: Optional[PlannerHints] = None,
        partial: bool = False,
    ) -> InitializationStats:
        """Register a path index and (by default) initialize it from the
        existing data (Algorithm 2).

        ``partial=True`` creates a §4.1 partially materialized index: it
        starts empty, fills itself per queried seek prefix, and is offered
        to the planner only through PathIndexPrefixSeek.
        """
        if isinstance(pattern, str):
            pattern = PathPattern.parse(pattern)
        # DDL is a writer: it serializes behind transactions on the store
        # write lock and builds the index invisibly (created_lsn pending),
        # writing the tree directly. Sealing attaches it at the current
        # published LSN — snapshots pinned before that never see it, and
        # from then on commits maintain it through versioned overlay
        # deltas instead of mutating the shared tree.
        with self.store.mvcc.exclusive_writer():
            index = self.indexes.create(name, pattern, partial=partial)
            index.created_lsn = PENDING
            if self.durability is not None:
                self.durability.log_ddl(
                    "create_index", name, str(pattern), partial, populate
                )
            if populate and not partial:
                tracker = self.memory_pool.tracker(
                    label=f"index build: {name}",
                    spill_manager=self.spill_manager,
                )
                try:
                    stats = initialize_index(
                        self.store, self.indexes, index, hints, tracker=tracker
                    )
                except BaseException:
                    # A build that blows the memory budget must not leave a
                    # half-populated index behind (nor a dangling WAL record).
                    self.drop_path_index(name)
                    raise
                finally:
                    tracker.close()
                index.seal(self.store.mvcc.published)
                return stats
            index.seal(self.store.mvcc.published)
            return InitializationStats(
                index_name=name,
                cardinality=0,
                size_on_disk=index.size_on_disk(),
                total_data_size=0,
                seconds=0.0,
            )

    def create_relationship_type_index(self, type_name: str) -> InitializationStats:
        """The §6.1 baseline extension: a label-free single-relationship
        index enabling RelationshipByTypeScan."""
        name = f"type:{type_name}"
        return self.create_path_index(name, f"()-[:{type_name}]->()")

    def drop_path_index(self, name: str) -> None:
        # Registry removal under the write lock; in-flight readers holding
        # the index object keep scanning it safely (the tree is untouched),
        # and the visible-names plan-cache signature invalidates their
        # cached plans on the next lookup.
        with self.store.mvcc.exclusive_writer():
            self.indexes.drop(name)
            if self.durability is not None:
                self.durability.log_ddl("drop_index", name, "")

    def path_index(self, name: str) -> PathIndex:
        return self.indexes.get(name)

    def verify_index(self, name: str) -> bool:
        """Cross-check an index against a fresh traversal of its pattern
        (used by tests and examples; not part of the paper's pipeline)."""
        from repro.db.patternquery import run_pattern_query

        index = self.indexes.get(name)
        entries, _ = run_pattern_query(
            self.store,
            self.indexes,
            index.pattern,
            hints=PlannerHints(use_path_indexes=False),
        )
        expected = set(entries)
        if index.supports_full_scan:
            return expected == set(index.scan())
        # A partial index must hold exactly the occurrences of its
        # materialized start nodes — no more, no less.
        from repro.pathindex.partial import PartialPathIndex

        assert isinstance(index, PartialPathIndex)
        covered = {
            entry for entry in expected if index.is_materialized(entry[0])
        }
        return covered == set(index.scan_materialized())

    # ------------------------------------------------------------------
    # Cache control and sizing (§6.3 methodology)
    # ------------------------------------------------------------------

    def flush_cache(self) -> None:
        """Evict every cached page — the paper's database re-open for cold
        runs ("flush its memory cache without losing the optimized code
        paths")."""
        self.page_cache.flush()

    def size_report(self) -> SizeReport:
        return SizeReport(
            graph_bytes=self.store.size_on_disk(),
            index_bytes={
                index.name: index.size_on_disk() for index in self.indexes
            },
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"GraphDatabase(nodes={self.store.statistics.node_count}, "
            f"relationships={self.store.statistics.relationship_count}, "
            f"indexes={len(self.indexes)})"
        )
