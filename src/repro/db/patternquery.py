"""Internal pattern queries: run a :class:`PathPattern` through the pipeline.

Used by index initialization (Algorithm 2: "Query(P, G)") and by query-based
maintenance (Algorithm 1: "query the index pattern with an additional
predicate that the modified relationship must be part of the resulting
paths"). The anchor predicate is expressed by binding the pattern variables
at the anchored position as *arguments*, so the planner is free to pick any
strategy — expanding outward from the anchor, or prefix-seeking another
index — exactly the flexibility the paper's approach gains over De Jong's
self-maintaining translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cypher import ast
from repro.cypher.semantics import VariableKind
from repro.pathindex.pattern import PathPattern
from repro.pathindex.store import PathIndexStore
from repro.planner import Planner, PlannerHints
from repro.querygraph import QueryGraph, QueryPart
from repro.runtime import Executor, Row
from repro.runtime.executor import ExecutionProfile
from repro.storage.graphstore import GraphStore


@dataclass(frozen=True)
class Anchor:
    """Bind pattern step ``position`` to a concrete relationship."""

    position: int
    rel_id: int
    source_id: int  # node at pattern position `position`
    target_id: int  # node at pattern position `position + 1`

    def bound_variables(self) -> dict[str, int]:
        return {
            node_var(self.position): self.source_id,
            rel_var(self.position): self.rel_id,
            node_var(self.position + 1): self.target_id,
        }

    def bound_rel_ids(self) -> frozenset[int]:
        return frozenset({self.rel_id})


@dataclass(frozen=True)
class NodeAnchor:
    """Bind pattern node ``position`` to a concrete node (label updates)."""

    position: int
    node_id: int

    def bound_variables(self) -> dict[str, int]:
        return {node_var(self.position): self.node_id}

    def bound_rel_ids(self) -> frozenset[int]:
        return frozenset()


def node_var(position: int) -> str:
    return f"n{position}"


def rel_var(position: int) -> str:
    return f"r{position}"


def entry_variables(pattern: PathPattern) -> list[str]:
    """Variable names in stored-entry order: n0, r0, n1, ..., nk."""
    names = [node_var(0)]
    for position in range(pattern.length):
        names.append(rel_var(position))
        names.append(node_var(position + 1))
    return names


def build_pattern_part(
    pattern: PathPattern, anchor=None
) -> tuple[QueryPart, dict[str, VariableKind]]:
    """Construct the query part matching ``pattern`` (anchored or not)."""
    arguments: frozenset[str] = frozenset()
    if anchor is not None:
        arguments = frozenset(anchor.bound_variables())
    graph = QueryGraph(arguments=arguments)
    kinds: dict[str, VariableKind] = {}
    for position, label in enumerate(pattern.labels):
        labels = [label] if label is not None else []
        graph.add_node(node_var(position), labels)
        kinds[node_var(position)] = VariableKind.NODE
    for position, step in enumerate(pattern.relationships):
        if step.forward:
            start, end = node_var(position), node_var(position + 1)
        else:
            start, end = node_var(position + 1), node_var(position)
        types = [step.type] if step.type is not None else []
        graph.add_relationship(rel_var(position), start, end, types)
        kinds[rel_var(position)] = VariableKind.RELATIONSHIP
    projection = [
        ast.ProjectionItem(ast.Variable(name), alias=name)
        for name in entry_variables(pattern)
    ]
    return QueryPart(query_graph=graph, projection=projection, is_final=True), kinds


def run_pattern_query(
    store: GraphStore,
    index_store: Optional[PathIndexStore],
    pattern: PathPattern,
    anchor=None,
    hints: Optional[PlannerHints] = None,
) -> tuple[Iterator[tuple[int, ...]], ExecutionProfile]:
    """Stream all pattern occurrences as identifier entries."""
    part, kinds = build_pattern_part(pattern, anchor)
    planner = Planner(store, index_store)
    plan = planner.plan_part(part, hints)
    executor = Executor(store, index_store, kinds)
    initial = Row.empty()
    if anchor is not None:
        initial = Row(dict(anchor.bound_variables()), anchor.bound_rel_ids())
    rows, profile = executor.execute([(part, plan)], initial_row=initial)
    names = entry_variables(pattern)

    def entries() -> Iterator[tuple[int, ...]]:
        for row in rows:
            yield tuple(int(row.values[name]) for name in names)

    return entries(), profile


def anchors_for_relationship(
    pattern: PathPattern,
    rel_id: int,
    type_name: Optional[str],
    start_id: int,
    end_id: int,
    start_labels: frozenset[str],
    end_labels: frozenset[str],
) -> list[Anchor]:
    """All pattern positions where the given relationship could occur."""
    anchors = []
    for position in pattern.step_positions_for(type_name, start_labels, end_labels):
        step = pattern.relationships[position]
        if step.forward:
            anchors.append(Anchor(position, rel_id, start_id, end_id))
        else:
            anchors.append(Anchor(position, rel_id, end_id, start_id))
    return anchors
