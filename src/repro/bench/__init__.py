"""Benchmark support: the paper's measurement methodology and reporting.

§6.3: "Each experiment ran until running time converges ... Then we ran the
experiment five times, triggering a garbage collection cycle between each
run. We then discarded the highest and lowest running time and averaged the
middle three." :class:`Methodology` implements exactly that, including cold
runs via page-cache flush plus simulated NVMe latency per page miss.
"""

from repro.bench.harness import Measurement, Methodology
from repro.bench.reporting import (
    format_bytes,
    format_ms,
    format_speedup,
    render_table,
    write_report,
)

__all__ = [
    "Measurement",
    "Methodology",
    "format_bytes",
    "format_ms",
    "format_speedup",
    "render_table",
    "write_report",
]
