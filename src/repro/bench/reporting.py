"""Rendering benchmark results as paper-style tables + JSON artifacts."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_ms(seconds: float) -> str:
    """Milliseconds with the paper's two-decimal style."""
    return f"{seconds * 1e3:,.2f} ms"


def format_speedup(baseline_s: float, candidate_s: float) -> str:
    """The paper's ``≈ N×`` speed-up notation."""
    if candidate_s <= 0:
        return "≈ inf"
    factor = baseline_s / candidate_s
    if factor >= 10:
        return f"≈ {factor:,.0f}×"
    return f"≈ {factor:.1f}×"


def format_bytes(size: int) -> str:
    """MiB with two decimals (Table 2's unit)."""
    return f"{size / (1024 * 1024):.2f} MiB"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    note: Optional[str] = None,
) -> str:
    """A monospace table in the style of the paper's result tables."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        for position in range(columns):
            widths[position] = max(widths[position], len(str(row[position])))

    def line(cells) -> str:
        return "  ".join(
            str(cell).ljust(widths[position]) if position == 0
            else str(cell).rjust(widths[position])
            for position, cell in enumerate(cells)
        )

    separator = "-" * (sum(widths) + 2 * (columns - 1))
    parts = [f"== {title} ==", line(headers), separator]
    parts.extend(line(row) for row in rows)
    if note:
        parts.append("")
        parts.append(note)
    return "\n".join(parts)


def render_bar_chart(
    title: str,
    series: dict[str, dict[str, float]],
    unit: str = "ms",
    width: int = 50,
) -> str:
    """Log-scale ASCII bar chart (the paper's Figures 7/8/9/11).

    ``series`` maps a series name (e.g. "Last result (cached)") to
    ``{bar_label: value}``.
    """
    import math

    values = [
        value
        for bars in series.values()
        for value in bars.values()
        if value > 0
    ]
    if not values:
        return f"== {title} == (no data)"
    low = math.log10(min(values)) - 0.1
    high = math.log10(max(values)) + 0.1
    span = max(high - low, 1e-9)
    lines = [f"== {title} ==  (log scale, {unit})"]
    label_width = max(
        (len(label) for bars in series.values() for label in bars), default=4
    )
    for series_name, bars in series.items():
        lines.append(f"-- {series_name} --")
        for label, value in bars.items():
            if value <= 0:
                bar = ""
            else:
                filled = int(round((math.log10(value) - low) / span * width))
                bar = "#" * max(filled, 1)
            lines.append(f"  {label.ljust(label_width)} |{bar} {value:,.2f}")
    return "\n".join(lines)


def write_report(
    name: str,
    table_text: str,
    data: dict,
) -> Path:
    """Print the table and persist both text and JSON under
    ``benchmarks/results/``."""
    print()
    print(table_text)
    results_dir = Path(os.environ.get("REPRO_RESULTS_DIR", RESULTS_DIR))
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{name}.txt").write_text(table_text + "\n", encoding="utf-8")
    with open(results_dir / f"{name}.json", "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, default=str)
    return results_dir / f"{name}.txt"
