"""The measurement methodology of §6.3, executable.

``Methodology.measure_query`` runs a query with warm-up, N timed repetitions,
drop-highest/lowest, average-middle — separately recording time-to-first and
time-to-last result (§7.1.1's reporting). A *cold* measurement flushes the
page cache before each repetition and charges the simulated per-page NVMe
latency for every page miss, which reproduces the paper's cold/cached split
without real disk I/O (DESIGN.md §3.1).
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Optional

from repro.db.database import GraphDatabase
from repro.planner import PlannerHints


def configured_runs(default: int = 5) -> int:
    """Timed repetitions per measurement (env ``REPRO_BENCH_RUNS``)."""
    return max(1, int(os.environ.get("REPRO_BENCH_RUNS", default)))


def bench_scale() -> float:
    """Global dataset scale multiplier (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@dataclass
class Measurement:
    """Aggregated result of one benchmark cell."""

    first_result_s: float
    last_result_s: float
    rows: int
    max_intermediate_cardinality: int
    runs: int
    cold: bool

    @property
    def first_result_ms(self) -> float:
        return self.first_result_s * 1e3

    @property
    def last_result_ms(self) -> float:
        return self.last_result_s * 1e3


class Methodology:
    """Warm-up, repeat, drop hi/lo, average middle (§6.3)."""

    def __init__(
        self,
        db: GraphDatabase,
        warmup_runs: int = 1,
        runs: Optional[int] = None,
    ) -> None:
        self.db = db
        self.warmup_runs = warmup_runs
        self.runs = runs if runs is not None else configured_runs()

    # ------------------------------------------------------------------

    def measure_query(
        self,
        query: str,
        hints: Optional[PlannerHints] = None,
        cold: bool = False,
    ) -> Measurement:
        """Measure first/last-result times for one query under one plan."""
        for _ in range(self.warmup_runs):
            self._single_run(query, hints, cold=cold)
        samples = [self._single_run(query, hints, cold=cold) for _ in range(self.runs)]
        kept = self._middle_runs(samples)
        return Measurement(
            first_result_s=mean(sample[0] for sample in kept),
            last_result_s=mean(sample[1] for sample in kept),
            rows=kept[-1][2],
            max_intermediate_cardinality=kept[-1][3],
            runs=self.runs,
            cold=cold,
        )

    def measure_callable(
        self, operation: Callable[[], None], cold: bool = False
    ) -> float:
        """Average middle-three wall time of an arbitrary operation."""
        for _ in range(self.warmup_runs):
            self._prepare(cold)
            operation()
        times = []
        for _ in range(self.runs):
            self._prepare(cold)
            started = time.perf_counter()
            operation()
            times.append(time.perf_counter() - started)
        times.sort()
        kept = times[1:-1] if len(times) > 2 else times
        return mean(kept)

    # ------------------------------------------------------------------

    def _prepare(self, cold: bool) -> None:
        gc.collect()  # "triggering a garbage collection cycle between runs"
        if cold:
            self.db.flush_cache()

    def _single_run(
        self, query: str, hints: Optional[PlannerHints], cold: bool
    ) -> tuple[float, float, int, int]:
        self._prepare(cold)
        stats = self.db.page_cache.stats
        before = stats.snapshot()
        result = self.db.execute(query, hints)
        rows = 0
        first_wall = None
        first_io = 0.0
        iterator = iter(result)
        while True:
            try:
                next(iterator)
            except StopIteration:
                break
            rows += 1
            if first_wall is None:
                first_wall = result.time_to_first_result
                first_io = stats.delta_since(before).simulated_io_seconds
        last_wall = result.time_to_last_result
        total_io = stats.delta_since(before).simulated_io_seconds
        if first_wall is None:
            first_wall, first_io = last_wall, total_io
        if cold:
            return (
                first_wall + first_io,
                last_wall + total_io,
                rows,
                result.max_intermediate_cardinality,
            )
        return (first_wall, last_wall, rows, result.max_intermediate_cardinality)

    @staticmethod
    def _middle_runs(samples: list[tuple]) -> list[tuple]:
        """Drop the highest and lowest run (by last-result time)."""
        if len(samples) <= 2:
            return samples
        ordered = sorted(samples, key=lambda sample: sample[1])
        return ordered[1:-1]
