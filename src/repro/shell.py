"""Interactive Cypher shell and one-shot CLI.

Usage::

    python -m repro                          # REPL on an empty database
    python -m repro --data mydb/             # REPL on a durable database
                                             # (WAL + checkpoints, crash-safe)
    python -m repro --snapshot data/         # REPL on a saved snapshot
    python -m repro --execute "MATCH ..."    # one query, print rows, exit

Inside the REPL, statements end with ``;``. Meta-commands:

    :help                       this text
    :quit                       exit (a snapshot is saved if --snapshot set)
    :explain <on|off>           print the plan before each query
    :mode <row|batched|compiled>    switch the execution engine
    :source <query>             print the generated Python for a query
                                (compiled engine's codegen output)
    :indexes                    list path indexes with cardinality and size
    :create-index <name> <pattern>   build a path index, e.g.
                                     :create-index k2 (:P)-[:K]->(:P)-[:K]->(:P)
    :drop-index <name>          remove a path index
    :stats                      node/relationship/index counts
    :metrics                    query-service counters and latency histograms
    :memory                     memory pool usage, per-query peaks, spill
                                counters (see GraphDatabase(memory_budget=...))
    :checkpoint                 durable databases: snapshot + truncate the WAL
    :save <dir> / :load <dir>   snapshot persistence
    :connect <host:port> [token]    switch to a remote server
                                    (``python -m repro.server``); queries now
                                    run over the wire protocol
    :disconnect                 drop the remote connection, back to local
    :promote                    (remote only) promote the connected replica
                                to leader: it verifies its WAL tail, bumps
                                the leader epoch, and flips writable

Queries run through a :class:`repro.service.QueryService` (a 2-worker
instance), so ``:metrics`` reflects real service traffic: latency
histograms, plan-cache hits, page-cache deltas, retries, timeouts.
While ``:connect``-ed, queries go to the remote server instead and
local-only meta-commands are refused until ``:disconnect``.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional

from repro import GraphDatabase, ReproError
from repro.client import Client
from repro.db.snapshot import load_snapshot, save_snapshot
from repro.service import QueryService, ServiceConfig


class Shell:
    """A line-oriented Cypher REPL over one :class:`GraphDatabase`."""

    def __init__(
        self,
        db: Optional[GraphDatabase] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ) -> None:
        self.db = db if db is not None else GraphDatabase()
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.explain = False
        self.running = True
        self.service = QueryService(self.db, ServiceConfig(max_concurrency=2))
        self.remote: Optional[Client] = None

    def close(self) -> None:
        """Shut down the query service and any remote connection (idempotent)."""
        if self.remote is not None:
            self.remote.close()
            self.remote = None
        self.service.shutdown()

    # ------------------------------------------------------------------

    def println(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def run(self) -> None:
        """Read statements until EOF or :quit."""
        buffer: list[str] = []
        self.println("pathindex-repro shell — :help for commands")
        for line in self.stdin:
            stripped = line.strip()
            if not buffer and stripped.startswith(":"):
                self.handle_command(stripped)
                if not self.running:
                    return
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                statement = "".join(buffer).strip().rstrip(";")
                buffer.clear()
                if statement:
                    self.execute(statement)
        if buffer and "".join(buffer).strip():
            self.execute("".join(buffer).strip().rstrip(";"))

    # ------------------------------------------------------------------

    def execute(self, query: str) -> None:
        try:
            if self.remote is not None:
                outcome = self.remote.execute(query)
            else:
                if self.explain:
                    self.println(self.db.explain(query))
                outcome = self.service.execute(query)
        except (ReproError, OSError) as exc:
            self.println(f"error: {exc}")
            return
        if outcome.columns:
            self.println(" | ".join(outcome.columns))
            for row in outcome.rows:
                self.println(
                    " | ".join(str(row.get(column)) for column in outcome.columns)
                )
        self.println(
            f"({outcome.row_count} row{'s' if outcome.row_count != 1 else ''}, "
            f"{outcome.total_seconds * 1e3:.2f} ms, "
            f"max intermediate {outcome.max_intermediate_cardinality})"
        )

    def handle_command(self, command_line: str) -> None:
        command, _, argument = command_line.partition(" ")
        argument = argument.strip()
        handler = {
            ":help": self._cmd_help,
            ":quit": self._cmd_quit,
            ":exit": self._cmd_quit,
            ":explain": self._cmd_explain,
            ":mode": self._cmd_mode,
            ":source": self._cmd_source,
            ":indexes": self._cmd_indexes,
            ":create-index": self._cmd_create_index,
            ":drop-index": self._cmd_drop_index,
            ":stats": self._cmd_stats,
            ":metrics": self._cmd_metrics,
            ":memory": self._cmd_memory,
            ":checkpoint": self._cmd_checkpoint,
            ":save": self._cmd_save,
            ":load": self._cmd_load,
            ":connect": self._cmd_connect,
            ":disconnect": self._cmd_disconnect,
            ":promote": self._cmd_promote,
        }.get(command)
        if handler is None:
            self.println(f"unknown command {command!r} — :help for commands")
            return
        if self.remote is not None and command not in (
            ":help",
            ":quit",
            ":exit",
            ":connect",
            ":disconnect",
            ":promote",
        ):
            self.println(
                f"{command} acts on the local database — :disconnect first"
            )
            return
        try:
            handler(argument)
        except (ReproError, OSError) as exc:
            self.println(f"error: {exc}")

    # ------------------------------------------------------------------

    def _cmd_help(self, argument: str) -> None:
        self.println(__doc__.split("Meta-commands:")[-1].rstrip())

    def _cmd_quit(self, argument: str) -> None:
        self.running = False

    def _cmd_explain(self, argument: str) -> None:
        if argument not in ("on", "off"):
            self.println("usage: :explain <on|off>")
            return
        self.explain = argument == "on"
        self.println(f"explain {'enabled' if self.explain else 'disabled'}")

    def _cmd_mode(self, argument: str) -> None:
        if argument not in ("row", "batched", "compiled"):
            self.println("usage: :mode <row|batched|compiled>")
            return
        self.db.execution_mode = argument
        self.println(f"execution mode set to {argument}")

    def _cmd_source(self, argument: str) -> None:
        if not argument:
            self.println("usage: :source <query>")
            return
        self.println(self.db.compiled_source(argument.rstrip(";")))

    def _cmd_indexes(self, argument: str) -> None:
        if len(self.db.indexes) == 0:
            self.println("no path indexes")
            return
        for index in self.db.indexes:
            self.println(
                f"{index.name}: {index.pattern} "
                f"({index.cardinality} entries, {index.size_on_disk()} bytes)"
            )

    def _cmd_create_index(self, argument: str) -> None:
        name, _, pattern = argument.partition(" ")
        if not name or not pattern.strip():
            self.println("usage: :create-index <name> <pattern>")
            return
        stats = self.db.create_path_index(name, pattern.strip())
        self.println(
            f"created {stats.index_name!r}: {stats.cardinality} entries in "
            f"{stats.seconds * 1e3:.1f} ms"
        )

    def _cmd_drop_index(self, argument: str) -> None:
        if not argument:
            self.println("usage: :drop-index <name>")
            return
        self.db.drop_path_index(argument)
        self.println(f"dropped {argument!r}")

    def _cmd_stats(self, argument: str) -> None:
        statistics = self.db.store.statistics
        self.println(
            f"nodes: {statistics.node_count}, "
            f"relationships: {statistics.relationship_count}, "
            f"path indexes: {len(self.db.indexes)}"
        )

    def _cmd_metrics(self, argument: str) -> None:
        snapshot = self.service.metrics_snapshot()
        self.println("counters:")
        for name, value in snapshot["counters"].items():
            self.println(f"  {name}: {value}")
        self.println("histograms:")
        for name, summary in snapshot["histograms"].items():
            if not summary["count"]:
                continue
            if name.endswith("_seconds"):
                self.println(
                    f"  {name}: n={summary['count']} "
                    f"mean={summary['mean'] * 1e3:.2f}ms "
                    f"p95={summary['p95'] * 1e3:.2f}ms "
                    f"max={summary['max'] * 1e3:.2f}ms"
                )
            else:
                self.println(
                    f"  {name}: n={summary['count']} "
                    f"mean={summary['mean']:.1f} max={summary['max']:.0f}"
                )
        plan_cache = snapshot["plan_cache"]
        self.println(
            f"plan cache: {plan_cache['hits']} hits, {plan_cache['misses']} "
            f"misses, {plan_cache['evictions']} evictions, "
            f"{plan_cache['size']}/{plan_cache['capacity']} entries"
        )
        page_cache = snapshot["page_cache"]
        self.println(
            f"page cache: {page_cache['hits']} hits, {page_cache['misses']} "
            f"misses, hit ratio {page_cache['hit_ratio']:.3f}"
        )
        memory = snapshot["memory"]
        budget = memory["budget_bytes"]
        usage = (
            "unbounded"
            if budget is None
            else f"{memory['in_use_bytes']}/{budget} bytes in use"
        )
        self.println(
            f"memory: {usage}, peak {memory['peak_bytes']} bytes, "
            f"{memory['spill_runs']} spill runs (:memory for detail)"
        )

    def _cmd_memory(self, argument: str) -> None:
        pool = self.db.memory_pool.snapshot()
        budget = pool["budget_bytes"]
        self.println(
            "memory pool: "
            + (
                "unbounded (accounting only)"
                if budget is None
                else f"budget {budget} bytes, "
                f"default grant {pool['default_grant_bytes']} bytes"
            )
        )
        self.println(
            f"  in use: {pool['in_use_bytes']} bytes "
            f"(granted {pool['granted_bytes']}, overage "
            f"{pool['overage_bytes']}), peak {pool['peak_bytes']}"
        )
        self.println(
            f"  queries tracked: {pool['queries_tracked']}, grants denied: "
            f"{pool['grants_denied']}, grant waits: {pool['grant_waits']}, "
            f"limit exceeded: {pool['limit_exceeded']}"
        )
        self.println(
            f"  spills: {pool['spill_runs']} runs, "
            f"{pool['spill_bytes']} bytes estimated"
        )
        manager = self.db.spill_manager
        self.println(
            f"  spill files: {manager.files_created} created, "
            f"{manager.bytes_written} bytes written, "
            f"{manager.files_swept} swept"
        )
        for name, nbytes in pool["caches"].items():
            self.println(f"  {name}: {nbytes} bytes")
        peaks = self.service.metrics_snapshot()["histograms"].get(
            "service.peak_memory_bytes"
        )
        if peaks and peaks["count"]:
            self.println(
                f"  per-query peaks: n={peaks['count']} "
                f"mean={peaks['mean']:.0f} max={peaks['max']:.0f} bytes"
            )

    def _cmd_checkpoint(self, argument: str) -> None:
        if self.db.durability is None:
            self.println("not a durable database (start with --data <dir>)")
            return
        self.db.checkpoint()
        status = self.db.durability.status()
        self.println(
            f"checkpoint {status['checkpoint_id']} written "
            f"({status['directory']}); log truncated"
        )

    def _cmd_save(self, argument: str) -> None:
        if not argument:
            self.println("usage: :save <directory>")
            return
        save_snapshot(self.db, argument)
        self.println(f"snapshot written to {argument}")

    def _cmd_load(self, argument: str) -> None:
        if not argument:
            self.println("usage: :load <directory>")
            return
        self.service.shutdown()
        self.db = load_snapshot(argument)
        self.service = QueryService(self.db, ServiceConfig(max_concurrency=2))
        self.println(f"snapshot loaded from {argument}")

    def _cmd_connect(self, argument: str) -> None:
        address, _, token = argument.partition(" ")
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            self.println("usage: :connect <host:port> [auth-token]")
            return
        if self.remote is not None:
            self.remote.close()
            self.remote = None
        try:
            self.remote = Client(
                host, int(port_text), auth_token=token.strip() or None
            )
        except (ReproError, OSError) as exc:
            self.println(f"error: {exc}")
            return
        self.println(
            f"connected to {self.remote.server_info or address} at {address} "
            f"(protocol v{self.remote.protocol_version}); "
            "queries now run remotely — :disconnect to return to local"
        )

    def _cmd_disconnect(self, argument: str) -> None:
        if self.remote is None:
            self.println("not connected")
            return
        self.remote.close()
        self.remote = None
        self.println("disconnected — queries run on the local database again")

    def _cmd_promote(self, argument: str) -> None:
        if self.remote is None:
            self.println(":promote acts on a remote replica — :connect first")
            return
        fields = self.remote.promote()
        self.println(
            f"promoted to {fields.get('role')} at epoch {fields.get('epoch')} "
            f"(divergence LSN {fields.get('promote_lsn')}, "
            f"applied LSN {fields.get('applied_lsn')})"
        )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="pathindex-repro: Cypher shell with path indexes",
    )
    parser.add_argument(
        "--data",
        help="durable database directory (write-ahead log + checkpoints); "
        "created on first use, recovered on re-open",
    )
    parser.add_argument(
        "--snapshot", help="snapshot directory to load (and save on :quit)"
    )
    parser.add_argument(
        "--execute", "-e", help="run one query, print its rows, and exit"
    )
    args = parser.parse_args(argv)
    if args.data and args.snapshot:
        parser.error("--data and --snapshot are mutually exclusive")
    if args.data:
        db = GraphDatabase.open(args.data)
    elif args.snapshot:
        try:
            db = load_snapshot(args.snapshot)
        except FileNotFoundError:
            db = GraphDatabase()
    else:
        db = GraphDatabase()
    shell = Shell(db)
    try:
        if args.execute:
            shell.execute(args.execute)
            return 0
        shell.run()
        if args.snapshot:
            save_snapshot(shell.db, args.snapshot)
        return 0
    finally:
        shell.close()
        shell.db.close()
