"""Interactive Cypher shell and one-shot CLI.

Usage::

    python -m repro                          # REPL on an empty database
    python -m repro --snapshot data/         # REPL on a saved snapshot
    python -m repro --execute "MATCH ..."    # one query, print rows, exit

Inside the REPL, statements end with ``;``. Meta-commands:

    :help                       this text
    :quit                       exit (a snapshot is saved if --snapshot set)
    :explain <on|off>           print the plan before each query
    :indexes                    list path indexes with cardinality and size
    :create-index <name> <pattern>   build a path index, e.g.
                                     :create-index k2 (:P)-[:K]->(:P)-[:K]->(:P)
    :drop-index <name>          remove a path index
    :stats                      node/relationship/index counts
    :save <dir> / :load <dir>   snapshot persistence
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional

from repro import GraphDatabase, ReproError
from repro.db.snapshot import load_snapshot, save_snapshot


class Shell:
    """A line-oriented Cypher REPL over one :class:`GraphDatabase`."""

    def __init__(
        self,
        db: Optional[GraphDatabase] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ) -> None:
        self.db = db if db is not None else GraphDatabase()
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self.explain = False
        self.running = True

    # ------------------------------------------------------------------

    def println(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def run(self) -> None:
        """Read statements until EOF or :quit."""
        buffer: list[str] = []
        self.println("pathindex-repro shell — :help for commands")
        for line in self.stdin:
            stripped = line.strip()
            if not buffer and stripped.startswith(":"):
                self.handle_command(stripped)
                if not self.running:
                    return
                continue
            buffer.append(line)
            if stripped.endswith(";"):
                statement = "".join(buffer).strip().rstrip(";")
                buffer.clear()
                if statement:
                    self.execute(statement)
        if buffer and "".join(buffer).strip():
            self.execute("".join(buffer).strip().rstrip(";"))

    # ------------------------------------------------------------------

    def execute(self, query: str) -> None:
        try:
            if self.explain:
                self.println(self.db.explain(query))
            result = self.db.execute(query)
            rows = result.to_list()
        except ReproError as exc:
            self.println(f"error: {exc}")
            return
        if result.columns:
            self.println(" | ".join(result.columns))
            for row in rows:
                self.println(
                    " | ".join(str(row.get(column)) for column in result.columns)
                )
        self.println(
            f"({result.count} row{'s' if result.count != 1 else ''}, "
            f"{result.time_to_last_result * 1e3:.2f} ms, "
            f"max intermediate {result.max_intermediate_cardinality})"
        )

    def handle_command(self, command_line: str) -> None:
        command, _, argument = command_line.partition(" ")
        argument = argument.strip()
        handler = {
            ":help": self._cmd_help,
            ":quit": self._cmd_quit,
            ":exit": self._cmd_quit,
            ":explain": self._cmd_explain,
            ":indexes": self._cmd_indexes,
            ":create-index": self._cmd_create_index,
            ":drop-index": self._cmd_drop_index,
            ":stats": self._cmd_stats,
            ":save": self._cmd_save,
            ":load": self._cmd_load,
        }.get(command)
        if handler is None:
            self.println(f"unknown command {command!r} — :help for commands")
            return
        try:
            handler(argument)
        except ReproError as exc:
            self.println(f"error: {exc}")

    # ------------------------------------------------------------------

    def _cmd_help(self, argument: str) -> None:
        self.println(__doc__.split("Meta-commands:")[-1].rstrip())

    def _cmd_quit(self, argument: str) -> None:
        self.running = False

    def _cmd_explain(self, argument: str) -> None:
        if argument not in ("on", "off"):
            self.println("usage: :explain <on|off>")
            return
        self.explain = argument == "on"
        self.println(f"explain {'enabled' if self.explain else 'disabled'}")

    def _cmd_indexes(self, argument: str) -> None:
        if len(self.db.indexes) == 0:
            self.println("no path indexes")
            return
        for index in self.db.indexes:
            self.println(
                f"{index.name}: {index.pattern} "
                f"({index.cardinality} entries, {index.size_on_disk()} bytes)"
            )

    def _cmd_create_index(self, argument: str) -> None:
        name, _, pattern = argument.partition(" ")
        if not name or not pattern.strip():
            self.println("usage: :create-index <name> <pattern>")
            return
        stats = self.db.create_path_index(name, pattern.strip())
        self.println(
            f"created {stats.index_name!r}: {stats.cardinality} entries in "
            f"{stats.seconds * 1e3:.1f} ms"
        )

    def _cmd_drop_index(self, argument: str) -> None:
        if not argument:
            self.println("usage: :drop-index <name>")
            return
        self.db.drop_path_index(argument)
        self.println(f"dropped {argument!r}")

    def _cmd_stats(self, argument: str) -> None:
        statistics = self.db.store.statistics
        self.println(
            f"nodes: {statistics.node_count}, "
            f"relationships: {statistics.relationship_count}, "
            f"path indexes: {len(self.db.indexes)}"
        )

    def _cmd_save(self, argument: str) -> None:
        if not argument:
            self.println("usage: :save <directory>")
            return
        save_snapshot(self.db, argument)
        self.println(f"snapshot written to {argument}")

    def _cmd_load(self, argument: str) -> None:
        if not argument:
            self.println("usage: :load <directory>")
            return
        self.db = load_snapshot(argument)
        self.println(f"snapshot loaded from {argument}")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="pathindex-repro: Cypher shell with path indexes",
    )
    parser.add_argument(
        "--snapshot", help="snapshot directory to load (and save on :quit)"
    )
    parser.add_argument(
        "--execute", "-e", help="run one query, print its rows, and exit"
    )
    args = parser.parse_args(argv)
    if args.snapshot:
        try:
            db = load_snapshot(args.snapshot)
        except FileNotFoundError:
            db = GraphDatabase()
    else:
        db = GraphDatabase()
    shell = Shell(db)
    if args.execute:
        shell.execute(args.execute)
        return 0
    shell.run()
    if args.snapshot:
        save_snapshot(shell.db, args.snapshot)
    return 0
