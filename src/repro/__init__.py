"""pathindex-repro: reproduction of *Path Indexing in the Cypher Query
Pipeline* (EDBT 2021).

A pure-Python embedded property-graph database with a Neo4j-3.5-style record
storage layer, a Cypher query subset, a cost-based IDP planner, and — the
paper's contribution — **path indexes** integrated into the pipeline: three
query operators (PathIndexScan, PathIndexFilteredScan, PathIndexPrefixSeek),
query-based index maintenance (Algorithm 1), and index initialization
(Algorithm 2).

Public API highlights:

* :class:`GraphDatabase` — open a database, ``execute`` Cypher, create and
  maintain path indexes, control the page cache for cold-run experiments.
* :class:`PathPattern` — parse/compose the patterns path indexes cover.
* :class:`PlannerHints` — the evaluation's forced-plan controls.
"""

from repro.db import GraphDatabase, IndexCreationStats, Result
from repro.durability import (
    DurabilityConfig,
    DurabilityEngine,
    FaultInjector,
    SimulatedCrashError,
)
from repro.errors import (
    AuthenticationError,
    ConstraintViolationError,
    CypherSemanticError,
    CypherSyntaxError,
    DurabilityError,
    MemoryLimitExceeded,
    PathIndexError,
    PatternSyntaxError,
    PlannerError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ReadOnlyReplicaError,
    ReplicationError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceShutdownError,
    StalenessError,
    StorageError,
    TransactionError,
)
from repro.pathindex import PathPattern
from repro.planner import PlannerHints
from repro.resources import MemoryPool, MemoryTracker
from repro.service import (
    CancellationToken,
    MetricsRegistry,
    QueryOutcome,
    QueryService,
    QueryStatus,
    QueryTicket,
    ServiceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "AuthenticationError",
    "CancellationToken",
    "ConstraintViolationError",
    "CypherSemanticError",
    "CypherSyntaxError",
    "DurabilityConfig",
    "DurabilityEngine",
    "DurabilityError",
    "FaultInjector",
    "GraphDatabase",
    "IndexCreationStats",
    "MemoryLimitExceeded",
    "MemoryPool",
    "MemoryTracker",
    "MetricsRegistry",
    "PathIndexError",
    "PathPattern",
    "PatternSyntaxError",
    "PlannerError",
    "PlannerHints",
    "ProtocolError",
    "QueryCancelledError",
    "QueryOutcome",
    "QueryService",
    "QueryStatus",
    "QueryTicket",
    "QueryTimeoutError",
    "ReadOnlyReplicaError",
    "ReplicationError",
    "ReproError",
    "Result",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceShutdownError",
    "SimulatedCrashError",
    "StalenessError",
    "StorageError",
    "TransactionError",
    "__version__",
]
