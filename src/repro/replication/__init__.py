"""Log-shipping replication: replicas tail the leader's WAL over the wire.

The durability engine's redo log is a replication stream for free — records
are self-delimiting, CRC-framed, carry their LSN, and replay is
deterministic and id-identical. This package adds the follower side:

* :class:`Replica` — owns a durable :class:`~repro.db.database.GraphDatabase`
  directory and a tailer thread that subscribes to the leader (SUBSCRIBE
  from its applied LSN), applies shipped records through the recovery
  replay path under the MVCC writer lock, publishes each batch via
  ``publish_commit(lsn)`` (snapshot reads stay lock-free and consistent
  mid-apply), fsyncs its own WAL before acknowledging (an ACKed LSN can
  never regress), and catches up from a shipped checkpoint when its start
  LSN was folded away.

The leader side (subscriber registry, segment iteration, checkpoint
shipping, backpressure) lives in :mod:`repro.server.server`; the read/write
routing front end in :mod:`repro.router`.

Controlled failover rides on the same stream: every subscription carries a
**leader epoch** (persisted next to the WAL as the ``EPOCH`` file), a
``PROMOTE`` admin frame flips a replica into the new leader after it
verifies its WAL tail and bumps the epoch, and lower-epoch traffic is
rejected everywhere — a revived old leader is fenced out instead of
forking history, then re-seeded as a replica of the new epoch.
"""

from repro.replication.replica import Replica, ReplicaConfig

__all__ = ["Replica", "ReplicaConfig"]
