"""The follower: tails the leader's WAL over the wire and applies it.

One :class:`Replica` owns a durable database directory and a daemon tailer
thread. The thread's life is a reconnect loop around one subscription:

1. connect, HELLO, then ``SUBSCRIBE {"from_lsn": <applied LSN>, "epoch":
   <persisted leader epoch>}`` — the leader answers with *its* epoch: a
   lower one means the replica is talking to a fenced old leader (raise
   and reconnect); a higher one is adopted and persisted before anything
   is applied;
2. if the leader answers ``mode="snapshot"`` (our LSN was folded into a
   checkpoint), receive the checkpoint files, install them as this
   directory's live pair (same atomic ``CURRENT`` dance as a local
   checkpoint), re-open the database and swap it into the serving layer
   via ``on_swap`` (the query service's :meth:`swap_database`);
3. stream ``WAL_SEGMENT`` frames: each record is applied through
   :meth:`DurabilityEngine.apply_replicated` — the recovery replay path,
   run under the store's exclusive writer lock, publishing via
   ``publish_commit(lsn)`` so concurrent snapshot reads stay lock-free and
   consistent mid-apply — appended verbatim to the replica's own WAL, then
   the batch is **fsynced before the WAL_ACK** (an acknowledged LSN can
   never regress across a replica crash);
4. on any error, reconnect with backoff and resubscribe from the applied
   LSN. Records the leader re-ships across a reconnect are skipped by
   ``apply_replicated``'s monotonic sequence check (idempotence).

``pause_apply``/``resume_apply`` freeze the loop between records — the
router tests use this to manufacture an arbitrarily lagged replica; the
leader's unacked-bytes window then exerts real backpressure.

Failover hooks: :meth:`stop_tailing` kills the tailer thread but leaves
the database open (promotion flips it writable in place); :meth:`repoint`
re-aims the reconnect loop at a new leader, severing the current stream —
the resubscribe lands on the new leader's epoch handshake, and a replica
whose history diverged above the new leader's promote LSN is re-seeded
from a shipped checkpoint (the divergent tail is discarded wholesale).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro import wire
from repro.db.database import GraphDatabase
from repro.durability.engine import DurabilityEngine
from repro.durability.faults import FaultInjector, SimulatedCrashError
from repro.errors import ProtocolError, ReplicationError, ReproError


@dataclass(frozen=True)
class ReplicaConfig:
    """Tuning knobs for a :class:`Replica` tailer."""

    reconnect_backoff_s: float = 0.05
    """First reconnect delay; doubles per failure up to the max."""

    reconnect_backoff_max_s: float = 2.0

    io_timeout_s: float = 30.0
    """Socket timeout while waiting for leader frames. The leader
    heartbeats every ``heartbeat_s`` (default 1s), so a healthy link never
    gets near this."""

    auth_token: Optional[str] = None
    """Leader's auth token, when it requires one."""


def _epoch_field(fields: dict, key: str) -> int:
    """A non-negative int epoch/LSN field, or 0 when absent/malformed
    (pre-epoch peers simply don't send one)."""
    value = fields.get(key)
    if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
        return value
    return 0


def parse_address(address: Union[str, tuple[str, int]]) -> tuple[str, int]:
    """``"host:port"`` (or a ready tuple) → ``(host, port)``."""
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {address!r}")
    return host, int(port)


class Replica:
    """A read-only follower of one leader, applying its shipped WAL."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        leader: Union[str, tuple[str, int]],
        config: Optional[ReplicaConfig] = None,
        injector: Optional[FaultInjector] = None,
        on_swap: Optional[Callable[[GraphDatabase], None]] = None,
        metrics=None,
        **open_kwargs,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.leader = parse_address(leader)
        self.leader_name = f"{self.leader[0]}:{self.leader[1]}"
        self.config = config or ReplicaConfig()
        self.injector = injector if injector is not None else FaultInjector()
        self._on_swap = on_swap
        self._metrics = metrics
        self._open_kwargs = dict(open_kwargs)
        self.db = GraphDatabase.open(
            self.data_dir, fault_injector=self.injector, **self._open_kwargs
        )
        self._cond = threading.Condition()
        self._applied = self.db.durability.applied_lsn()
        self._leader_durable = 0
        self._connected = False
        self._reconnects = 0
        self._snapshots_installed = 0
        self._records_applied = 0
        self._last_error: Optional[str] = None
        self.crashed = False
        self._stop = threading.Event()
        self._resume = threading.Event()
        self._resume.set()
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, on_swap=None, metrics=None) -> "Replica":
        """Late-bind the swap callback and metrics registry. The serving
        stack is built around ``replica.db``, so the query service (whose
        ``swap_database`` we call after a snapshot install) only exists
        after the replica does."""
        if on_swap is not None:
            self._on_swap = on_swap
        if metrics is not None:
            self._metrics = metrics
        return self

    def start(self) -> "Replica":
        if self._thread is not None:
            raise RuntimeError("replica already started")
        self._thread = threading.Thread(
            target=self._tail_loop, name="repro-replica-tailer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop tailing and close the database (idempotent)."""
        self.stop_tailing()
        if not self.crashed:
            self.db.close()

    def stop_tailing(self) -> None:
        """Stop the tailer thread but keep the database open.

        The promotion path: the server flips the still-open database to
        writable, so only the subscription must die. Idempotent; safe to
        call from any thread except the tailer itself."""
        self._stop.set()
        self._resume.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        thread = self._thread
        if (
            thread is not None
            and thread.is_alive()
            and thread is not threading.current_thread()
        ):
            thread.join(timeout=30)

    def repoint(self, leader: Union[str, tuple[str, int]]) -> None:
        """Re-aim the tailer at a new leader (surviving-replica path).

        Severs the current stream; the reconnect loop resubscribes to the
        new address from the applied LSN. If this replica's history runs
        past the new leader's divergence point, the subscribe handshake
        re-seeds it from a shipped checkpoint."""
        self.leader = parse_address(leader)
        self.leader_name = f"{self.leader[0]}:{self.leader[1]}"
        self._count("replication.repoints")
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Replica":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection / test hooks
    # ------------------------------------------------------------------

    @property
    def applied_lsn(self) -> int:
        with self._cond:
            return self._applied

    @property
    def connected(self) -> bool:
        return self._connected

    def status_fields(self) -> dict:
        with self._cond:
            applied = self._applied
            durable = self._leader_durable
        return {
            "replica_connected": self._connected,
            "replica_applied_lsn": applied,
            "replica_lag_lsn": max(0, durable - applied),
            "replica_reconnects": self._reconnects,
            "replica_snapshots_installed": self._snapshots_installed,
            "replica_epoch": self.db.durability.epoch,
            "leader_durable_lsn": durable,
            "leader": self.leader_name,
        }

    def wait_for_lsn(self, lsn: int, timeout_s: float = 30.0) -> bool:
        """Block until this replica has applied/published ``lsn``.

        Returns True on success; raises :class:`ReplicationError` naming
        the last connection failure on timeout, crash, or stop — a bare
        False was too easy for callers to ignore."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self._applied < lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self.crashed or self._stop.is_set():
                    break
                self._cond.wait(remaining)
            if self._applied >= lsn:
                return True
            applied = self._applied
        if self.crashed:
            reason = "replica crashed"
        elif self._stop.is_set():
            reason = "replica stopped"
        else:
            reason = f"timed out after {timeout_s:.1f}s"
        raise ReplicationError(
            f"replica did not apply LSN {lsn} ({reason}; applied "
            f"{applied}, connected={self._connected}"
            f"{self._last_error_suffix()})"
        )

    def wait_connected(self, timeout_s: float = 30.0) -> bool:
        """Block until the subscription stream is up.

        Returns True on success; raises :class:`ReplicationError` naming
        the last connection failure on timeout, crash, or stop."""
        deadline = time.monotonic() + timeout_s
        while not self._connected:
            if time.monotonic() >= deadline or self._stop.is_set() or self.crashed:
                if self.crashed:
                    reason = "replica crashed"
                elif self._stop.is_set():
                    reason = "replica stopped"
                else:
                    reason = f"timed out after {timeout_s:.1f}s"
                raise ReplicationError(
                    f"replica failed to connect to leader "
                    f"{self.leader_name} ({reason}"
                    f"{self._last_error_suffix()})"
                )
            time.sleep(0.005)
        return True

    def _last_error_suffix(self) -> str:
        return f"; last error: {self._last_error}" if self._last_error else ""

    def pause_apply(self) -> None:
        """Test hook: freeze the apply loop before its next record. The
        leader keeps shipping until its unacked window fills — this is how
        the router tests manufacture a lagged replica."""
        self._resume.clear()

    def resume_apply(self) -> None:
        self._resume.set()

    # ------------------------------------------------------------------
    # Tailer
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    def _tail_loop(self) -> None:
        backoff = self.config.reconnect_backoff_s
        first_attempt = True
        while not self._stop.is_set():
            if not first_attempt:
                self._reconnects += 1
                self._count("replication.reconnects")
                if self._stop.wait(backoff):
                    return
                backoff = min(backoff * 2, self.config.reconnect_backoff_max_s)
            first_attempt = False
            try:
                self._tail_once()
                backoff = self.config.reconnect_backoff_s
            except SimulatedCrashError:
                # The fault injector killed this replica "process": stop
                # doing I/O entirely; the test re-opens the directory.
                self.crashed = True
                self._connected = False
                with self._cond:
                    self._cond.notify_all()
                return
            except (ReproError, OSError, ValueError) as exc:
                self._last_error = f"{type(exc).__name__}: {exc}"
                self._connected = False

    def _tail_once(self) -> None:
        sock = socket.create_connection(
            self.leader, timeout=self.config.io_timeout_s
        )
        self._sock = sock
        reader = wire.FrameReader()
        try:
            sock.settimeout(self.config.io_timeout_s)
            hello: dict = {"versions": [wire.PROTOCOL_VERSION], "client": "repro-replica"}
            if self.config.auth_token is not None:
                hello["auth"] = {"token": self.config.auth_token}
            self._send(sock, wire.MSG_HELLO, hello)
            self._expect_success(self._recv(sock, reader))
            # Kill-point for the failover matrix: a surviving replica
            # dying just before it resubscribes to the (new) leader.
            self.injector.reach("promote.before_resubscribe")
            self._send(
                sock,
                wire.MSG_SUBSCRIBE,
                {"from_lsn": self.applied_lsn, "epoch": self.db.durability.epoch},
            )
            fields = self._expect_success(self._recv(sock, reader))
            leader_epoch = _epoch_field(fields, "epoch")
            if leader_epoch and leader_epoch < self.db.durability.epoch:
                # Fenced old leader: refuse its history and reconnect
                # (the operator re-points us at the promoted node).
                self._count("replication.stale_leaders")
                raise ReplicationError(
                    f"leader {self.leader_name} is at stale epoch "
                    f"{leader_epoch}; this replica has seen epoch "
                    f"{self.db.durability.epoch}"
                )
            if fields.get("mode") == "snapshot":
                self._receive_snapshot(sock, reader)
            if leader_epoch:
                self.db.durability.adopt_epoch(
                    leader_epoch, _epoch_field(fields, "promote_lsn")
                )
            self._connected = True
            while not self._stop.is_set():
                tag, fields = self._recv(sock, reader)
                if tag == wire.MSG_WAL_SEGMENT:
                    self._apply_segment(sock, fields)
                elif tag == wire.MSG_FAILURE:
                    wire.raise_failure(fields)
                else:
                    raise ProtocolError(
                        f"unexpected {wire.MESSAGE_NAMES[tag]} frame on the "
                        "subscription stream"
                    )
        finally:
            self._connected = False
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    # -- frame I/O ------------------------------------------------------

    @staticmethod
    def _send(sock: socket.socket, tag: int, fields: dict) -> None:
        sock.sendall(wire.encode_frame(tag, fields))

    @staticmethod
    def _recv(sock: socket.socket, reader: wire.FrameReader) -> tuple[int, dict]:
        while True:
            frame = reader.pop()
            if frame is not None:
                return frame
            data = sock.recv(1 << 16)
            if not data:
                reader.close()  # raises if mid-frame (torn stream)
                raise ProtocolError("leader closed the connection")
            reader.feed(data)

    @staticmethod
    def _expect_success(frame: tuple[int, dict]) -> dict:
        tag, fields = frame
        if tag == wire.MSG_FAILURE:
            wire.raise_failure(fields)
        if tag != wire.MSG_SUCCESS:
            raise ProtocolError(
                f"expected SUCCESS, got {wire.MESSAGE_NAMES[tag]}"
            )
        return fields

    # -- snapshot catch-up ---------------------------------------------

    def _receive_snapshot(self, sock: socket.socket, reader: wire.FrameReader) -> None:
        """Receive checkpoint files, install them, swap the database."""
        files: dict[str, bytearray] = {}
        while True:
            tag, fields = self._recv(sock, reader)
            if tag == wire.MSG_SNAPSHOT_FILE:
                name = fields.get("name")
                data = fields.get("data")
                if not isinstance(name, str) or not isinstance(data, bytes):
                    raise ProtocolError("malformed SNAPSHOT_FILE frame")
                files.setdefault(name, bytearray()).extend(data)
            elif tag == wire.MSG_SUCCESS and fields.get("snapshot_complete"):
                break
            elif tag == wire.MSG_FAILURE:
                wire.raise_failure(fields)
            else:
                raise ProtocolError(
                    f"unexpected {wire.MESSAGE_NAMES[tag]} during snapshot "
                    "catch-up"
                )
        if "metadata.json" not in files:
            raise ReplicationError("shipped checkpoint is missing metadata.json")
        old_db = self.db
        old_db.durability.close()
        DurabilityEngine.install_checkpoint(
            self.data_dir, {name: bytes(data) for name, data in files.items()}
        )
        new_db = GraphDatabase.open(
            self.data_dir, fault_injector=self.injector, **self._open_kwargs
        )
        with self._cond:
            self.db = new_db
            self._applied = new_db.durability.applied_lsn()
            self._snapshots_installed += 1
            self._cond.notify_all()
        if self._on_swap is not None:
            self._on_swap(new_db)
        old_db.close()
        self._count("replication.snapshots_installed")

    # -- record application --------------------------------------------

    def _apply_segment(self, sock: socket.socket, fields: dict) -> None:
        records = fields.get("records")
        if records is None:
            records = []
        if not isinstance(records, list):
            raise ProtocolError("WAL_SEGMENT records must be a list")
        durable = fields.get("durable_lsn")
        if isinstance(durable, int) and not isinstance(durable, bool):
            with self._cond:
                self._leader_durable = max(self._leader_durable, durable)
        engine = self.db.durability
        segment_epoch = _epoch_field(fields, "epoch")
        if segment_epoch and segment_epoch < engine.epoch:
            # Lower-epoch traffic is fenced out: a revived old leader
            # must never make this replica diverge.
            self._count("replication.segments_fenced")
            raise ReplicationError(
                f"rejecting WAL segment stamped with stale epoch "
                f"{segment_epoch} (fence is at epoch {engine.epoch})"
            )
        applied_any = False
        for index, payload in enumerate(records):
            if not isinstance(payload, bytes):
                raise ProtocolError("WAL_SEGMENT records must be bytes")
            while not self._resume.is_set():
                if self._stop.is_set():
                    return
                self._resume.wait(0.05)
            if self._stop.is_set():
                return
            if index:
                # Crash-between-records kill-point (the batch's first
                # record is already applied and logged when this fires).
                engine.injector.reach("replica.apply.mid_batch")
            if engine.apply_replicated(payload) is not None:
                applied_any = True
                self._records_applied += 1
                self._count("replication.records_applied")
        if applied_any:
            # Fsync before acknowledging: the ACKed LSN must survive a
            # replica crash, or the leader could trim/forget records this
            # replica still needs.
            engine.sync(engine.applied_lsn())
        with self._cond:
            self._applied = max(self._applied, engine.applied_lsn())
            applied = self._applied
            self._cond.notify_all()
        self._send(sock, wire.MSG_WAL_ACK, {"applied_lsn": applied})
        if applied_any:
            engine.maybe_checkpoint()
