"""Independence-assumption cardinality estimator.

This is deliberately the estimator the paper inherited unchanged (§4.1): it
"assumes that all filtering and combining operations behave according to the
global statistics of the data". Correlated data violates the assumption,
which is why baseline plans on the correlated and YAGO workloads are poor —
a key observation of the evaluation.

Model (per Neo4j 3.5's assumption-of-independence estimator):

* a pattern node with labels ``L1..Lm`` has cardinality
  ``N × Π (|Li| / N)``;
* a pattern relationship contributes a selectivity
  ``est(L_start, T, L_end) / (|start| × |end|)`` where
  ``est = min(count(:L_start-[:T]->), count(-[:T]->:L_end))``;
* predicate selectivities use fixed defaults (equality 0.1, inequality 0.9,
  range 0.3, label predicate |L|/N).

Estimates are a function of the *solved sub-pattern*, so plans solving the
same part of the query graph always get the same cardinality — a requirement
of the dynamic-programming comparison.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cypher import ast
from repro.querygraph import QueryGraph, QueryRelationship
from repro.storage.statistics import GraphStatistics
from repro.storage.stores import TokenStore

DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
MIN_CARDINALITY = 1.0


class CardinalityEstimator:
    """Estimates sub-pattern cardinalities from graph statistics."""

    def __init__(
        self,
        statistics: GraphStatistics,
        label_tokens: TokenStore,
        type_tokens: TokenStore,
    ) -> None:
        self._stats = statistics
        self._labels = label_tokens
        self._types = type_tokens

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def all_nodes(self) -> float:
        return float(self._stats.node_count)

    def node_cardinality(self, labels: Iterable[str]) -> float:
        """``N × Π |label|/N`` — labels assumed independent."""
        total = float(self._stats.node_count)
        if total <= 0:
            return 0.0
        estimate = total
        for label in labels:
            estimate *= self._label_count(label) / total
        return estimate

    def label_selectivity(self, label: str) -> float:
        total = float(self._stats.node_count)
        if total <= 0:
            return 0.0
        return self._label_count(label) / total

    def relationship_count_estimate(
        self,
        start_labels: frozenset[str],
        types: frozenset[str],
        end_labels: frozenset[str],
    ) -> float:
        """Estimated count of ``(:S)-[:T]->(:E)`` relationships.

        With both endpoint labels known only through per-side statistics, the
        estimator takes the minimum of the per-side counts (Neo4j 3.5's
        behaviour); multiple labels multiply as independent selectivities.
        """
        type_list: list[Optional[str]] = (
            [None] if not types else sorted(types)  # untyped: all types
        )
        total = 0.0
        for type_name in type_list:
            type_id = self._types.id_of(type_name) if type_name else None
            if type_name is not None and type_id is None:
                continue  # unknown type: zero relationships
            base = float(self._stats.rels_with_type(type_id))
            if base <= 0:
                continue
            candidates = [base]
            start_list = sorted(start_labels)
            end_list = sorted(end_labels)
            if start_list:
                first, *rest = start_list
                start_estimate = self._from_start(first, type_id)
                for label in rest:
                    start_estimate *= self.label_selectivity(label)
                candidates.append(start_estimate)
            if end_list:
                first, *rest = end_list
                end_estimate = self._from_end(type_id, first)
                for label in rest:
                    end_estimate *= self.label_selectivity(label)
                candidates.append(end_estimate)
            total += min(candidates)
        return total

    # ------------------------------------------------------------------
    # Pattern estimation
    # ------------------------------------------------------------------

    def pattern_cardinality(
        self,
        query_graph: QueryGraph,
        rel_names: frozenset[str],
        node_names: frozenset[str],
        selections: Iterable[ast.Expression] = (),
    ) -> float:
        """Estimate the cardinality of the sub-pattern covering the given
        relationships and nodes, with ``selections`` applied on top."""
        estimate = 1.0
        for name in sorted(node_names):
            node = query_graph.nodes.get(name)
            if node is None:
                continue  # argument variable: cardinality contributed upstream
            estimate *= self.node_cardinality(node.labels)
        for name in sorted(rel_names):
            rel = query_graph.relationships[name]
            estimate *= self.relationship_selectivity(query_graph, rel)
        for selection in selections:
            estimate *= self.predicate_selectivity(selection)
        return max(estimate, 0.0)

    def relationship_selectivity(
        self, query_graph: QueryGraph, rel: QueryRelationship
    ) -> float:
        """Probability that a random (start, end) node pair is connected."""
        start_labels = self._labels_of(query_graph, rel.start)
        end_labels = self._labels_of(query_graph, rel.end)
        start_card = self.node_cardinality(start_labels)
        end_card = self.node_cardinality(end_labels)
        denominator = start_card * end_card
        if denominator <= 0:
            return 0.0
        count = self.relationship_count_estimate(start_labels, rel.types, end_labels)
        if not rel.directed:
            count += self.relationship_count_estimate(
                end_labels, rel.types, start_labels
            )
        return min(count / denominator, 1.0)

    def predicate_selectivity(self, expression: ast.Expression) -> float:
        """Fixed default selectivities for WHERE predicates."""
        if isinstance(expression, ast.HasLabel):
            return self.label_selectivity(expression.label)
        if isinstance(expression, ast.Comparison):
            if expression.op is ast.ComparisonOp.EQ:
                return DEFAULT_EQUALITY_SELECTIVITY
            if expression.op is ast.ComparisonOp.NEQ:
                return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(expression, ast.Not):
            return 1.0 - self.predicate_selectivity(expression.operand)
        if isinstance(expression, ast.BooleanOp):
            left = self.predicate_selectivity(expression.left)
            right = self.predicate_selectivity(expression.right)
            if expression.op == "AND":
                return left * right
            if expression.op == "OR":
                return min(1.0, left + right - left * right)
            return min(1.0, left + right)  # XOR
        return 1.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _labels_of(query_graph: QueryGraph, node_name: str) -> frozenset[str]:
        node = query_graph.nodes.get(node_name)
        return node.labels if node is not None else frozenset()

    def _label_count(self, label: str) -> float:
        label_id = self._labels.id_of(label)
        if label_id is None:
            return 0.0
        return float(self._stats.nodes_with_label(label_id))

    def _from_start(self, label: str, type_id: Optional[int]) -> float:
        label_id = self._labels.id_of(label)
        if label_id is None:
            return 0.0
        return float(self._stats.rels_with_start_label_and_type(label_id, type_id))

    def _from_end(self, type_id: Optional[int], label: str) -> float:
        label_id = self._labels.id_of(label)
        if label_id is None:
            return 0.0
        return float(self._stats.rels_with_type_and_end_label(type_id, label_id))
