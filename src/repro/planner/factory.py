"""Plan factory: constructs plan nodes with consistent estimates.

All cardinalities are a function of the solved sub-pattern (relationships +
bound pattern nodes + applied selections), so any two plans solving the same
part of the query graph are directly cost-comparable — the invariant the
dynamic-programming solver relies on (§2.2.2). After building any plan the
factory eagerly wraps a Filter for every selection whose variables just
became available (predicate push-down).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cypher import ast
from repro.pathindex.pattern import PathPattern
from repro.planner.cardinality import CardinalityEstimator
from repro.planner.cost import CostModel
from repro.planner.index_match import IndexMatch
from repro.planner.plans import (
    LogicalPlan,
    PlanAllNodesScan,
    PlanArgument,
    PlanCartesianProduct,
    PlanDistinct,
    PlanExpand,
    PlanFilter,
    PlanLimit,
    PlanNodeByLabelScan,
    PlanNodeHashJoin,
    PlanPathIndexFilteredScan,
    PlanPathIndexPrefixSeek,
    PlanPathIndexScan,
    PlanProjection,
    PlanRelationshipByTypeScan,
    PlanSort,
    _combine_indexes,
)
from repro.querygraph import QueryGraph, QueryRelationship
from repro.storage.graphstore import Direction


class PlanFactory:
    """Builds plan nodes for one query graph."""

    def __init__(
        self,
        query_graph: QueryGraph,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        index_store=None,
        use_index_cardinality: bool = False,
    ) -> None:
        self.query_graph = query_graph
        self.estimator = estimator
        self.cost = cost_model
        self.index_store = index_store
        self.use_index_cardinality = use_index_cardinality
        self.selections: list[ast.Expression] = list(query_graph.selections)
        self.arguments = frozenset(query_graph.arguments)

    # ------------------------------------------------------------------
    # Estimation helpers
    # ------------------------------------------------------------------

    def _pattern_nodes(self, available: frozenset[str]) -> frozenset[str]:
        # Argument nodes are already bound by the previous part (or a
        # maintenance anchor): they contribute one row, not their label count.
        return (frozenset(available) & frozenset(self.query_graph.nodes)) - self.arguments

    def _estimate(
        self, available: frozenset[str], solved_rels: frozenset[str], applied: frozenset[int]
    ) -> float:
        exprs = [self.selections[i] for i in sorted(applied)]
        return self.estimator.pattern_cardinality(
            self.query_graph,
            solved_rels,
            self._pattern_nodes(available),
            exprs,
        )

    def _derived_cardinality(
        self,
        child: LogicalPlan,
        available: frozenset[str],
        solved_rels: frozenset[str],
        applied: frozenset[int],
    ) -> float:
        """Output cardinality for an operator extending ``child``.

        Default: the plan-independent pattern estimate (the paper's model,
        required for DP comparability). With ``use_index_cardinality`` (§9
        extension) the estimate becomes *incremental*: the child's (possibly
        exact, index-derived) cardinality scaled by the estimator's relative
        change, so exact index counts propagate up the plan.
        """
        estimate = self._estimate(available, solved_rels, applied)
        if not self.use_index_cardinality:
            return estimate
        child_estimate = self._estimate(
            child.available, child.solved_rels, child.applied_selections
        )
        if child_estimate <= 0:
            return estimate
        return child.cardinality * (estimate / child_estimate)

    def ready_selections(
        self, available: frozenset[str], applied: frozenset[int]
    ) -> list[int]:
        """Indices of unapplied selections whose variables are available."""
        usable = set(available) | set(self.arguments)
        ready = []
        for position, selection in enumerate(self.selections):
            if position in applied:
                continue
            if selection.variables() <= usable:
                ready.append(position)
        return ready

    def with_filters(self, plan: LogicalPlan) -> LogicalPlan:
        """Wrap ``plan`` in a Filter for every newly-ready selection."""
        ready = self.ready_selections(plan.available, plan.applied_selections)
        if not ready:
            return plan
        predicates = tuple(self.selections[i] for i in ready)
        applied = plan.applied_selections | frozenset(ready)
        cardinality = self._derived_cardinality(
            plan, plan.available, plan.solved_rels, applied
        )
        return PlanFilter(
            children=(plan,),
            available=plan.available,
            solved_rels=plan.solved_rels,
            applied_selections=applied,
            cardinality=cardinality,
            cost=self.cost.filter(plan.cost, plan.cardinality, len(predicates)),
            indexes_used=plan.indexes_used,
            predicates=predicates,
        )

    # ------------------------------------------------------------------
    # Leaf plans
    # ------------------------------------------------------------------

    def argument(self) -> LogicalPlan:
        variables = tuple(sorted(self.arguments))
        # A pattern relationship bound by the previous part (or a maintenance
        # anchor) is already solved: the runtime will not re-traverse it.
        solved = frozenset(
            name for name in self.query_graph.relationships if name in self.arguments
        )
        return PlanArgument(
            children=(),
            available=self.arguments,
            solved_rels=solved,
            applied_selections=frozenset(),
            cardinality=1.0,
            cost=0.0,
            indexes_used=frozenset(),
            variables=variables,
        )

    def node_leaf(self, node_name: str) -> LogicalPlan:
        """Cheapest scan producing ``node_name`` (label scan if labelled)."""
        node = self.query_graph.nodes[node_name]
        available = frozenset({node_name}) | self.arguments
        cardinality = self.estimator.node_cardinality(node.labels)
        if node.labels:
            # Scan the most selective label, check the rest while scanning.
            best_label = min(
                node.labels, key=lambda lbl: self.estimator.label_selectivity(lbl)
            )
            rest = tuple(
                (node_name, label) for label in sorted(node.labels - {best_label})
            )
            plan: LogicalPlan = PlanNodeByLabelScan(
                children=(),
                available=available,
                solved_rels=frozenset(),
                applied_selections=frozenset(),
                cardinality=cardinality,
                cost=self.cost.node_by_label_scan(
                    self.estimator.node_cardinality([best_label])
                ),
                indexes_used=frozenset(),
                node=node_name,
                label=best_label,
                post_labels=rest,
            )
        else:
            plan = PlanAllNodesScan(
                children=(),
                available=available,
                solved_rels=frozenset(),
                applied_selections=frozenset(),
                cardinality=cardinality,
                cost=self.cost.all_nodes_scan(self.estimator.all_nodes()),
                indexes_used=frozenset(),
                node=node_name,
            )
        return self.with_filters(plan)

    def relationship_by_type_scan(
        self, rel: QueryRelationship, type_name: str, index_name: str
    ) -> LogicalPlan:
        available = frozenset({rel.name, rel.start, rel.end}) | self.arguments
        solved = frozenset({rel.name})
        cardinality = self._estimate(available, solved, frozenset())
        post_labels = tuple(
            (node_name, label)
            for node_name in dict.fromkeys((rel.start, rel.end))
            for label in sorted(self.query_graph.nodes[node_name].labels)
        )
        scan_rows = self.estimator.relationship_count_estimate(
            frozenset(), frozenset({type_name}), frozenset()
        )
        plan = PlanRelationshipByTypeScan(
            children=(),
            available=available,
            solved_rels=solved,
            applied_selections=frozenset(),
            cardinality=cardinality,
            cost=self.cost.relationship_by_type_scan(scan_rows),
            indexes_used=frozenset({index_name}),
            rel=rel.name,
            rel_type=type_name,
            start_node=rel.start,
            end_node=rel.end,
            index_name=index_name,
            post_labels=post_labels,
            directed=rel.directed,
        )
        return self.with_filters(plan)

    # ------------------------------------------------------------------
    # Solver-step plans
    # ------------------------------------------------------------------

    def expand(self, child: LogicalPlan, rel: QueryRelationship) -> Optional[LogicalPlan]:
        """ExpandAll/ExpandInto over ``rel`` from a plan binding ≥1 endpoint."""
        start_bound = rel.start in child.available
        end_bound = rel.end in child.available
        if not start_bound and not end_bound:
            return None
        if rel.name in child.solved_rels:
            return None
        into = start_bound and end_bound
        if into:
            from_node, to_node = rel.start, rel.end
            direction = Direction.OUTGOING if rel.directed else Direction.BOTH
        elif start_bound:
            from_node, to_node = rel.start, rel.end
            direction = Direction.OUTGOING if rel.directed else Direction.BOTH
        else:
            from_node, to_node = rel.end, rel.start
            direction = Direction.INCOMING if rel.directed else Direction.BOTH
        available = child.available | {rel.name, to_node}
        solved = child.solved_rels | {rel.name}
        cardinality = self._derived_cardinality(
            child, available, solved, child.applied_selections
        )
        post_labels = tuple(
            (to_node, label)
            for label in sorted(self.query_graph.nodes[to_node].labels)
        )
        cost_fn = self.cost.expand_into if into else self.cost.expand_all
        plan = PlanExpand(
            children=(child,),
            available=available,
            solved_rels=solved,
            applied_selections=child.applied_selections,
            cardinality=cardinality,
            cost=cost_fn(child.cost, child.cardinality, cardinality),
            indexes_used=child.indexes_used,
            rel=rel.name,
            from_node=from_node,
            to_node=to_node,
            direction=direction,
            types=rel.types,
            into=into,
            post_labels=post_labels,
        )
        return self.with_filters(plan)

    def node_hash_join(
        self, left: LogicalPlan, right: LogicalPlan
    ) -> Optional[LogicalPlan]:
        if left.solved_rels & right.solved_rels:
            return None
        join_nodes = tuple(
            sorted(
                (left.available & right.available & frozenset(self.query_graph.nodes))
            )
        )
        if not join_nodes:
            return None
        available = left.available | right.available
        solved = left.solved_rels | right.solved_rels
        applied = left.applied_selections | right.applied_selections
        cardinality = self._estimate(available, solved, applied)
        if self.use_index_cardinality:
            # Scale by both children's correction factors.
            left_est = self._estimate(
                left.available, left.solved_rels, left.applied_selections
            )
            right_est = self._estimate(
                right.available, right.solved_rels, right.applied_selections
            )
            if left_est > 0 and right_est > 0:
                cardinality *= (left.cardinality / left_est) * (
                    right.cardinality / right_est
                )
        plan = PlanNodeHashJoin(
            children=(left, right),
            available=available,
            solved_rels=solved,
            applied_selections=applied,
            cardinality=cardinality,
            cost=self.cost.node_hash_join(
                left.cost,
                left.cardinality,
                right.cost,
                right.cardinality,
                cardinality,
            ),
            indexes_used=_combine_indexes((left, right)),
            join_nodes=join_nodes,
        )
        return self.with_filters(plan)

    def cartesian_product(self, left: LogicalPlan, right: LogicalPlan) -> LogicalPlan:
        available = left.available | right.available
        solved = left.solved_rels | right.solved_rels
        applied = left.applied_selections | right.applied_selections
        cardinality = self._estimate(available, solved, applied)
        if self.use_index_cardinality:
            left_est = self._estimate(
                left.available, left.solved_rels, left.applied_selections
            )
            right_est = self._estimate(
                right.available, right.solved_rels, right.applied_selections
            )
            if left_est > 0 and right_est > 0:
                cardinality *= (left.cardinality / left_est) * (
                    right.cardinality / right_est
                )
        plan = PlanCartesianProduct(
            children=(left, right),
            available=available,
            solved_rels=solved,
            applied_selections=applied,
            cardinality=cardinality,
            cost=self.cost.cartesian_product(left.cost, left.cardinality, right.cost),
            indexes_used=_combine_indexes((left, right)),
        )
        return self.with_filters(plan)

    # ------------------------------------------------------------------
    # Path index plans (§5.1)
    # ------------------------------------------------------------------

    def path_index_scan(self, match: IndexMatch) -> LogicalPlan:
        """PathIndexScan, or PathIndexFilteredScan when residual pattern
        checks or ready selections exist (§5.1.1–5.1.2)."""
        available = frozenset(match.entry_vars) | self.arguments
        solved = match.rel_names
        stored = match.pattern.key_width
        base_cardinality = self._estimate(available, solved, frozenset())
        if self.use_index_cardinality and self.index_store is not None:
            # §9 extension: the index knows exactly how many occurrences it
            # stores; residual filters keep their estimated selectivities.
            exact = float(self.index_store.get(match.index_name).cardinality)
            for var, label in match.label_filters:
                exact *= self.estimator.label_selectivity(label)
            base_cardinality = exact
        ready = self.ready_selections(available, frozenset())
        if not ready and not match.has_residual_filters:
            return PlanPathIndexScan(
                children=(),
                available=available,
                solved_rels=solved,
                applied_selections=frozenset(),
                cardinality=base_cardinality,
                cost=self.cost.path_index_scan(base_cardinality, stored),
                indexes_used=frozenset({match.index_name}),
                index_name=match.index_name,
                entry_vars=match.entry_vars,
            )
        applied = frozenset(ready)
        cardinality = self._estimate(available, solved, applied)
        if self.use_index_cardinality:
            selectivity = 1.0
            for position in ready:
                selectivity *= self.estimator.predicate_selectivity(
                    self.selections[position]
                )
            cardinality = base_cardinality * selectivity
        predicates = tuple(self.selections[i] for i in sorted(ready))
        return PlanPathIndexFilteredScan(
            children=(),
            available=available,
            solved_rels=solved,
            applied_selections=applied,
            cardinality=cardinality,
            cost=self.cost.path_index_filtered_scan(cardinality, stored),
            indexes_used=frozenset({match.index_name}),
            index_name=match.index_name,
            entry_vars=match.entry_vars,
            predicates=predicates,
            label_filters=match.label_filters,
            type_filters=match.type_filters,
        )

    def path_index_prefix_seek(
        self, child: LogicalPlan, match: IndexMatch
    ) -> Optional[LogicalPlan]:
        """PathIndexPrefixSeek: child rows bind a leading prefix of the index
        pattern; the seek extends them with the indexed continuation
        (§5.1.3)."""
        new_rels = match.rel_names - child.solved_rels
        if not new_rels:
            return None
        prefix_length = 0
        for var in match.entry_vars:
            if var in child.available:
                prefix_length += 1
            else:
                break
        if prefix_length == 0:
            return None
        # Relationships of the index not in the prefix must be new; already-
        # solved rels beyond the prefix would make entries redundant with
        # cheaper consistency checks, which ExpandInto handles better.
        prefix_rels = set(match.entry_vars[1:prefix_length:2])
        if (match.rel_names & child.solved_rels) - prefix_rels:
            return None
        available = child.available | frozenset(match.entry_vars)
        solved = child.solved_rels | match.rel_names
        cardinality = self._derived_cardinality(
            child, available, solved, child.applied_selections
        )
        child_symbols = 2 * len(child.solved_rels) + len(
            self._pattern_nodes(child.available)
        )
        plan = PlanPathIndexPrefixSeek(
            children=(child,),
            available=available,
            solved_rels=solved,
            applied_selections=child.applied_selections,
            cardinality=cardinality,
            cost=self.cost.path_index_prefix_seek(
                child.cost,
                child.cardinality,
                prefix_length,
                max(child_symbols, prefix_length),
                cardinality,
            ),
            indexes_used=_combine_indexes((child,), {match.index_name}),
            index_name=match.index_name,
            entry_vars=match.entry_vars,
            prefix_length=prefix_length,
            label_filters=match.label_filters,
            type_filters=match.type_filters,
        )
        return self.with_filters(plan)

    # ------------------------------------------------------------------
    # Boundary operators
    # ------------------------------------------------------------------

    def projection(
        self, child: LogicalPlan, items: Sequence[ast.ProjectionItem]
    ) -> LogicalPlan:
        return PlanProjection(
            children=(child,),
            available=frozenset(item.output_name for item in items),
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=child.cardinality,
            cost=self.cost.projection(child.cost, child.cardinality),
            indexes_used=child.indexes_used,
            items=tuple(items),
        )

    def aggregation(
        self, child: LogicalPlan, items: Sequence[ast.ProjectionItem]
    ) -> LogicalPlan:
        """Aggregating projection: grouping keys are the aggregate-free items."""
        grouping = tuple(
            item for item in items if not ast.contains_aggregate(item.expression)
        )
        aggregates = tuple(
            item for item in items if ast.contains_aggregate(item.expression)
        )
        # Group count heuristic: square root of the input, at least one row.
        cardinality = max(1.0, child.cardinality ** 0.5) if grouping else 1.0
        from repro.planner.plans import PlanAggregation

        return PlanAggregation(
            children=(child,),
            available=frozenset(item.output_name for item in items),
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=cardinality,
            cost=child.cost + child.cardinality,
            indexes_used=child.indexes_used,
            grouping_items=grouping,
            aggregate_items=aggregates,
        )

    def distinct(self, child: LogicalPlan, columns: Sequence[str]) -> LogicalPlan:
        return PlanDistinct(
            children=(child,),
            available=child.available,
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=child.cardinality,
            cost=child.cost + child.cardinality,
            indexes_used=child.indexes_used,
            columns=tuple(columns),
        )

    def sort(
        self, child: LogicalPlan, order_by: Sequence[tuple[ast.Expression, bool]]
    ) -> LogicalPlan:
        return PlanSort(
            children=(child,),
            available=child.available,
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=child.cardinality,
            cost=child.cost + child.cardinality * 2.0,
            indexes_used=child.indexes_used,
            order_by=tuple(order_by),
        )

    def limit(
        self, child: LogicalPlan, limit: Optional[int], skip: Optional[int]
    ) -> LogicalPlan:
        effective_skip = skip or 0
        effective_limit = limit if limit is not None else -1
        cardinality = child.cardinality
        if limit is not None:
            cardinality = min(cardinality, float(limit))
        return PlanLimit(
            children=(child,),
            available=child.available,
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=cardinality,
            cost=child.cost,
            indexes_used=child.indexes_used,
            limit=effective_limit,
            skip=effective_skip,
        )

    def explicit_filter(
        self, child: LogicalPlan, predicates: Sequence[ast.Expression]
    ) -> LogicalPlan:
        """A Filter for predicates outside the selection list (WITH ... WHERE)."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.estimator.predicate_selectivity(predicate)
        return PlanFilter(
            children=(child,),
            available=child.available,
            solved_rels=child.solved_rels,
            applied_selections=child.applied_selections,
            cardinality=child.cardinality * selectivity,
            cost=self.cost.filter(child.cost, child.cardinality, len(predicates)),
            indexes_used=child.indexes_used,
            predicates=tuple(predicates),
        )
