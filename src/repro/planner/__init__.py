"""Cost-based query planner (§2.2 and §5 of the paper).

Planning proceeds per query part: leaf plans are generated for every pattern
relationship (§2.2.1), an iterative-dynamic-programming solver combines them
with ExpandAll/ExpandInto/NodeHashJoin solver steps (§2.2.2), and — with path
indexes registered — two extra planners contribute PathIndexScan /
PathIndexFilteredScan leaf plans and the PathIndexPrefixSeek solver step
(§5.1). Costs follow the paper's heuristics; cardinalities come from an
independence-assumption estimator whose mispredictions on correlated data are
a central observation of the evaluation.
"""

from repro.planner.plans import LogicalPlan
from repro.planner.hints import PlannerHints
from repro.planner.cardinality import CardinalityEstimator
from repro.planner.cost import CostModel
from repro.planner.planner import Planner

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "LogicalPlan",
    "Planner",
    "PlannerHints",
]
