"""The iterative dynamic programming solver (§2.2.2) with solver steps.

The table maps each *solved set* of pattern relationships to the best plan
found for it. Generation ``k`` derives plans solving exactly ``k``
relationships from smaller table entries through the solver steps:

* **expand** — extend a plan by one adjacent relationship (ExpandAll /
  ExpandInto);
* **join** — NodeHashJoin of two disjoint plans sharing a node;
* **path index scan** — a PathIndexScan/FilteredScan over a matched index
  enters the table at generation = pattern length (the solver-step planner of
  §5.1; length-1 scans come from the leaf planner);
* **prefix seek** — PathIndexPrefixSeek extends an existing plan whose bound
  symbols form a prefix of a matched index pattern.

Plans for the same solved set are compared by (required-index coverage,
cost); the first criterion implements the evaluation's forced-index plans
without distorting the cost model.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PlannerError
from repro.pathindex.store import PathIndexStore
from repro.planner.factory import PlanFactory
from repro.planner.hints import PlannerHints
from repro.planner.index_match import IndexMatch, find_index_matches
from repro.planner.plans import LogicalPlan
from repro.querygraph import QueryGraph


class IDPSolver:
    """Plans one connected component of a query graph."""

    def __init__(
        self,
        factory: PlanFactory,
        component: QueryGraph,
        index_store: Optional[PathIndexStore],
        hints: PlannerHints,
    ) -> None:
        self.factory = factory
        self.component = component
        self.index_store = index_store
        self.hints = hints
        self.matches: list[IndexMatch] = []
        if index_store is not None and hints.use_path_indexes:
            allowed = [
                name
                for name in index_store.names()
                if hints.index_allowed(name)
            ]
            self.matches = find_index_matches(
                component, index_store.patterns(), allowed
            )
        self._table: dict[frozenset[str], LogicalPlan] = {}

    # ------------------------------------------------------------------

    def solve(self) -> LogicalPlan:
        rels = self.component.relationships
        if not rels:
            return self._solve_relationship_free()
        self._generation_one()
        anchor = self.factory.argument()
        if anchor.solved_rels:
            # Pattern relationships bound as arguments (maintenance anchors)
            # enter the table pre-solved.
            self._consider(self.factory.with_filters(anchor))
        for match in self.matches:
            if len(match.rel_names) > 1 and self._scannable(match):
                self._consider(self.factory.path_index_scan(match))
        goal = frozenset(rels)
        for size in range(2, len(rels) + 1):
            self._generation(size)
        plan = self._table.get(goal)
        if plan is None:
            raise PlannerError(
                f"could not plan component with relationships {sorted(rels)}"
            )
        return plan

    # ------------------------------------------------------------------

    def _solve_relationship_free(self) -> LogicalPlan:
        names = list(self.component.nodes)
        if not names:
            return self.factory.with_filters(self.factory.argument())
        # A connected, relationship-free component is a single node.
        plan = self.factory.node_leaf(names[0])
        for other in names[1:]:  # defensive: isolated nodes grouped together
            plan = self.factory.cartesian_product(plan, self.factory.node_leaf(other))
        return plan

    def _generation_one(self) -> None:
        """The leaf planner (§2.2.1): one bin per relationship, best kept."""
        for rel in self.component.relationships.values():
            for endpoint in dict.fromkeys((rel.start, rel.end)):
                if endpoint in self.factory.arguments:
                    base = self.factory.with_filters(self.factory.argument())
                else:
                    base = self.factory.node_leaf(endpoint)
                plan = self.factory.expand(base, rel)
                if plan is not None:
                    self._consider(plan)
            self._consider_type_scan(rel)
        for match in self.matches:
            if len(match.rel_names) == 1 and self._scannable(match):
                self._consider(self.factory.path_index_scan(match))

    def _consider_type_scan(self, rel) -> None:
        if not self.hints.use_relationship_type_scan:
            return
        if self.index_store is None or len(rel.types) != 1:
            return
        (type_name,) = rel.types
        index = self.index_store.type_scan_index(type_name)
        if index is None or index.name in self.hints.forbidden_indexes:
            return
        if (
            self.hints.allowed_indexes is not None
            and index.name not in self.hints.allowed_indexes
        ):
            return
        self._consider(
            self.factory.relationship_by_type_scan(rel, type_name, index.name)
        )

    def _generation(self, size: int) -> None:
        new_plans: list[LogicalPlan] = []
        entries = list(self._table.items())
        for solved, plan in entries:
            if len(solved) != size - 1:
                continue
            for rel in self.component.relationships.values():
                if rel.name in solved:
                    continue
                candidate = self.factory.expand(plan, rel)
                if candidate is not None:
                    new_plans.append(candidate)
        for solved_left, left in entries:
            for solved_right, right in entries:
                if len(solved_left) + len(solved_right) != size:
                    continue
                if solved_left & solved_right:
                    continue
                candidate = self.factory.node_hash_join(left, right)
                if candidate is not None:
                    new_plans.append(candidate)
        for match in self.matches:
            for solved, plan in entries:
                if len(solved | match.rel_names) != size:
                    continue
                candidate = self.factory.path_index_prefix_seek(plan, match)
                if candidate is not None:
                    new_plans.append(candidate)
        for plan in new_plans:
            self._consider(plan)

    def _scannable(self, match: IndexMatch) -> bool:
        """Partially materialized indexes (§4.1) never serve full scans;
        they are offered through PathIndexPrefixSeek only."""
        if self.index_store is None:
            return False
        return self.index_store.get(match.index_name).supports_full_scan

    # ------------------------------------------------------------------

    def _consider(self, plan: LogicalPlan) -> None:
        key = plan.solved_rels
        incumbent = self._table.get(key)
        if incumbent is None or self._better(plan, incumbent):
            self._table[key] = plan

    def _better(self, challenger: LogicalPlan, incumbent: LogicalPlan) -> bool:
        required = self.hints.required_indexes
        if required:
            challenger_hits = len(challenger.indexes_used & required)
            incumbent_hits = len(incumbent.indexes_used & required)
            if challenger_hits != incumbent_hits:
                return challenger_hits > incumbent_hits
        if challenger.cost != incumbent.cost:
            return challenger.cost < incumbent.cost
        # Deterministic tie-break keeps planning reproducible.
        return challenger.describe() < incumbent.describe()
