"""Cost model: per-row operator costs plus the paper's path-index heuristics.

Conventional operator costs follow the Neo4j 3.5 shape (cost = child costs +
work proportional to rows touched); the path-index operator costs are the
exact formulas of §5.1:

* PathIndexScan:          ``cost = c · (1 + 0.1·n)``
* PathIndexFilteredScan:  ``cost = c · (1.05 + 0.1·n)``
* PathIndexPrefixSeek:    ``cost = 2·cost_child + 10·m + c/m`` with
  ``m = c_child · fraction`` and ``fraction`` the share of the child plan's
  symbols that form the seek prefix,

where ``c`` is the estimated output cardinality and ``n`` the number of
identifiers stored per entry. A ``path_index_cost_factor`` reproduces the
paper's "special debug parameters ... to reduce the cost function" used to
force index plans in the experiments.
"""

from __future__ import annotations

COST_PER_ROW_SCAN = 1.0
COST_PER_ROW_LABEL_SCAN = 1.0
COST_PER_ROW_EXPAND = 1.5
COST_PER_ROW_EXPAND_INTO = 6.4
COST_PER_ROW_FILTER = 1.0
COST_PER_ROW_HASH_BUILD = 2.0
COST_PER_ROW_HASH_PROBE = 1.0
COST_PER_ROW_HASH_OUT = 1.2
COST_PER_ROW_PROJECTION = 0.1


class CostModel:
    """Computes plan costs; stateless apart from the debug factor."""

    def __init__(self, path_index_cost_factor: float = 1.0) -> None:
        self.path_index_cost_factor = path_index_cost_factor

    # -- conventional operators ---------------------------------------------

    def all_nodes_scan(self, cardinality: float) -> float:
        return cardinality * COST_PER_ROW_SCAN

    def node_by_label_scan(self, cardinality: float) -> float:
        return cardinality * COST_PER_ROW_LABEL_SCAN

    def relationship_by_type_scan(self, cardinality: float) -> float:
        # §6.1: "the same per-row cost as NodeByLabelScan".
        return cardinality * COST_PER_ROW_LABEL_SCAN

    def expand_all(self, child_cost: float, child_card: float, out_card: float) -> float:
        return child_cost + child_card * COST_PER_ROW_EXPAND + out_card

    def expand_into(self, child_cost: float, child_card: float, out_card: float) -> float:
        return child_cost + child_card * COST_PER_ROW_EXPAND_INTO + out_card

    def filter(self, child_cost: float, child_card: float, predicates: int) -> float:
        return child_cost + child_card * COST_PER_ROW_FILTER * max(predicates, 1)

    def node_hash_join(
        self,
        left_cost: float,
        left_card: float,
        right_cost: float,
        right_card: float,
        out_card: float,
    ) -> float:
        # Building the hash table materializes the left side and every output
        # row is assembled from both sides, so joins carry a small per-row
        # premium over streaming expansion at equal output cardinality.
        return (
            left_cost
            + right_cost
            + left_card * COST_PER_ROW_HASH_BUILD
            + right_card * COST_PER_ROW_HASH_PROBE
            + out_card * COST_PER_ROW_HASH_OUT
        )

    def cartesian_product(
        self, left_cost: float, left_card: float, right_cost: float
    ) -> float:
        # Nested-loop shape: the right side re-runs per left row.
        return left_cost + max(left_card, 1.0) * right_cost

    def projection(self, child_cost: float, child_card: float) -> float:
        return child_cost + child_card * COST_PER_ROW_PROJECTION

    # -- path index operators (§5.1) ---------------------------------------

    def path_index_scan(self, cardinality: float, stored_identifiers: int) -> float:
        cost = cardinality * (1.0 + 0.1 * stored_identifiers)
        return cost * self.path_index_cost_factor

    def path_index_filtered_scan(
        self, cardinality: float, stored_identifiers: int
    ) -> float:
        cost = cardinality * (1.05 + 0.1 * stored_identifiers)
        return cost * self.path_index_cost_factor

    def path_index_prefix_seek(
        self,
        child_cost: float,
        child_card: float,
        prefix_symbols: int,
        child_symbols: int,
        out_card: float,
    ) -> float:
        fraction = prefix_symbols / max(child_symbols, 1)
        unique_prefixes = max(child_card * fraction, 1.0)
        own_work = 10.0 * unique_prefixes + out_card / unique_prefixes
        # The debug factor discounts the operator's own work only — the child
        # plan still has to be paid for.
        return 2.0 * child_cost + own_work * self.path_index_cost_factor
