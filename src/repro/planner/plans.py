"""Logical plan operators.

Each plan node records the variables it makes available, the pattern
relationships it solves, which selections it has applied, its estimated
cardinality and cost, and which path indexes appear anywhere in its tree
(used by forced-plan hints). Plans form immutable trees; the runtime compiles
them into iterator pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cypher import ast
from repro.storage.graphstore import Direction


@dataclass(frozen=True)
class LogicalPlan:
    """Base class for logical plan operators."""

    children: tuple["LogicalPlan", ...]
    available: frozenset[str]
    solved_rels: frozenset[str]
    applied_selections: frozenset[int]
    cardinality: float
    cost: float
    indexes_used: frozenset[str]

    @property
    def operator_name(self) -> str:
        return type(self).__name__.removeprefix("Plan")

    def describe(self) -> str:
        """One-line description used in plan renderings."""
        return self.operator_name

    def render(self, indent: int = 0, with_estimates: bool = True) -> str:
        """Multi-line tree rendering (the paper's Figure 6/10 style)."""
        pad = "  " * indent
        estimate = (
            f"  [card≈{self.cardinality:.0f}, cost≈{self.cost:.0f}]"
            if with_estimates
            else ""
        )
        lines = [f"{pad}{self.describe()}{estimate}"]
        for child in self.children:
            lines.append(child.render(indent + 1, with_estimates))
        return "\n".join(lines)


def _combine_indexes(children: tuple[LogicalPlan, ...], extra=()) -> frozenset[str]:
    combined: set[str] = set(extra)
    for child in children:
        combined |= child.indexes_used
    return frozenset(combined)


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanArgument(LogicalPlan):
    """Variables bound by the previous query part (one row per input)."""

    variables: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"Argument({', '.join(self.variables)})"


@dataclass(frozen=True)
class PlanAllNodesScan(LogicalPlan):
    node: str = ""

    def describe(self) -> str:
        return f"AllNodesScan({self.node})"


@dataclass(frozen=True)
class PlanNodeByLabelScan(LogicalPlan):
    node: str = ""
    label: str = ""
    post_labels: tuple[tuple[str, str], ...] = ()  # further labels to check

    def describe(self) -> str:
        return f"NodeByLabelScan({self.node}:{self.label})"


@dataclass(frozen=True)
class PlanNodeByIdSeek(LogicalPlan):
    node: str = ""
    node_id_expr: Optional[ast.Expression] = None

    def describe(self) -> str:
        return f"NodeByIdSeek({self.node} = {self.node_id_expr})"


@dataclass(frozen=True)
class PlanRelationshipByTypeScan(LogicalPlan):
    """The baseline planner extension of §6.1: scan all relationships of one
    type, backed by a single-relationship, label-free path index.

    ``post_labels`` are pattern label checks applied while scanning (they are
    part of the pattern estimate, not extra predicate selectivity).
    ``directed`` is False when the query relationship is undirected, in which
    case each stored relationship is emitted in both orientations.
    """

    rel: str = ""
    rel_type: str = ""
    start_node: str = ""
    end_node: str = ""
    index_name: str = ""
    post_labels: tuple[tuple[str, str], ...] = ()
    directed: bool = True

    def describe(self) -> str:
        return (
            f"RelationshipByTypeScan(({self.start_node})-"
            f"[{self.rel}:{self.rel_type}]->({self.end_node}))"
        )


# ---------------------------------------------------------------------------
# Expansion and combination operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanExpand(LogicalPlan):
    """Expand(All) / Expand(Into): traverse one pattern relationship from an
    already-bound node (§2.2.3, operators 6–7)."""

    rel: str = ""
    from_node: str = ""
    to_node: str = ""
    direction: Direction = Direction.OUTGOING
    types: frozenset[str] = frozenset()
    into: bool = False  # Expand(Into): both endpoints already bound
    post_labels: tuple[tuple[str, str], ...] = ()  # label checks on to_node

    def describe(self) -> str:
        mode = "Into" if self.into else "All"
        type_text = "|".join(sorted(self.types))
        arrow = {
            Direction.OUTGOING: f"-[{self.rel}:{type_text}]->",
            Direction.INCOMING: f"<-[{self.rel}:{type_text}]-",
            Direction.BOTH: f"-[{self.rel}:{type_text}]-",
        }[self.direction]
        return f"Expand({mode})(({self.from_node}){arrow}({self.to_node}))"


@dataclass(frozen=True)
class PlanNodeHashJoin(LogicalPlan):
    join_nodes: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"NodeHashJoin({', '.join(self.join_nodes)})"


@dataclass(frozen=True)
class PlanCartesianProduct(LogicalPlan):
    def describe(self) -> str:
        return "CartesianProduct"


@dataclass(frozen=True)
class PlanFilter(LogicalPlan):
    predicates: tuple[ast.Expression, ...] = ()

    def describe(self) -> str:
        return f"Filter({' AND '.join(str(p) for p in self.predicates)})"


# ---------------------------------------------------------------------------
# Path index operators (§5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanPathIndexScan(LogicalPlan):
    """Scan an entire path index; entry position ``i`` binds variable
    ``entry_vars[i]`` (§5.1.1)."""

    index_name: str = ""
    entry_vars: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"PathIndexScan({self.index_name}: {', '.join(self.entry_vars)})"


@dataclass(frozen=True)
class PlanPathIndexFilteredScan(LogicalPlan):
    """PathIndexScan plus predicates evaluated during the scan, with
    B+-tree range-skipping for prefix-expressible violations (§5.1.2)."""

    index_name: str = ""
    entry_vars: tuple[str, ...] = ()
    predicates: tuple[ast.Expression, ...] = ()
    label_filters: tuple[tuple[str, str], ...] = ()  # (variable, label)
    type_filters: tuple[tuple[str, frozenset[str]], ...] = ()

    def describe(self) -> str:
        preds = [str(p) for p in self.predicates]
        preds += [f"{var}:{label}" for var, label in self.label_filters]
        preds += [
            f"type({var}) IN {sorted(types)}" for var, types in self.type_filters
        ]
        return (
            f"PathIndexFilteredScan({self.index_name}: "
            f"{', '.join(self.entry_vars)}; {' AND '.join(preds)})"
        )


@dataclass(frozen=True)
class PlanPathIndexPrefixSeek(LogicalPlan):
    """Group child rows by an index-prefix, seek the index per distinct
    prefix, and emit the child row combined with each indexed path (§5.1.3)."""

    index_name: str = ""
    entry_vars: tuple[str, ...] = ()
    prefix_length: int = 0  # symbols of the entry bound by the child
    label_filters: tuple[tuple[str, str], ...] = ()
    type_filters: tuple[tuple[str, frozenset[str]], ...] = ()

    def describe(self) -> str:
        bound = ", ".join(self.entry_vars[: self.prefix_length])
        new = ", ".join(self.entry_vars[self.prefix_length :])
        return f"PathIndexPrefixSeek({self.index_name}: [{bound}] -> {new})"


# ---------------------------------------------------------------------------
# Projection-boundary operators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanProjection(LogicalPlan):
    items: tuple[ast.ProjectionItem, ...] = ()

    def describe(self) -> str:
        return f"Projection({', '.join(str(item) for item in self.items)})"


@dataclass(frozen=True)
class PlanAggregation(LogicalPlan):
    """Hash aggregation: group by the non-aggregate projection items,
    accumulate the aggregate function calls (count/sum/min/max/avg/collect)."""

    grouping_items: tuple[ast.ProjectionItem, ...] = ()
    aggregate_items: tuple[ast.ProjectionItem, ...] = ()

    def describe(self) -> str:
        groups = ", ".join(str(item) for item in self.grouping_items)
        aggregates = ", ".join(str(item) for item in self.aggregate_items)
        return f"Aggregation(group by [{groups}]; {aggregates})"


@dataclass(frozen=True)
class PlanDistinct(LogicalPlan):
    columns: tuple[str, ...] = ()

    def describe(self) -> str:
        return f"Distinct({', '.join(self.columns)})"


@dataclass(frozen=True)
class PlanSort(LogicalPlan):
    order_by: tuple[tuple[ast.Expression, bool], ...] = ()

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr} {'ASC' if asc else 'DESC'}" for expr, asc in self.order_by
        )
        return f"Sort({keys})"


@dataclass(frozen=True)
class PlanLimit(LogicalPlan):
    limit: int = 0
    skip: int = 0

    def describe(self) -> str:
        return f"Limit(skip={self.skip}, limit={self.limit})"
