"""Planner hints: the debug/forcing controls the evaluation relies on.

The paper repeatedly "forces the planner to pick a plan that contains an
operator that uses this index" (§7.1.2) and compares against a hand-ordered
``Manual`` plan (§7.3). These hints reproduce those controls without touching
the cost model, plus the maintenance planner's need to forbid specific
indexes (Algorithm 1, line 17: "Query(P but avoid using index, G)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class PlannerHints:
    """Immutable planning controls for one query execution."""

    use_path_indexes: bool = True
    """Master switch: False gives the baseline planner (§6.1 still provides
    RelationshipByTypeScan through type-only indexes when registered)."""

    required_indexes: frozenset[str] = frozenset()
    """The final plan must use these indexes; plans using them win every
    cost comparison against plans that do not (the paper's forced plans)."""

    forbidden_indexes: frozenset[str] = frozenset()
    """Indexes the planner must not use (maintenance's "avoid using index")."""

    allowed_indexes: Optional[frozenset[str]] = None
    """When set, only these indexes may be used (None = all registered)."""

    use_relationship_type_scan: bool = True
    """Whether the §6.1 baseline extension operator is offered."""

    path_index_cost_factor: float = 1.0
    """Multiplier on path-index operator costs (the paper's debug knob)."""

    manual_expand_chain: Optional[tuple[str, tuple[str, ...]]] = None
    """Hand-ordered plan: ``(start_node_variable, relationship_names)``.
    Bypasses the DP solver and builds scan-then-expand in exactly this order
    (the YAGO ``Manual`` plan)."""

    index_seed_chain: Optional[tuple[str, tuple[str, ...]]] = None
    """Hand-ordered index plan: ``(index_name, relationship_names)``.
    Bypasses the DP solver and builds PathIndexScan(index) followed by the
    named expansions — the plan shape of the paper's Figure 10 Full/Sub1
    rows."""

    use_index_cardinality: bool = False
    """§9 future work, implemented as an opt-in extension: path-index scans
    report their *exact* cardinality (the index knows how many occurrences it
    stores) and downstream operators scale incrementally from it, instead of
    everything using the independence-model estimate. Off by default — the
    paper's prototype used the unmodified estimator."""

    def index_allowed(self, name: str) -> bool:
        if not self.use_path_indexes:
            return False
        if name in self.forbidden_indexes:
            return False
        if self.allowed_indexes is not None and name not in self.allowed_indexes:
            return False
        return True

    def forbidding(self, *names: str) -> "PlannerHints":
        """A copy with ``names`` added to the forbidden set."""
        return PlannerHints(
            use_path_indexes=self.use_path_indexes,
            required_indexes=self.required_indexes - frozenset(names),
            forbidden_indexes=self.forbidden_indexes | frozenset(names),
            allowed_indexes=self.allowed_indexes,
            use_relationship_type_scan=self.use_relationship_type_scan,
            path_index_cost_factor=self.path_index_cost_factor,
            manual_expand_chain=self.manual_expand_chain,
            index_seed_chain=self.index_seed_chain,
            use_index_cardinality=self.use_index_cardinality,
        )
