"""Matching registered path-index patterns against a query graph.

A match maps every stored entry position of an index to a query variable such
that using the index can never lose query results: every index constraint
must be *implied* by the query (index label present on the query node, index
type equal to the query relationship's type, directions aligned). Query
constraints that the index does not guarantee (extra labels, missing types)
become residual filters carried on the match — the "predicates left to filter
on" that turn a PathIndexScan into a PathIndexFilteredScan (§5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.pathindex.pattern import PathPattern
from repro.querygraph import QueryGraph


@dataclass(frozen=True)
class IndexMatch:
    """One way an index pattern embeds into the query graph."""

    index_name: str
    pattern: PathPattern
    entry_vars: tuple[str, ...]
    """Query variable bound by each stored entry position (2k+1 symbols:
    node, rel, node, ..., node)."""

    label_filters: tuple[tuple[str, str], ...]
    """(variable, label) checks the index does not guarantee."""

    type_filters: tuple[tuple[str, frozenset[str]], ...]
    """(relationship variable, allowed types) checks the index does not
    guarantee."""

    @property
    def rel_names(self) -> frozenset[str]:
        return frozenset(self.entry_vars[1::2])

    @property
    def node_names(self) -> frozenset[str]:
        return frozenset(self.entry_vars[0::2])

    @property
    def has_residual_filters(self) -> bool:
        return bool(self.label_filters or self.type_filters)


def find_index_matches(
    query_graph: QueryGraph,
    indexes: Mapping[str, PathPattern],
    allowed: Iterable[str] | None = None,
) -> list[IndexMatch]:
    """All embeddings of the allowed indexes into ``query_graph``."""
    allowed_set = None if allowed is None else set(allowed)
    matches: list[IndexMatch] = []
    seen: set[tuple[str, tuple[str, ...]]] = set()
    for name, pattern in indexes.items():
        if allowed_set is not None and name not in allowed_set:
            continue
        for entry_vars in _embeddings(query_graph, pattern):
            key = (name, entry_vars)
            if key in seen:
                continue
            seen.add(key)
            matches.append(
                _build_match(query_graph, name, pattern, entry_vars)
            )
    return matches


def _embeddings(
    query_graph: QueryGraph, pattern: PathPattern
) -> list[tuple[str, ...]]:
    """DFS enumeration of pattern embeddings (query rels used at most once)."""
    results: list[tuple[str, ...]] = []
    for start_name, start_node in query_graph.nodes.items():
        if not _label_implied(pattern.labels[0], start_node.labels):
            continue
        _extend(
            query_graph,
            pattern,
            position=0,
            current=start_name,
            path=[start_name],
            used_rels=set(),
            results=results,
        )
    return results


def _extend(query_graph, pattern, position, current, path, used_rels, results):
    if position == pattern.length:
        results.append(tuple(path))
        return
    step = pattern.relationships[position]
    next_label = pattern.labels[position + 1]
    for rel in query_graph.relationships_of(current):
        if rel.name in used_rels:
            continue
        if not rel.directed:
            continue  # a directed index step cannot cover an undirected match
        if step.forward:
            if rel.start != current:
                continue
            neighbour = rel.end
        else:
            if rel.end != current:
                continue
            neighbour = rel.start
        if step.type is not None and rel.types != frozenset({step.type}):
            continue
        if step.type is None and not rel.types:
            pass  # untyped step over untyped query rel: fine, no filter
        neighbour_node = query_graph.nodes[neighbour]
        if not _label_implied(next_label, neighbour_node.labels):
            continue
        path.append(rel.name)
        path.append(neighbour)
        used_rels.add(rel.name)
        _extend(
            query_graph, pattern, position + 1, neighbour, path, used_rels, results
        )
        used_rels.discard(rel.name)
        path.pop()
        path.pop()


def _label_implied(index_label, query_labels) -> bool:
    """The index constraint must be guaranteed by the query pattern."""
    return index_label is None or index_label in query_labels


def _build_match(query_graph, name, pattern, entry_vars) -> IndexMatch:
    # A variable bound at several slots (the query pattern revisits the node)
    # gets every label guaranteed at any of its slots.
    guaranteed_by_var: dict[str, set[str]] = {}
    for slot, var in enumerate(entry_vars[0::2]):
        bucket = guaranteed_by_var.setdefault(var, set())
        if pattern.labels[slot] is not None:
            bucket.add(pattern.labels[slot])
    label_filters: list[tuple[str, str]] = []
    for var in sorted(guaranteed_by_var):
        for label in sorted(query_graph.nodes[var].labels):
            if label not in guaranteed_by_var[var]:
                label_filters.append((var, label))
    type_filters: list[tuple[str, frozenset[str]]] = []
    for slot, var in enumerate(entry_vars[1::2]):
        step = pattern.relationships[slot]
        rel = query_graph.relationships[var]
        if step.type is None and rel.types:
            type_filters.append((var, rel.types))
    return IndexMatch(
        index_name=name,
        pattern=pattern,
        entry_vars=entry_vars,
        label_filters=tuple(label_filters),
        type_filters=tuple(type_filters),
    )
