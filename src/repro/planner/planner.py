"""Top-level planner: query parts → logical plans.

Per part: split the query graph into connected components (§2.2), solve each
with the IDP solver, combine components with CartesianProduct cheapest-first,
apply any remaining cross-component selections, then add the projection
boundary (Projection / Distinct / Sort / Limit). A ``manual_expand_chain``
hint bypasses the solver entirely and builds a hand-ordered scan-then-expand
plan (the paper's YAGO ``Manual`` plan, §7.3).
"""

from __future__ import annotations

from typing import Optional

from repro.cypher import ast
from repro.errors import PlannerError
from repro.pathindex.store import PathIndexStore
from repro.planner.cardinality import CardinalityEstimator
from repro.planner.cost import CostModel
from repro.planner.factory import PlanFactory
from repro.planner.hints import PlannerHints
from repro.planner.idp import IDPSolver
from repro.planner.plans import LogicalPlan
from repro.querygraph import QueryPart
from repro.storage.graphstore import GraphStore


class Planner:
    """Plans query parts against one graph store + path index store."""

    def __init__(
        self,
        store: GraphStore,
        index_store: Optional[PathIndexStore] = None,
    ) -> None:
        self.store = store
        self.index_store = index_store
        # statistics_view resolves to the reader's snapshot (falling back
        # to the live counters in latest mode), so a pinned reader plans
        # against the statistics of its own LSN.
        self.estimator = CardinalityEstimator(
            store.statistics_view(), store.labels, store.types
        )

    def plan_part(
        self, part: QueryPart, hints: Optional[PlannerHints] = None
    ) -> LogicalPlan:
        """Produce the logical plan for one query part."""
        hints = hints or PlannerHints()
        cost_model = CostModel(hints.path_index_cost_factor)
        factory = PlanFactory(
            part.query_graph,
            self.estimator,
            cost_model,
            index_store=self.index_store,
            use_index_cardinality=hints.use_index_cardinality,
        )
        if hints.manual_expand_chain is not None:
            plan = self._manual_plan(factory, part, hints)
        elif hints.index_seed_chain is not None:
            plan = self._index_seed_plan(factory, part, hints)
        else:
            plan = self._solve(factory, part, hints)
        self._check_required_indexes(plan, hints)
        plan = factory.with_filters(plan)  # cross-component selections
        missing = [
            index
            for index, selection in enumerate(factory.selections)
            if index not in plan.applied_selections
        ]
        if missing:
            unresolved = [str(factory.selections[i]) for i in missing]
            raise PlannerError(
                f"selections could not be applied: {unresolved}"
            )
        return self._boundary(factory, part, plan)

    # ------------------------------------------------------------------

    def _solve(
        self, factory: PlanFactory, part: QueryPart, hints: PlannerHints
    ) -> LogicalPlan:
        components = part.query_graph.connected_components()
        plans = [
            IDPSolver(factory, component, self.index_store, hints).solve()
            for component in components
        ]
        # Combine cheapest-first so the nested-loop right sides re-run the
        # smaller inputs.
        plans.sort(key=lambda plan: (plan.cardinality, plan.cost))
        combined = plans[0]
        for plan in plans[1:]:
            combined = factory.cartesian_product(combined, plan)
        return combined

    def _manual_plan(
        self, factory: PlanFactory, part: QueryPart, hints: PlannerHints
    ) -> LogicalPlan:
        start_node, rel_order = hints.manual_expand_chain
        query_graph = part.query_graph
        if start_node not in query_graph.nodes:
            raise PlannerError(f"manual plan start node {start_node!r} unknown")
        plan = factory.node_leaf(start_node)
        for rel_name in rel_order:
            rel = query_graph.relationships.get(rel_name)
            if rel is None:
                raise PlannerError(f"manual plan relationship {rel_name!r} unknown")
            extended = factory.expand(plan, rel)
            if extended is None:
                raise PlannerError(
                    f"manual plan: relationship {rel_name!r} is not adjacent "
                    "to the plan built so far"
                )
            plan = extended
        unsolved = set(query_graph.relationships) - set(plan.solved_rels)
        if unsolved:
            raise PlannerError(
                f"manual plan leaves relationships unsolved: {sorted(unsolved)}"
            )
        return plan

    def _index_seed_plan(
        self, factory: PlanFactory, part: QueryPart, hints: PlannerHints
    ) -> LogicalPlan:
        """Scan the named index, then expand the named relationships in
        order — the plan shape of Figure 10's index rows."""
        from repro.planner.index_match import find_index_matches

        index_name, rel_order = hints.index_seed_chain
        if self.index_store is None or index_name not in self.index_store:
            raise PlannerError(f"index seed {index_name!r} is not registered")
        if not self.index_store.get(index_name).supports_full_scan:
            raise PlannerError(
                f"index {index_name!r} is partially materialized and cannot "
                "seed a scan-based plan"
            )
        matches = find_index_matches(
            part.query_graph, self.index_store.patterns(), [index_name]
        )
        if not matches:
            raise PlannerError(
                f"index {index_name!r} does not match this query pattern"
            )
        plan = factory.path_index_scan(matches[0])
        plan = factory.with_filters(plan)
        for rel_name in rel_order:
            rel = part.query_graph.relationships.get(rel_name)
            if rel is None:
                raise PlannerError(f"seed plan relationship {rel_name!r} unknown")
            extended = factory.expand(plan, rel)
            if extended is None:
                raise PlannerError(
                    f"seed plan: relationship {rel_name!r} is not adjacent to "
                    "the plan built so far"
                )
            plan = extended
        unsolved = set(part.query_graph.relationships) - set(plan.solved_rels)
        if unsolved:
            raise PlannerError(
                f"seed plan leaves relationships unsolved: {sorted(unsolved)}"
            )
        return plan

    def _check_required_indexes(self, plan: LogicalPlan, hints: PlannerHints) -> None:
        missing = hints.required_indexes - plan.indexes_used
        if missing:
            raise PlannerError(
                f"no plan uses required index(es) {sorted(missing)}; their "
                "patterns do not match this query"
            )

    def _boundary(
        self, factory: PlanFactory, part: QueryPart, plan: LogicalPlan
    ) -> LogicalPlan:
        if part.updates:
            # Cypher applies writes after pattern matching and projects
            # afterwards; the executor owns the whole boundary for update
            # parts so created variables are visible to the projection.
            return plan
        aggregating = any(
            ast.contains_aggregate(item.expression) for item in part.projection
        )
        if part.order_by and not aggregating:
            # Sort runs before the projection so ORDER BY can reference both
            # pattern variables and projected aliases (aliases resolve to
            # their source expressions).
            alias_map = {
                item.output_name: item.expression for item in part.projection
            }
            resolved = []
            for expression, ascending in part.order_by:
                if (
                    isinstance(expression, ast.Variable)
                    and expression.name in alias_map
                ):
                    expression = alias_map[expression.name]
                resolved.append((expression, ascending))
            plan = factory.sort(plan, resolved)
        if part.projection and aggregating:
            plan = factory.aggregation(plan, part.projection)
            if part.order_by:
                # Sort over the aggregated output columns; ORDER BY items
                # matching a projection item textually resolve to its alias.
                text_to_name = {
                    str(item.expression): item.output_name
                    for item in part.projection
                }
                resolved = []
                for expression, ascending in part.order_by:
                    name = text_to_name.get(str(expression))
                    if name is not None:
                        expression = ast.Variable(name)
                    resolved.append((expression, ascending))
                plan = factory.sort(plan, resolved)
        elif part.projection:
            plan = factory.projection(plan, part.projection)
        if part.projection_where is not None:
            plan = factory.explicit_filter(plan, [part.projection_where])
        if part.distinct and part.projection:
            plan = factory.distinct(
                plan, [item.output_name for item in part.projection]
            )
        if part.limit is not None or part.skip:
            plan = factory.limit(plan, part.limit, part.skip)
        return plan
