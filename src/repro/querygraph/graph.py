"""Query graph data structures and connected-component splitting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cypher import ast


@dataclass
class QueryNode:
    """A pattern node: a variable plus its label constraints."""

    name: str
    labels: frozenset[str] = frozenset()


@dataclass
class QueryRelationship:
    """A pattern relationship between two query nodes.

    ``directed`` is False for ``-[]-`` patterns, in which case ``start``/
    ``end`` record the syntactic order only.
    """

    name: str
    start: str
    end: str
    types: frozenset[str] = frozenset()
    directed: bool = True

    def other(self, node_name: str) -> str:
        if node_name == self.start:
            return self.end
        if node_name == self.end:
            return self.start
        raise ValueError(f"{node_name} is not an endpoint of {self.name}")

    def endpoints(self) -> tuple[str, str]:
        return self.start, self.end


@dataclass
class QueryGraph:
    """The MATCH/WHERE content of one query part (§2.2, Figure 2).

    ``arguments`` are variables bound by the previous part (through a WITH
    boundary); they behave as already-solved symbols during planning.
    """

    nodes: dict[str, QueryNode] = field(default_factory=dict)
    relationships: dict[str, QueryRelationship] = field(default_factory=dict)
    selections: list[ast.Expression] = field(default_factory=list)
    arguments: frozenset[str] = frozenset()

    def add_node(self, name: str, labels: Iterable[str] = ()) -> QueryNode:
        """Add or merge a pattern node (labels accumulate, as in Cypher)."""
        existing = self.nodes.get(name)
        if existing is None:
            node = QueryNode(name=name, labels=frozenset(labels))
            self.nodes[name] = node
            return node
        existing.labels = existing.labels | frozenset(labels)
        return existing

    def add_relationship(
        self,
        name: str,
        start: str,
        end: str,
        types: Iterable[str] = (),
        directed: bool = True,
    ) -> QueryRelationship:
        if name in self.relationships:
            raise ValueError(f"relationship {name!r} already in query graph")
        rel = QueryRelationship(
            name=name,
            start=start,
            end=end,
            types=frozenset(types),
            directed=directed,
        )
        self.relationships[name] = rel
        return rel

    def relationships_of(self, node_name: str) -> list[QueryRelationship]:
        return [
            rel
            for rel in self.relationships.values()
            if node_name in (rel.start, rel.end)
        ]

    def all_variables(self) -> set[str]:
        return set(self.nodes) | set(self.relationships) | set(self.arguments)

    def connected_components(self) -> list["QueryGraph"]:
        """Split into connected components (each planned separately, §2.2).

        Argument variables do not connect components — two patterns that only
        share a WITH-bound value are still combined via CartesianProduct /
        Apply, matching the paper's Figure 2 discussion. Selections are
        assigned to the component containing their variables; predicates that
        span components stay on the first component that completes them
        (evaluated after the cartesian product by the executor).
        """
        if not self.nodes:
            return [self]
        parent: dict[str, str] = {name: name for name in self.nodes}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for rel in self.relationships.values():
            union(rel.start, rel.end)
        groups: dict[str, QueryGraph] = {}
        order: list[str] = []
        for name, node in self.nodes.items():
            root = find(name)
            if root not in groups:
                groups[root] = QueryGraph(arguments=self.arguments)
                order.append(root)
            groups[root].nodes[name] = node
        for rel in self.relationships.values():
            groups[find(rel.start)].relationships[rel.name] = rel
        if len(groups) == 1:
            only = groups[order[0]]
            only.selections = list(self.selections)
            return [only]
        # Attach each selection to the first component (in discovery order)
        # that covers all of its non-argument variables. Selections spanning
        # several components stay unattached; the planner applies them after
        # the components are combined.
        component_list = [groups[root] for root in order]
        for selection in self.selections:
            needed = selection.variables() - set(self.arguments)
            for component in component_list:
                if needed <= (set(component.nodes) | set(component.relationships)):
                    component.selections.append(selection)
                    break
        return component_list

    def __str__(self) -> str:
        return (
            f"QueryGraph(nodes={sorted(self.nodes)}, "
            f"rels={sorted(self.relationships)}, "
            f"selections={len(self.selections)})"
        )
