"""AST → query parts: split on projection boundaries, build query graphs.

Each :class:`QueryPart` owns the query graph of the MATCH/WHERE clauses
between two boundaries plus the boundary's projection. Write clauses become
:class:`UpdateAction` lists executed by the runtime after pattern matching.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.cypher import ast
from repro.cypher.semantics import AnalyzedQuery, VariableKind
from repro.errors import CypherSemanticError
from repro.querygraph.graph import QueryGraph


@dataclass
class UpdateAction:
    """One write command derived from CREATE/DELETE clauses."""

    kind: str  # "create_node" | "create_relationship" | "delete"
    variable: Optional[str] = None
    labels: tuple[str, ...] = ()
    properties: dict[str, ast.Expression] = field(default_factory=dict)
    start: Optional[str] = None
    end: Optional[str] = None
    type: Optional[str] = None
    detach: bool = False


@dataclass
class QueryPart:
    """A planning unit: one query graph plus its boundary projection."""

    query_graph: QueryGraph
    projection: list[ast.ProjectionItem]
    projection_where: Optional[ast.Expression] = None
    distinct: bool = False
    order_by: list[tuple[ast.Expression, bool]] = field(default_factory=list)
    skip: Optional[int] = None
    limit: Optional[int] = None
    updates: list[UpdateAction] = field(default_factory=list)
    is_final: bool = False


def build_query_parts(analyzed: AnalyzedQuery) -> list[QueryPart]:
    """Split the analyzed query on WITH/RETURN boundaries (§2.2)."""
    builder = _PartBuilder(analyzed)
    return builder.build()


class _PartBuilder:
    def __init__(self, analyzed: AnalyzedQuery) -> None:
        self.analyzed = analyzed
        self.anonymous_counter = itertools.count()
        self.bound: set[str] = set()

    def build(self) -> list[QueryPart]:
        parts: list[QueryPart] = []
        graph = QueryGraph(arguments=frozenset(self.bound))
        updates: list[UpdateAction] = []
        for clause in self.analyzed.query.clauses:
            if isinstance(clause, ast.MatchClause):
                if updates:
                    raise CypherSemanticError(
                        "MATCH after a write clause requires a WITH boundary"
                    )
                self._add_match(graph, clause)
            elif isinstance(clause, ast.CreateClause):
                updates.extend(self._create_actions(clause, graph))
            elif isinstance(clause, ast.DeleteClause):
                for expression in clause.expressions:
                    assert isinstance(expression, ast.Variable)
                    updates.append(
                        UpdateAction(
                            kind="delete",
                            variable=expression.name,
                            detach=clause.detach,
                        )
                    )
            elif isinstance(clause, (ast.WithClause, ast.ReturnClause)):
                items = self.analyzed.projection_items(clause)
                part = QueryPart(
                    query_graph=graph,
                    projection=items,
                    updates=updates,
                    distinct=getattr(clause, "distinct", False),
                )
                if isinstance(clause, ast.WithClause):
                    part.projection_where = clause.where
                else:
                    part.is_final = True
                    part.order_by = clause.order_by
                    part.skip = clause.skip
                    part.limit = clause.limit
                parts.append(part)
                self.bound = {item.output_name for item in items}
                graph = QueryGraph(arguments=frozenset(self.bound))
                updates = []
        if updates or graph.nodes or graph.relationships:
            # Write query without trailing RETURN: emit a final part that
            # projects nothing.
            parts.append(
                QueryPart(
                    query_graph=graph,
                    projection=[],
                    updates=updates,
                    is_final=True,
                )
            )
        return parts

    # ------------------------------------------------------------------

    def _fresh_name(self, prefix: str) -> str:
        return f"  {prefix}{next(self.anonymous_counter)}"

    def _add_match(self, graph: QueryGraph, clause: ast.MatchClause) -> None:
        for pattern in clause.patterns:
            self._add_pattern(graph, pattern)
        if clause.where is not None:
            for conjunct in _split_conjuncts(clause.where):
                if isinstance(conjunct, ast.HasLabel) and conjunct.subject in (
                    graph.nodes
                ):
                    # Fold top-level label predicates into the pattern node.
                    graph.add_node(conjunct.subject, [conjunct.label])
                else:
                    graph.selections.append(conjunct)

    def _add_pattern(self, graph: QueryGraph, pattern: ast.PatternPath) -> None:
        previous_node: Optional[str] = None
        pending_rel: Optional[ast.RelPatternAst] = None
        for element in pattern.elements:
            if isinstance(element, ast.NodePatternAst):
                name = element.variable or self._fresh_name("node")
                graph.add_node(name, element.labels)
                for key, value in element.properties.items():
                    graph.selections.append(
                        ast.Comparison(
                            ast.ComparisonOp.EQ,
                            ast.PropertyAccess(name, key),
                            value,
                        )
                    )
                if pending_rel is not None:
                    assert previous_node is not None
                    rel_name = pending_rel.variable or self._fresh_name("rel")
                    if pending_rel.direction is ast.RelDirection.RIGHT_TO_LEFT:
                        start, end = name, previous_node
                        directed = True
                    elif pending_rel.direction is ast.RelDirection.LEFT_TO_RIGHT:
                        start, end = previous_node, name
                        directed = True
                    else:
                        start, end = previous_node, name
                        directed = False
                    graph.add_relationship(
                        rel_name, start, end, pending_rel.types, directed
                    )
                    for key, value in pending_rel.properties.items():
                        graph.selections.append(
                            ast.Comparison(
                                ast.ComparisonOp.EQ,
                                ast.PropertyAccess(rel_name, key),
                                value,
                            )
                        )
                    pending_rel = None
                previous_node = name
            else:
                pending_rel = element

    def _create_actions(
        self, clause: ast.CreateClause, graph: QueryGraph
    ) -> list[UpdateAction]:
        actions: list[UpdateAction] = []
        declared: set[str] = set()
        # Variables bound earlier in this part — by a WITH boundary or by the
        # part's own MATCH patterns — are reused, not re-created.
        bound = self.bound | set(graph.nodes) | set(graph.relationships)
        for pattern in clause.patterns:
            previous: Optional[str] = None
            pending: Optional[ast.RelPatternAst] = None
            for element in pattern.elements:
                if isinstance(element, ast.NodePatternAst):
                    name = element.variable or self._fresh_name("cnode")
                    is_new = name not in bound and name not in declared
                    if is_new:
                        declared.add(name)
                        actions.append(
                            UpdateAction(
                                kind="create_node",
                                variable=name,
                                labels=tuple(element.labels),
                                properties=dict(element.properties),
                            )
                        )
                    if pending is not None:
                        assert previous is not None
                        rel_name = pending.variable or self._fresh_name("crel")
                        if pending.direction is ast.RelDirection.RIGHT_TO_LEFT:
                            start, end = name, previous
                        else:
                            start, end = previous, name
                        actions.append(
                            UpdateAction(
                                kind="create_relationship",
                                variable=rel_name,
                                start=start,
                                end=end,
                                type=pending.types[0],
                                properties=dict(pending.properties),
                            )
                        )
                        pending = None
                    previous = name
                else:
                    pending = element
        return actions


def _split_conjuncts(expression: ast.Expression) -> list[ast.Expression]:
    """Flatten a top-level AND tree into its conjuncts."""
    if isinstance(expression, ast.BooleanOp) and expression.op == "AND":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]
