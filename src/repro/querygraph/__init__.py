"""Query graphs: the planner's view of a query part (§2.2, Figure 2).

An analyzed query is split on WITH/RETURN boundaries into *parts*; the
MATCH/WHERE clauses of each part form a :class:`QueryGraph` of pattern nodes,
pattern relationships and selection predicates, which is further split into
connected components for planning.
"""

from repro.querygraph.graph import QueryGraph, QueryNode, QueryRelationship
from repro.querygraph.builder import QueryPart, UpdateAction, build_query_parts

__all__ = [
    "QueryGraph",
    "QueryNode",
    "QueryPart",
    "QueryRelationship",
    "UpdateAction",
    "build_query_parts",
]
