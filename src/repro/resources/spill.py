"""Spill-to-disk buffers for blocking operators, shared by all engines.

Every buffer here preserves the **exact** output order of its in-memory
counterpart, so spilled and unconstrained executions return byte-identical
rows (the differential suites assert this per engine and across engines):

* :class:`SortSpillBuffer` — classic external sort: sorted run files of
  ``(key, seq, item)`` records merged with :func:`heapq.merge`. The key is
  the *composed* multi-level sort key (descending levels wrapped in
  :class:`Desc`), and ``seq`` is the input ordinal, which together reproduce
  the stability of the engines' repeated stable sorts.
* :class:`AggregationSpillBuffer` — hybrid grace hash aggregation: at
  overflow the in-memory group table is *frozen* (existing groups keep
  being fed directly, costing no new memory); rows introducing new keys are
  hash-partitioned to disk tagged with their input ordinal and replayed per
  partition at drain, then emitted in global first-occurrence order.
* :class:`DistinctSpillBuffer` — the same freeze, streaming until overflow:
  rows with unseen keys after the freeze are deferred to partitions and
  re-deduplicated at drain in first-occurrence order.
* :class:`JoinSpillBuffer` — hybrid grace hash join: build rows after the
  freeze go to build partitions; the probe side streams once, matching the
  frozen table into an output run and forwarding rows bound for spilled
  partitions; partitions are then joined one build table at a time, and all
  output runs merge on ``(probe ordinal, partner ordinal)`` — the exact
  in-memory emission order.
* :class:`AppendSpillBuffer` — an order-preserving list (cartesian product
  right side, the update engine's matched-row buffer) that overflows
  wholesale to a single sequential file and replays from disk.

Items must be picklable; every engine's buffered rows (``Row`` objects,
slot lists, materialized codegen rows) are. Spill files are created through
a :class:`SpillManager` (one per database) as ``*.spill`` files so crash
recovery and service shutdown can sweep orphans; the manager calls the
durability :class:`~repro.durability.faults.FaultInjector`'s spill
kill-points so crash tests can die mid-spill.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.resources.pool import GROUP_BYTES, KEY_BYTES, ROW_BYTES

SPILL_SUFFIX = ".spill"
DEFAULT_PARTITIONS = 4


class Desc:
    """Inverts comparisons so a descending sort level can live inside one
    composed ascending key (picklable, used inside spill-run records)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value

    def __hash__(self):
        return hash(self.value)

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state


class SpillManager:
    """Creates, tracks, and sweeps one database's ``*.spill`` files.

    In-memory databases spill into a lazily created temp directory (removed
    at :meth:`close`); durable databases :meth:`attach` their data directory
    (and fault injector) so spill files land next to the WAL, where
    ``open()`` recovery and ``_clean_orphans`` sweep them after a crash.
    """

    def __init__(self, directory=None, fault_injector=None) -> None:
        self._directory = Path(directory) if directory is not None else None
        self._tmp_directory: Optional[Path] = None
        self.fault_injector = fault_injector
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self.files_created = 0
        self.bytes_written = 0
        self.files_swept = 0

    def attach(self, directory, fault_injector=None) -> None:
        """Point future spill files at a durable database's directory."""
        self._directory = Path(directory)
        if fault_injector is not None:
            self.fault_injector = fault_injector

    @property
    def directory(self) -> Path:
        if self._directory is not None:
            return self._directory
        if self._tmp_directory is None:
            self._tmp_directory = Path(tempfile.mkdtemp(prefix="repro-spill-"))
        return self._tmp_directory

    # ------------------------------------------------------------------

    def session(self, label: str = "query") -> "SpillSession":
        return SpillSession(self, label)

    def create_path(self, label: str) -> Path:
        with self._lock:
            ordinal = next(self._counter)
            self.files_created += 1
        safe = "".join(ch if ch.isalnum() else "-" for ch in label)[:32]
        return self.directory / f"spill-{safe}-{ordinal:06d}{SPILL_SUFFIX}"

    def note_bytes(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_written += nbytes

    def reach(self, point: str) -> None:
        injector = self.fault_injector
        if injector is not None:
            injector.reach(point)

    @property
    def crashed(self) -> bool:
        injector = self.fault_injector
        return injector is not None and injector.crashed

    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Delete every ``*.spill`` file in the spill directories; returns
        the number removed (recovery, service shutdown, ``db.close``)."""
        removed = 0
        for directory in (self._directory, self._tmp_directory):
            if directory is None or not directory.is_dir():
                continue
            for path in directory.glob(f"*{SPILL_SUFFIX}"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        with self._lock:
            self.files_swept += removed
        return removed

    def close(self) -> None:
        """Sweep and drop the temp directory (idempotent)."""
        self.sweep()
        if self._tmp_directory is not None:
            shutil.rmtree(self._tmp_directory, ignore_errors=True)
            self._tmp_directory = None


class SpillWriter:
    """Sequential pickled-record writer for one spill file."""

    def __init__(self, manager: SpillManager, path: Path) -> None:
        self._manager = manager
        self.path = path
        manager.reach("spill.open")
        self._fh = open(path, "wb")
        self.records = 0

    def write(self, record) -> None:
        self._manager.reach("spill.write")
        pickle.dump(record, self._fh, protocol=pickle.HIGHEST_PROTOCOL)
        self.records += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> int:
        if self._fh.closed:
            return 0
        self._fh.close()
        nbytes = self.path.stat().st_size
        self._manager.note_bytes(nbytes)
        return nbytes


def read_spill(path: Path) -> Iterator:
    with open(path, "rb") as fh:
        while True:
            try:
                yield pickle.load(fh)
            except EOFError:
                return


class SpillSession:
    """All spill files of one query; deleted together at tracker close.

    After a simulated crash the files are deliberately *left behind* (a
    dead process cannot clean up) — that is what recovery's orphan sweep
    is for.
    """

    def __init__(self, manager: SpillManager, label: str) -> None:
        self.manager = manager
        self.label = label
        self._writers: list[SpillWriter] = []

    def writer(self, kind: str) -> SpillWriter:
        writer = SpillWriter(
            self.manager, self.manager.create_path(f"{self.label}-{kind}")
        )
        self._writers.append(writer)
        return writer

    def merge_point(self) -> None:
        self.manager.reach("spill.merge")

    def close(self) -> None:
        if self.manager.crashed:
            return
        for writer in self._writers:
            writer.close()
            try:
                writer.path.unlink()
            except OSError:
                pass
        self._writers.clear()


# ----------------------------------------------------------------------
# Order-exact spillable buffers
# ----------------------------------------------------------------------


def _run_order(entry):
    # (key, seq): never falls through to comparing the items themselves.
    return (entry[0], entry[1])


class SortSpillBuffer:
    """External sort preserving the exact order of the in-memory sort."""

    def __init__(self, tracker, op, key: Callable) -> None:
        self.tracker = tracker
        self.op = op
        self.key = key
        self._items: list = []
        self._runs: list[Path] = []
        self._base = 0

    def add(self, item) -> None:
        tracker = self.tracker
        if self._items and tracker.should_spill(self.op):
            self._flush_run()
        tracker.charge(self.op, ROW_BYTES)
        self._items.append(item)

    def _flush_run(self) -> None:
        items = self._items
        key = self.key
        base = self._base
        run = sorted(
            ((key(item), base + seq, item) for seq, item in enumerate(items)),
            key=_run_order,
        )
        session = self.tracker.session()
        writer = session.writer("sort")
        for entry in run:
            writer.write(entry)
        nbytes = writer.close()
        self._runs.append(writer.path)
        self._base += len(items)
        self.tracker.note_spill(self.op, nbytes)
        self.tracker.release(self.op, ROW_BYTES * len(items))
        self._items = []

    def __iter__(self):
        if not self._runs:
            # A single stable sort on the composed key equals the engines'
            # repeated per-level stable sorts.
            yield from sorted(self._items, key=self.key)
            return
        self.tracker.session().merge_point()
        key = self.key
        base = self._base
        tail = sorted(
            (
                (key(item), base + seq, item)
                for seq, item in enumerate(self._items)
            ),
            key=_run_order,
        )
        sources = [read_spill(path) for path in self._runs]
        if tail:
            sources.append(iter(tail))
        for _key, _seq, item in heapq.merge(*sources, key=_run_order):
            yield item


class DistinctSpillBuffer:
    """Streaming distinct that freezes its seen-set at overflow."""

    def __init__(self, tracker, op, partitions: int = DEFAULT_PARTITIONS) -> None:
        self.tracker = tracker
        self.op = op
        self._seen: set = set()
        self._frozen = False
        self._partitions = partitions
        self._writers: list[Optional[SpillWriter]] = [None] * partitions
        self._seq = 0

    def offer(self, key, item) -> bool:
        """True iff the caller should emit ``item`` now (first occurrence,
        pre-freeze). Deferred first occurrences come from :meth:`drain`."""
        self._seq += 1
        if key in self._seen:
            return False
        tracker = self.tracker
        if not self._frozen and self._seen and tracker.should_spill(self.op):
            self._frozen = True
            tracker.note_spill(self.op, 0, runs=0)
        if self._frozen:
            index = hash(key) % self._partitions
            writer = self._writers[index]
            if writer is None:
                writer = self._writers[index] = self.tracker.session().writer(
                    "distinct"
                )
            writer.write((self._seq, key, item))
            return False
        tracker.charge(self.op, KEY_BYTES)
        self._seen.add(key)
        return True

    def drain(self):
        """Deferred first-occurrence items, in original input order."""
        if not self._frozen:
            return
        self.tracker.session().merge_point()
        survivors: list = []
        for writer in self._writers:
            if writer is None:
                continue
            nbytes = writer.close()
            self.tracker.note_spill(self.op, nbytes)
            local: dict = {}
            for seq, key, item in read_spill(writer.path):
                if key not in local:
                    local[key] = (seq, item)
            survivors.extend(local.values())
        self.tracker.charge(self.op, ROW_BYTES * len(survivors))
        survivors.sort(key=lambda entry: entry[0])
        for _seq, item in survivors:
            yield item


class AggregationSpillBuffer:
    """Hybrid grace aggregation preserving first-occurrence group order.

    ``new_state(item)`` builds a fresh group state from the first item of a
    group; ``feed(state, item)`` folds one item in. Items must carry
    everything ``new_state``/``feed`` need (each engine packs its own).
    """

    def __init__(
        self,
        tracker,
        op,
        new_state: Callable,
        feed: Callable,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> None:
        self.tracker = tracker
        self.op = op
        self._new_state = new_state
        self._feed = feed
        self._groups: dict = {}
        self._frozen = False
        self._partitions = partitions
        self._writers: list[Optional[SpillWriter]] = [None] * partitions
        self._seq = 0

    @property
    def is_empty(self) -> bool:
        return not self._groups

    def add(self, key, item) -> None:
        self._seq += 1
        state = self._groups.get(key)
        if state is not None:
            self._feed(state, item)
            return
        tracker = self.tracker
        if not self._frozen and self._groups and tracker.should_spill(self.op):
            self._frozen = True
            tracker.note_spill(self.op, 0, runs=0)
        if self._frozen:
            index = hash(key) % self._partitions
            writer = self._writers[index]
            if writer is None:
                writer = self._writers[index] = self.tracker.session().writer(
                    "aggregation"
                )
            writer.write((self._seq, key, item))
            return
        tracker.charge(self.op, GROUP_BYTES)
        state = self._new_state(item)
        self._groups[key] = state
        self._feed(state, item)

    def states(self):
        """Group states in global first-occurrence order."""
        yield from self._groups.values()
        if not self._frozen:
            return
        self.tracker.session().merge_point()
        collected: list = []
        for writer in self._writers:
            if writer is None:
                continue
            nbytes = writer.close()
            self.tracker.note_spill(self.op, nbytes)
            local: dict = {}
            for seq, key, item in read_spill(writer.path):
                entry = local.get(key)
                if entry is None:
                    self.tracker.charge(self.op, GROUP_BYTES)
                    entry = local[key] = (seq, self._new_state(item))
                self._feed(entry[1], item)
            collected.extend(local.values())
        collected.sort(key=lambda entry: entry[0])
        for _seq, state in collected:
            yield state


_SPILLED_TAG_BASE = 1 << 40
"""Partner tags for post-freeze build rows; always sorts after the frozen
table's list positions, matching in-memory partner order per probe row."""


class JoinSpillBuffer:
    """Hybrid grace hash join preserving exact probe-order emission.

    ``merge(build_row, probe_row)`` returns the merged row or None (the
    engines fold their relationship-uniqueness and binding-conflict checks
    into it). In-memory mode streams matches from :meth:`probe`; once
    frozen, matches are staged into order-tagged output runs and emitted by
    :meth:`drain` in ``(probe ordinal, partner ordinal)`` order — exactly
    the in-memory order, with one spilled build partition resident at a
    time.
    """

    def __init__(
        self,
        tracker,
        op,
        merge: Callable,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> None:
        self.tracker = tracker
        self.op = op
        self._merge = merge
        self._table: dict = {}
        self._frozen = False
        self._partitions = partitions
        self._build_writers: list[Optional[SpillWriter]] = [None] * partitions
        self._build_counts = [0] * partitions
        self._probe_writers: list[Optional[SpillWriter]] = [None] * partitions
        self._frozen_out: Optional[SpillWriter] = None
        self._probe_seq = 0

    def insert(self, key, row) -> None:
        tracker = self.tracker
        if not self._frozen and self._table and tracker.should_spill(self.op):
            self._frozen = True
            tracker.note_spill(self.op, 0, runs=0)
        if self._frozen:
            index = hash(key) % self._partitions
            writer = self._build_writers[index]
            if writer is None:
                writer = self._build_writers[index] = (
                    self.tracker.session().writer("join-build")
                )
            writer.write((key, row))
            self._build_counts[index] += 1
            return
        tracker.charge(self.op, ROW_BYTES)
        self._table.setdefault(key, []).append(row)

    def probe(self, key, row):
        """Yield merged rows (in-memory mode); stage them (spill mode)."""
        merge = self._merge
        if not self._frozen:
            for build_row in self._table.get(key, ()):
                merged = merge(build_row, row)
                if merged is not None:
                    yield merged
            return
        self._probe_seq += 1
        probe_seq = self._probe_seq
        out = self._frozen_out
        if out is None:
            out = self._frozen_out = self.tracker.session().writer("join-out")
        for tag, build_row in enumerate(self._table.get(key, ())):
            merged = merge(build_row, row)
            if merged is not None:
                out.write((probe_seq, tag, merged))
        index = hash(key) % self._partitions
        if self._build_counts[index]:
            writer = self._probe_writers[index]
            if writer is None:
                writer = self._probe_writers[index] = (
                    self.tracker.session().writer("join-probe")
                )
            writer.write((probe_seq, key, row))

    def drain(self):
        """Spill-mode matches, merged back into exact probe order."""
        if not self._frozen:
            return
        self.tracker.session().merge_point()
        runs: list[Path] = []
        if self._frozen_out is not None:
            nbytes = self._frozen_out.close()
            self.tracker.note_spill(self.op, nbytes)
            runs.append(self._frozen_out.path)
        merge = self._merge
        for index in range(self._partitions):
            build_writer = self._build_writers[index]
            probe_writer = self._probe_writers[index]
            if build_writer is not None:
                self.tracker.note_spill(self.op, build_writer.close())
            if build_writer is None or probe_writer is None:
                continue
            self.tracker.note_spill(self.op, probe_writer.close())
            table: dict = {}
            loaded = 0
            for ordinal, (key, row) in enumerate(read_spill(build_writer.path)):
                table.setdefault(key, []).append(
                    (_SPILLED_TAG_BASE + ordinal, row)
                )
                loaded += 1
                self.tracker.charge(self.op, ROW_BYTES)
            out = self.tracker.session().writer("join-out")
            for probe_seq, key, probe_row in read_spill(probe_writer.path):
                for tag, build_row in table.get(key, ()):
                    merged = merge(build_row, probe_row)
                    if merged is not None:
                        out.write((probe_seq, tag, merged))
            self.tracker.note_spill(self.op, out.close())
            runs.append(out.path)
            self.tracker.release(self.op, ROW_BYTES * loaded)
        sources = [read_spill(path) for path in runs]
        for _probe_seq, _tag, merged in heapq.merge(*sources, key=_run_order):
            yield merged


class AppendSpillBuffer:
    """An append-only row buffer that overflows wholesale to one file.

    Iteration replays rows in insertion order (memory or disk); the buffer
    stays appendable between iterations, which is what the cartesian
    product's re-scanned right side needs.
    """

    def __init__(self, tracker, op) -> None:
        self.tracker = tracker
        self.op = op
        self._rows: list = []
        self._writer: Optional[SpillWriter] = None
        self._count = 0

    def add(self, row) -> None:
        tracker = self.tracker
        self._count += 1
        if self._writer is None and self._rows and tracker.should_spill(self.op):
            writer = self.tracker.session().writer("rows")
            for buffered in self._rows:
                writer.write(buffered)
            writer.flush()
            self.tracker.note_spill(self.op, 0)
            tracker.release(self.op, ROW_BYTES * len(self._rows))
            self._rows = []
            self._writer = writer
        if self._writer is not None:
            self._writer.write(row)
            return
        tracker.charge(self.op, ROW_BYTES)
        self._rows.append(row)

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        if self._writer is None:
            return iter(self._rows)
        self._writer.flush()
        return read_spill(self._writer.path)
