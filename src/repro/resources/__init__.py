"""Resource governance: memory accounting, grants, and spill-to-disk.

See :mod:`repro.resources.pool` for the budget/grant protocol and
:mod:`repro.resources.spill` for the order-exact spillable buffers the
three execution engines share.
"""

from repro.resources.pool import (
    GROUP_BYTES,
    KEY_BYTES,
    NULL_TRACKER,
    ROW_BYTES,
    MemoryPool,
    MemoryTracker,
    NullTracker,
)
from repro.resources.spill import (
    SPILL_SUFFIX,
    AggregationSpillBuffer,
    AppendSpillBuffer,
    Desc,
    DistinctSpillBuffer,
    JoinSpillBuffer,
    SortSpillBuffer,
    SpillManager,
    SpillSession,
    read_spill,
)

__all__ = [
    "AggregationSpillBuffer",
    "AppendSpillBuffer",
    "Desc",
    "DistinctSpillBuffer",
    "GROUP_BYTES",
    "JoinSpillBuffer",
    "KEY_BYTES",
    "MemoryPool",
    "MemoryTracker",
    "NULL_TRACKER",
    "NullTracker",
    "ROW_BYTES",
    "SPILL_SUFFIX",
    "SortSpillBuffer",
    "SpillManager",
    "SpillSession",
    "read_spill",
]
