"""Process-wide memory pool and per-query memory trackers.

Production engines bound query memory with a two-level scheme (Neo4j's
per-transaction memory tracker, Umbra-style morsel engines): a process-wide
*pool* holds the budget; each query receives a *grant* that doubles as its
spill threshold. This module reproduces that scheme for the three execution
engines of this repo:

* :class:`MemoryPool` — the budget. ``None`` means unbounded: charges are
  tracked (so ``ExecutionProfile`` still reports per-operator peak bytes)
  but nothing is ever denied and nothing ever spills.
* :class:`MemoryTracker` — one per query. Blocking operators charge it as
  their buffers grow. Once a query's charges exceed its grant, *spillable*
  operators (sort, aggregation, distinct, hash join, cartesian product, the
  update-buffer) move their buffers to disk; *non-spillable* charges
  (prefix-seek groups, index initialization) draw *overage* from the pool's
  free headroom instead, and only when the pool itself is exhausted does the
  query fail with :class:`~repro.errors.MemoryLimitExceeded`.

Byte costs are deliberately *deterministic estimates* (a flat cost per
buffered row / key / group), not ``sys.getsizeof`` measurements: the three
engines buffer the same logical rows in different physical shapes, and
resource governance requires them to make **identical spill decisions** so
differential tests stay exact under any budget. Real engines estimate too;
we just make the estimate engine-independent.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import MemoryLimitExceeded

ROW_BYTES = 256
"""Deterministic estimate for one buffered row (any engine)."""

KEY_BYTES = 128
"""Deterministic estimate for one distinct-key / hash-table entry."""

GROUP_BYTES = 512
"""Deterministic estimate for one aggregation group (key + accumulators)."""

DEFAULT_GRANT_FRACTION = 4
"""Default per-query grant: ``budget // DEFAULT_GRANT_FRACTION``."""

MIN_GRANT_BYTES = 4 * 1024
"""Floor for the derived default grant."""

OP_SHARE_FRACTION = 4
"""An operator's share of its query grant: ``grant // OP_SHARE_FRACTION``
(floored at :data:`MIN_OP_SHARE_BYTES`) — the minimum it must itself hold
before it may spill. Without this, one oversized buffer upstream would keep
query usage above the grant forever and make every *downstream* buffer
flush degenerate one-row runs."""

MIN_OP_SHARE_BYTES = 512
"""Floor for the per-operator spill share (two buffered rows)."""


class MemoryPool:
    """The process-wide memory budget shared by every query of a database.

    ``budget_bytes=None`` (the default) disables governance: trackers still
    account, but nothing spills and nothing is denied. With a budget, each
    query reserves a *grant* (``grant_bytes``, default ``budget // 4``) that
    admission control holds for it and that its spillable operators treat as
    the spill threshold; charges beyond the grant draw overage from the
    pool's free space under the lock, and exhaustion raises
    :class:`MemoryLimitExceeded`.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        grant_bytes: Optional[int] = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("memory budget must be positive (or None)")
        if grant_bytes is not None and grant_bytes <= 0:
            raise ValueError("memory grant must be positive (or None)")
        self.budget_bytes = budget_bytes
        if grant_bytes is None and budget_bytes is not None:
            grant_bytes = max(
                budget_bytes // DEFAULT_GRANT_FRACTION, MIN_GRANT_BYTES
            )
        if budget_bytes is not None and grant_bytes is not None:
            grant_bytes = min(grant_bytes, budget_bytes)
        self.grant_bytes = grant_bytes
        self._cond = threading.Condition(threading.Lock())
        self._granted = 0
        self._overage = 0
        self._peak = 0
        # Plain-int counters so the pool is observable (`:memory`) even
        # without a service-owned MetricsRegistry bound to it.
        self.queries_tracked = 0
        self.grants_denied = 0
        self.grant_waits = 0
        self.limit_exceeded = 0
        self.spill_runs = 0
        self.spill_bytes = 0
        self._metrics = None
        self._gauges: dict[str, Callable[[], int]] = {}

    # ------------------------------------------------------------------

    @property
    def bounded(self) -> bool:
        return self.budget_bytes is not None

    @property
    def in_use_bytes(self) -> int:
        return self._granted + self._overage

    @property
    def free_bytes(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return max(self.budget_bytes - self._granted - self._overage, 0)

    def bind_metrics(self, registry) -> None:
        """Mirror pool/spill counters into a service metrics registry."""
        self._metrics = registry

    def unbind_metrics(self, registry) -> None:
        """Detach ``registry`` if it is the bound one (so a replaced
        service never steals a successor's traffic)."""
        if self._metrics is registry:
            self._metrics = None

    def register_gauge(self, name: str, fn: Callable[[], int]) -> None:
        """Expose a cache's current byte usage in :meth:`snapshot`.

        The plan and page caches are long-lived shared state, so they are
        *accounted* (visible, never denied) rather than charged to any one
        query — mirroring the page cache being "deliberately an accounting
        layer".
        """
        self._gauges[name] = fn

    def _inc(self, name: str, amount: int = 1) -> None:
        registry = self._metrics
        if registry is not None:
            registry.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Admission grants

    def reserve_grant(
        self,
        nbytes: Optional[int] = None,
        timeout_s: Optional[float] = None,
        token=None,
    ) -> int:
        """Reserve an admission grant; returns the bytes actually reserved.

        Unbounded pools reserve nothing and return 0. Bounded pools wait up
        to ``timeout_s`` (None = don't wait) for free space, waking early if
        ``token`` is cancelled, and raise :class:`MemoryLimitExceeded` when
        the grant cannot be satisfied — the service maps that to
        backpressure at admission.
        """
        if self.budget_bytes is None:
            return 0
        if nbytes is None:
            nbytes = self.grant_bytes or 0
        nbytes = min(nbytes, self.budget_bytes)
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        waited = False
        with self._cond:
            while self._granted + self._overage + nbytes > self.budget_bytes:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                if token is not None and token.cancelled:
                    remaining = 0.0
                if remaining is None or remaining <= 0:
                    self.grants_denied += 1
                    self._inc("memory.grants_denied")
                    raise MemoryLimitExceeded(
                        "memory pool cannot grant "
                        f"{nbytes} bytes ({self.in_use_bytes} of "
                        f"{self.budget_bytes} in use)",
                        requested_bytes=nbytes,
                        budget_bytes=self.budget_bytes,
                    )
                if not waited:
                    waited = True
                    self.grant_waits += 1
                    self._inc("memory.grant_waits")
                self._cond.wait(min(remaining, 0.05))
            self._granted += nbytes
            if self._granted + self._overage > self._peak:
                self._peak = self._granted + self._overage
        return nbytes

    def release_grant(self, nbytes: int) -> None:
        if not nbytes:
            return
        with self._cond:
            self._granted = max(self._granted - nbytes, 0)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Overage (charges beyond a query's grant)

    def acquire_overage(self, nbytes: int) -> bool:
        """Try to draw ``nbytes`` beyond outstanding grants; False = full."""
        with self._cond:
            if (
                self.budget_bytes is not None
                and self._granted + self._overage + nbytes > self.budget_bytes
            ):
                return False
            self._overage += nbytes
            if self._granted + self._overage > self._peak:
                self._peak = self._granted + self._overage
        return True

    def release_overage(self, nbytes: int) -> None:
        if not nbytes:
            return
        with self._cond:
            self._overage = max(self._overage - nbytes, 0)
            self._cond.notify_all()

    # ------------------------------------------------------------------

    def tracker(
        self,
        label: str = "query",
        grant_bytes: Optional[int] = None,
        spill_manager=None,
        reserved_bytes: Optional[int] = None,
    ) -> "MemoryTracker":
        """A per-query tracker. ``reserved_bytes`` hands over a grant the
        caller already reserved (the service reserves before dispatch);
        otherwise the tracker reserves its own grant now."""
        if grant_bytes is None:
            grant_bytes = self.grant_bytes
        if reserved_bytes is None:
            reserved_bytes = self.reserve_grant(grant_bytes)
        with self._cond:
            self.queries_tracked += 1
        return MemoryTracker(
            self,
            label=label,
            grant_bytes=grant_bytes,
            reserved_bytes=reserved_bytes,
            spill_manager=spill_manager,
        )

    def note_spill(self, nbytes: int, runs: int = 1) -> None:
        with self._cond:
            self.spill_runs += runs
            self.spill_bytes += nbytes
        self._inc("spill.runs", runs)
        if nbytes:
            self._inc("spill.bytes_written", nbytes)

    def note_limit_exceeded(self) -> None:
        with self._cond:
            self.limit_exceeded += 1
        self._inc("memory.limit_exceeded")

    def snapshot(self) -> dict:
        """Pool usage + counters + cache gauges (``:memory``, metrics)."""
        with self._cond:
            base = {
                "budget_bytes": self.budget_bytes,
                "default_grant_bytes": self.grant_bytes,
                "granted_bytes": self._granted,
                "overage_bytes": self._overage,
                "in_use_bytes": self._granted + self._overage,
                "free_bytes": self.free_bytes,
                "peak_bytes": self._peak,
                "queries_tracked": self.queries_tracked,
                "grants_denied": self.grants_denied,
                "grant_waits": self.grant_waits,
                "limit_exceeded": self.limit_exceeded,
                "spill_runs": self.spill_runs,
                "spill_bytes": self.spill_bytes,
            }
        base["caches"] = {name: fn() for name, fn in self._gauges.items()}
        return base


class MemoryTracker:
    """Per-query memory accounting: grant, per-operator peaks, spill stats.

    Trackers are single-threaded (one query, one worker); only the
    grant/overage interactions with the pool take the pool lock. Operators
    charge with an opaque key — a plan node (``id(plan)`` keys the entry,
    matching ``OperatorProfile.rows``) or a string label for non-plan
    buffers (index initialization, the update buffer).
    """

    def __init__(
        self,
        pool: MemoryPool,
        label: str = "query",
        grant_bytes: Optional[int] = None,
        reserved_bytes: int = 0,
        spill_manager=None,
    ) -> None:
        self.pool = pool
        self.label = label
        #: Spill threshold; None means "never spill" (unbounded pool).
        self.grant_bytes = grant_bytes if pool.bounded else None
        self.reserved_bytes = reserved_bytes
        self.spill_manager = spill_manager
        self.used_bytes = 0
        self.peak_bytes = 0
        self.spill_runs = 0
        self.spill_bytes = 0
        self._overage = 0
        # key -> [current, peak, spills, description]
        self._per_op: dict = {}
        self._session = None
        self.closed = False

    # ------------------------------------------------------------------

    @staticmethod
    def _entry_key(op):
        return id(op) if not isinstance(op, str) else op

    @staticmethod
    def _describe(op) -> str:
        return op if isinstance(op, str) else op.describe()

    def charge(self, op, nbytes: int) -> None:
        """Account ``nbytes`` against ``op``; may raise
        :class:`MemoryLimitExceeded` when the pool is exhausted."""
        key = self._entry_key(op)
        slot = self._per_op.get(key)
        if slot is None:
            slot = self._per_op[key] = [0, 0, 0, self._describe(op)]
        slot[0] += nbytes
        if slot[0] > slot[1]:
            slot[1] = slot[0]
        used = self.used_bytes + nbytes
        self.used_bytes = used
        if used > self.peak_bytes:
            self.peak_bytes = used
        if not self.pool.bounded:
            return
        budgeted = self.reserved_bytes + self._overage
        if used > budgeted:
            delta = used - budgeted
            if not self.pool.acquire_overage(delta):
                self.pool.note_limit_exceeded()
                raise MemoryLimitExceeded(
                    f"query {self.label!r} needs {delta} bytes beyond its "
                    f"{self.reserved_bytes}-byte grant but the pool "
                    f"({self.pool.budget_bytes} bytes) is exhausted",
                    requested_bytes=delta,
                    budget_bytes=self.pool.budget_bytes or 0,
                )
            self._overage += delta

    def release(self, op, nbytes: int) -> None:
        key = self._entry_key(op)
        slot = self._per_op.get(key)
        if slot is not None:
            slot[0] = max(slot[0] - nbytes, 0)
        self.used_bytes = max(self.used_bytes - nbytes, 0)
        if self._overage:
            spare = self.reserved_bytes + self._overage - self.used_bytes
            give_back = min(self._overage, max(spare, 0))
            if give_back:
                self._overage -= give_back
                self.pool.release_overage(give_back)

    def should_spill(self, op) -> bool:
        """True once the query exceeds its grant AND ``op`` itself holds a
        meaningful share of it.

        Both conditions depend only on the engine-independent charge
        sequence, so the three engines still make identical spill
        decisions. The per-operator share stops a resident upstream buffer
        (e.g. aggregation states that live until the query ends) from
        forcing a downstream sort to flush a run per row.
        """
        if self.grant_bytes is None or self.used_bytes < self.grant_bytes:
            return False
        slot = self._per_op.get(self._entry_key(op))
        if slot is None:
            return False
        share = max(
            self.grant_bytes // OP_SHARE_FRACTION, MIN_OP_SHARE_BYTES
        )
        return slot[0] >= share

    def note_spill(self, op, nbytes: int, runs: int = 1) -> None:
        key = self._entry_key(op)
        slot = self._per_op.get(key)
        if slot is None:
            slot = self._per_op[key] = [0, 0, 0, self._describe(op)]
        slot[2] += runs
        self.spill_runs += runs
        self.spill_bytes += nbytes
        self.pool.note_spill(nbytes, runs)

    def session(self):
        """The lazily created spill-file session for this query."""
        if self._session is None:
            if self.spill_manager is None:
                raise RuntimeError(
                    "operator tried to spill but the tracker has no spill "
                    "manager (Executor used without a GraphDatabase?)"
                )
            self._session = self.spill_manager.session(self.label)
        return self._session

    # ------------------------------------------------------------------

    def merge_into_profile(self, operators) -> None:
        """Copy per-operator peaks/spills into an ``OperatorProfile``."""
        for key, (current, peak, spills, desc) in self._per_op.items():
            del current
            operators.record_memory(key, peak, spills, desc)

    def per_operator(self) -> dict:
        """``description -> (peak_bytes, spill_runs)`` for displays."""
        out: dict = {}
        for _key, (_cur, peak, spills, desc) in self._per_op.items():
            prev = out.get(desc)
            if prev is not None:
                peak = max(peak, prev[0])
                spills += prev[1]
            out[desc] = (peak, spills)
        return out

    def close(self) -> None:
        """Release every charge, the grant, and the spill files (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self._session is not None:
            self._session.close()
            self._session = None
        self.used_bytes = 0
        for slot in self._per_op.values():
            slot[0] = 0
        if self._overage:
            self.pool.release_overage(self._overage)
            self._overage = 0
        if self.reserved_bytes:
            self.pool.release_grant(self.reserved_bytes)
            self.reserved_bytes = 0


class NullTracker:
    """No-op tracker for direct ``Executor`` use outside a database."""

    pool = None
    grant_bytes = None
    used_bytes = 0
    peak_bytes = 0
    spill_runs = 0
    spill_bytes = 0
    closed = False

    def charge(self, op, nbytes: int) -> None:
        pass

    def release(self, op, nbytes: int) -> None:
        pass

    def should_spill(self, op) -> bool:
        return False

    def note_spill(self, op, nbytes: int, runs: int = 1) -> None:
        pass

    def session(self):
        raise RuntimeError("NullTracker cannot spill")

    def merge_into_profile(self, operators) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACKER = NullTracker()
