"""Blocking network client for the :mod:`repro.server` binary protocol.

>>> from repro.client import Client
>>> with Client("127.0.0.1", 7687) as client:
...     outcome = client.execute("MATCH (n:Person) RETURN n.name AS name")
...     outcome.rows
[{'name': ...}]
"""

from repro.client.client import (
    Client,
    PreparedStatement,
    RemoteOutcome,
    StreamingResult,
)

__all__ = ["Client", "PreparedStatement", "RemoteOutcome", "StreamingResult"]
