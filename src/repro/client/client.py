"""The blocking client: connect/execute/prepare/stream over the wire protocol.

A :class:`Client` owns one TCP connection = one server session. Requests on
a session are processed in order, so the client is free to *pipeline*:
:meth:`Client.execute` writes RUN and PULL back-to-back in a single send
and then reads both responses, halving round-trips. :meth:`Client.stream`
returns a :class:`StreamingResult` that pulls rows in bounded credit cycles
— the server parks the rest, which is exactly the credit-based backpressure
the protocol is built around.

Server-side errors arrive as structured FAILURE frames and are re-raised
as their original :mod:`repro.errors` classes (``CypherSyntaxError``,
``ServiceOverloadedError``, ``QueryTimeoutError``, …) with a ``retryable``
attribute attached.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import wire
from repro.errors import ProtocolError, ReproError


@dataclass(frozen=True)
class PreparedStatement:
    """A server-side prepared statement handle."""

    stmt: int
    query: str
    columns: tuple[str, ...]
    is_write: bool


@dataclass
class RemoteOutcome:
    """A completed remote query: rows plus the server's summary statistics
    (mirrors :class:`repro.service.QueryOutcome`)."""

    rows: list[dict] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    queue_seconds: float = 0.0
    total_seconds: float = 0.0
    attempts: int = 1
    max_intermediate_cardinality: int = 0
    page_cache_hits: int = 0
    page_cache_misses: int = 0
    peak_memory_bytes: int = 0
    spill_runs: int = 0
    commit_lsn: Optional[int] = None
    """The write's WAL sequence number — the read-your-writes token."""

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @classmethod
    def from_summary(
        cls, rows: list[dict], columns: list[str], summary: dict
    ) -> "RemoteOutcome":
        outcome = cls(rows=rows, columns=columns)
        for name in (
            "planning_seconds",
            "execution_seconds",
            "queue_seconds",
            "total_seconds",
            "attempts",
            "max_intermediate_cardinality",
            "page_cache_hits",
            "page_cache_misses",
            "peak_memory_bytes",
            "spill_runs",
            "commit_lsn",
        ):
            if name in summary and summary[name] is not None:
                setattr(outcome, name, summary[name])
        return outcome


class Client:
    """One blocking connection to a :mod:`repro.server` instance."""

    def __init__(
        self,
        host: str,
        port: int,
        auth_token: Optional[str] = None,
        connect_timeout_s: float = 10.0,
        io_timeout_s: Optional[float] = 120.0,
        client_name: str = "repro.client",
    ) -> None:
        self._sock: Optional[socket.socket] = socket.create_connection(
            (host, port), timeout=connect_timeout_s
        )
        self._sock.settimeout(io_timeout_s)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._frames = wire.FrameReader()
        self._stream: Optional["StreamingResult"] = None
        auth = {"token": auth_token} if auth_token is not None else {}
        self._send(
            wire.MSG_HELLO,
            {
                "versions": list(wire.SUPPORTED_VERSIONS),
                "auth": auth,
                "client": client_name,
            },
        )
        fields = self._expect_success()
        #: Negotiated protocol version and the server's banner string.
        self.protocol_version: int = fields.get("version", 0)
        self.server_info: str = fields.get("server", "")
        self.session_id = fields.get("session")

    # ------------------------------------------------------------------
    # Wire I/O
    # ------------------------------------------------------------------

    def _send(self, tag: int, fields: dict) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._sock.sendall(wire.encode_frame(tag, fields))

    def _send_many(self, *frames: tuple[int, dict]) -> None:
        """Pipelined write: several request frames in one send."""
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._sock.sendall(
            b"".join(wire.encode_frame(tag, fields) for tag, fields in frames)
        )

    def _recv(self) -> tuple[int, dict]:
        if self._sock is None:
            raise ProtocolError("client is closed")
        while True:
            frame = self._frames.pop()
            if frame is not None:
                return frame
            data = self._sock.recv(1 << 16)
            if not data:
                self._frames.close()  # raises if a frame is torn
                raise ProtocolError("connection closed by server")
            self._frames.feed(data)

    def _expect_success(self) -> dict:
        tag, fields = self._recv()
        if tag == wire.MSG_FAILURE:
            wire.raise_failure(fields)
        if tag != wire.MSG_SUCCESS:
            raise ProtocolError(
                f"expected SUCCESS, got {wire.MESSAGE_NAMES.get(tag, tag)}"
            )
        return fields

    def _check_no_stream(self) -> None:
        if self._stream is not None and not self._stream.closed:
            raise ProtocolError(
                "a streamed result is still open — exhaust or close() it first"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def execute(
        self,
        query: Optional[str] = None,
        stmt: Optional[PreparedStatement | int] = None,
        deadline_s: Optional[float] = None,
        require_lsn: Optional[int] = None,
        retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> RemoteOutcome:
        """Run a query (text or prepared statement) and fetch every row.

        RUN and PULL(-1) are pipelined in one socket write; the rows come
        back as RECORD chunks followed by the summary SUCCESS.

        ``require_lsn`` is the read-your-writes token: pass a previous
        write's ``commit_lsn`` and the server (typically a replica, or the
        router on your behalf) will wait until it has applied at least that
        LSN before executing — or fail retryably with ``StalenessError``.

        ``retries`` re-runs the request after a *structured, retryable*
        failure (``exc.retryable`` — staleness, overload, a failover in
        progress surfacing as ``LeaderUnavailableError``) with doubling
        backoff starting at ``retry_backoff_s``. Only clean FAILURE frames
        qualify: the session survived them, so re-running is a fresh
        request. A lost connection is never retried here — for a write it
        is ambiguous whether it applied, so reconnect and verify instead.
        """
        self._check_no_stream()
        run_fields = self._run_fields(query, stmt, deadline_s, require_lsn)
        delay = retry_backoff_s
        attempts = max(0, retries)
        for attempt in range(attempts + 1):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
            try:
                return self._execute_once(run_fields)
            except ReproError as exc:
                if attempt >= attempts or not getattr(exc, "retryable", False):
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def _execute_once(self, run_fields: dict) -> RemoteOutcome:
        self._send_many(
            (wire.MSG_RUN, run_fields), (wire.MSG_PULL, {"n": -1})
        )
        tag, run_reply = self._recv()
        if tag == wire.MSG_FAILURE:
            # RUN failed; the pipelined PULL then fails against no open
            # result — consume that response so the session stays in sync.
            exc = wire.failure_exception(run_reply)
            self._recv()
            raise exc
        if tag != wire.MSG_SUCCESS:
            raise ProtocolError(
                f"expected SUCCESS, got {wire.MESSAGE_NAMES.get(tag, tag)}"
            )
        columns = list(run_reply.get("columns") or [])
        rows: list[dict] = []
        while True:
            tag, fields = self._recv()
            if tag == wire.MSG_RECORD:
                for values in fields.get("rows", []):
                    rows.append(dict(zip(columns, values)))
            elif tag == wire.MSG_SUCCESS:
                return RemoteOutcome.from_summary(rows, columns, fields)
            elif tag == wire.MSG_FAILURE:
                wire.raise_failure(fields)
            else:
                raise ProtocolError(
                    f"unexpected {wire.MESSAGE_NAMES.get(tag, tag)} "
                    "while streaming"
                )

    def prepare(self, query: str) -> PreparedStatement:
        """Plan a query server-side; returns a reusable statement handle."""
        self._check_no_stream()
        self._send(wire.MSG_PREPARE, {"query": query})
        fields = self._expect_success()
        return PreparedStatement(
            stmt=fields["stmt"],
            query=query,
            columns=tuple(fields.get("columns") or ()),
            is_write=bool(fields.get("is_write")),
        )

    def stream(
        self,
        query: Optional[str] = None,
        stmt: Optional[PreparedStatement | int] = None,
        deadline_s: Optional[float] = None,
        credit: int = 256,
        require_lsn: Optional[int] = None,
    ) -> "StreamingResult":
        """Run a query and iterate rows in bounded credit cycles.

        Unpulled rows stay parked on the server (credit-based
        backpressure). Exhaust the iterator or ``close()`` it before
        issuing the next request on this client.
        """
        if credit < 1:
            raise ValueError("credit must be positive")
        self._check_no_stream()
        self._send(
            wire.MSG_RUN, self._run_fields(query, stmt, deadline_s, require_lsn)
        )
        run_reply = self._expect_success()
        columns = list(run_reply.get("columns") or [])
        self._stream = StreamingResult(self, columns, credit)
        return self._stream

    def status(self, announce_epoch: Optional[int] = None) -> dict:
        """The server's STATUS fields: role, epoch, LSN watermarks,
        replication lag, subscriber/session counts.

        ``announce_epoch`` gossips a leader epoch you have observed
        elsewhere — a leader hearing a higher one fences itself (stops
        acknowledging writes) before replying."""
        self._check_no_stream()
        fields: dict = {}
        if announce_epoch is not None:
            fields["epoch"] = announce_epoch
        self._send(wire.MSG_STATUS, fields)
        return self._expect_success()

    def promote(self) -> dict:
        """Promote the connected replica to leader (PROMOTE admin frame).

        The server drains its apply loop, verifies its WAL tail, bumps
        the persisted epoch, and flips writable. Returns the new
        ``role``/``epoch``/``promote_lsn``/``applied_lsn`` fields."""
        self._check_no_stream()
        self._send(wire.MSG_PROMOTE, {})
        return self._expect_success()

    def repoint(self, leader: str) -> dict:
        """Re-point the connected replica's tailer at ``leader``
        (``host:port``); it resubscribes from its applied LSN."""
        self._check_no_stream()
        self._send(wire.MSG_REPOINT, {"leader": leader})
        return self._expect_success()

    @staticmethod
    def _run_fields(
        query: Optional[str],
        stmt: Optional[PreparedStatement | int],
        deadline_s: Optional[float],
        require_lsn: Optional[int] = None,
    ) -> dict:
        if (query is None) == (stmt is None):
            raise ValueError("pass exactly one of query or stmt")
        fields: dict = {}
        if query is not None:
            fields["query"] = query
        else:
            fields["stmt"] = stmt.stmt if isinstance(stmt, PreparedStatement) else stmt
        if deadline_s is not None:
            fields["deadline_s"] = deadline_s
        if require_lsn is not None:
            fields["require_lsn"] = require_lsn
        return fields

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Clear server-side session state (drops any open result)."""
        if self._stream is not None:
            self._stream._abandon()
        self._send(wire.MSG_RESET, {})
        self._expect_success()

    def close(self) -> None:
        """Say GOODBYE and close the socket (idempotent)."""
        sock, self._sock = self._sock, None
        if sock is None:
            return
        try:
            sock.sendall(wire.encode_frame(wire.MSG_GOODBYE, {}))
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._sock is None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class StreamingResult:
    """Iterator over a streamed result, pulling one credit cycle at a time.

    Between ``__next__`` calls the wire is always at a request boundary, so
    :meth:`close` can cleanly DISCARD the remainder server-side.
    """

    def __init__(self, client: Client, columns: list[str], credit: int) -> None:
        self._client = client
        self.columns = columns
        self._credit = credit
        self._buffer: list[dict] = []
        self._exhausted = False
        self._closed = False
        #: The server's summary fields, available once the stream ends.
        self.summary: Optional[dict] = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __iter__(self) -> Iterator[dict]:
        return self

    def __next__(self) -> dict:
        while not self._buffer:
            if self._exhausted:
                self._finish()
                raise StopIteration
            self._pull_cycle()
        return self._buffer.pop(0)

    def _pull_cycle(self) -> None:
        client = self._client
        client._send(wire.MSG_PULL, {"n": self._credit})
        while True:
            tag, fields = client._recv()
            if tag == wire.MSG_RECORD:
                for values in fields.get("rows", []):
                    self._buffer.append(dict(zip(self.columns, values)))
            elif tag == wire.MSG_SUCCESS:
                if not fields.get("has_more"):
                    self.summary = fields
                    self._exhausted = True
                return
            elif tag == wire.MSG_FAILURE:
                self._exhausted = True
                self._finish()
                wire.raise_failure(fields)
            else:
                raise ProtocolError(
                    f"unexpected {wire.MESSAGE_NAMES.get(tag, tag)} "
                    "while streaming"
                )

    def close(self) -> None:
        """Discard the un-pulled remainder server-side (idempotent)."""
        if self._closed:
            return
        if not self._exhausted and not self._client.closed:
            self._client._send(wire.MSG_DISCARD, {})
            self.summary = self._client._expect_success()
            self._exhausted = True
        self._finish()

    def _finish(self) -> None:
        self._closed = True
        if self._client._stream is self:
            self._client._stream = None

    def _abandon(self) -> None:
        """Mark closed without wire traffic (the client is RESETting)."""
        self._exhausted = True
        self._finish()

    def __enter__(self) -> "StreamingResult":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
