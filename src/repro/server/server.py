"""The asyncio binary-protocol server fronting one :class:`QueryService`.

One :class:`_Session` per TCP connection. Each session runs two coroutines:

* a **read loop** that parses frames off the socket as fast as they arrive
  and queues them (bounded), so requests *pipeline* — a client may write
  HELLO RUN PULL RUN PULL back-to-back and the responses come back in
  order — and so a client disconnect is noticed immediately, even while a
  query of that session is still executing (its cancellation token is
  triggered: disconnect → cooperative cancel at the next row boundary);
* a **dispatch loop** that handles the queued requests strictly in order.

Queries run through the shared :class:`~repro.service.QueryService`, so
admission control, deadlines, write-conflict retry, memory grants and the
slow-query watchdog all apply per remote session; service errors travel
back as structured FAILURE frames (:func:`repro.wire.failure_fields`).

Result rows stream in bounded chunks under **credit-based backpressure**:
a PULL grants credit for ``n`` rows, the server sends at most that many
(in ``chunk_rows``-sized RECORD frames, each followed by a socket drain
bounded by ``write_buffer_high_bytes``), then parks the rest of the
materialized, memory-governed result until the client asks again. A
credit-exhausted pause is counted in ``server.backpressure_stalls``; a
socket-buffer-full pause in ``server.drain_stalls``. A slow client
therefore costs the server nothing beyond its own (already admitted and
memory-accounted) result — other sessions stream unhindered.

Metrics go to the service's :class:`~repro.service.MetricsRegistry` under
the ``server.*`` prefix: sessions opened/closed, frames and bytes in/out,
rows/bytes streamed, stalls, disconnect cancels, protocol errors.
"""

from __future__ import annotations

import asyncio
import hmac
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro import wire
from repro.durability.faults import SimulatedCrashError
from repro.durability.operations import decode_record, record_seq
from repro.durability.wal import iter_tail_frames
from repro.errors import (
    AuthenticationError,
    ProtocolError,
    QueryCancelledError,
    ReadOnlyReplicaError,
    ReplicationError,
    ReproError,
    ServiceShutdownError,
    StaleEpochError,
    StalenessError,
)
from repro.service import QueryOutcome, QueryService

_EOF = object()

SNAPSHOT_CHUNK_BYTES = 4 << 20
"""Checkpoint files ship in chunks of at most this many bytes per
SNAPSHOT_FILE frame (well under the wire's MAX_FRAME_BYTES)."""


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for a :class:`Server`."""

    host: str = "127.0.0.1"
    """Interface to bind (loopback by default; this is a reproduction, not
    a hardened daemon)."""

    port: int = 7687
    """TCP port; ``0`` binds an ephemeral port (see :attr:`Server.address`)."""

    auth_token: Optional[str] = None
    """When set, HELLO must carry ``auth.token`` equal to this value or the
    session is rejected with :class:`AuthenticationError`."""

    chunk_rows: int = 64
    """Rows per RECORD frame while streaming a result."""

    handshake_timeout_s: float = 10.0
    """How long a fresh connection may take to send HELLO."""

    request_queue_frames: int = 64
    """Pipelined requests buffered per session before the read loop stops
    reading (TCP backpressure onto the client)."""

    write_buffer_high_bytes: int = 1 << 16
    """Transport write-buffer high-water mark; streaming pauses (and counts
    a ``server.drain_stalls``) whenever the socket buffer exceeds it."""

    drain_timeout_s: float = 10.0
    """Graceful-drain budget: on :meth:`Server.drain`, busy sessions get
    this long to finish their current request/stream before their queries
    are cancelled and their connections closed."""

    wait_threads: int = 64
    """Threads used to await blocking service tickets (each busy session
    parks one; they spend their life blocked on an event, so this merely
    caps concurrently *awaited* queries, not executed ones)."""

    replica_of: Optional[str] = None
    """When set (``host:port`` of the leader), this server *starts as* a
    read-only replica: write statements are rejected with a structured
    :class:`~repro.errors.ReadOnlyReplicaError` naming the leader, and
    SUBSCRIBE is refused (no chaining). The role is dynamic state on
    :class:`Server` — a ``PROMOTE`` flips it to leader in place."""

    ship_poll_s: float = 0.02
    """Leader-side shipping: how often an idle subscriber session polls the
    log for newly durable records."""

    ship_batch_records: int = 256
    """At most this many records per WAL_SEGMENT frame."""

    ship_batch_bytes: int = 1 << 20
    """Flush a WAL_SEGMENT frame once its records reach this many bytes."""

    ship_unacked_high_bytes: int = 4 << 20
    """Backpressure high-water mark: a subscriber with more than this many
    shipped-but-unacknowledged bytes in flight is not sent more segments
    until WAL_ACKs drain the window (a stalled replica cannot make the
    leader buffer unboundedly)."""

    heartbeat_s: float = 1.0
    """Ship an empty WAL_SEGMENT (heartbeat, carrying ``durable_lsn``) when
    nothing was sent for this long; replicas answer with a WAL_ACK carrying
    their applied LSN, which feeds the leader's lag accounting."""

    require_lsn_wait_s: float = 5.0
    """How long a RUN carrying ``require_lsn`` may wait for this server to
    apply/publish that LSN before failing with
    :class:`~repro.errors.StalenessError` (read-your-writes bound)."""

    def __post_init__(self) -> None:
        if self.chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        if self.request_queue_frames < 1:
            raise ValueError("request_queue_frames must be positive")
        if self.wait_threads < 1:
            raise ValueError("wait_threads must be positive")


class Server:
    """Asyncio TCP front door over one :class:`QueryService`."""

    def __init__(
        self, service: QueryService, config: Optional[ServerConfig] = None
    ) -> None:
        self.service = service
        self.config = config or ServerConfig()
        self.metrics = service.metrics
        self._sessions: set["_Session"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._draining = False
        self._next_session = 0
        self.address: Optional[tuple[str, int]] = None
        # Leader-side subscriber registry: session id -> shipping state
        # (shipped/applied LSNs, bytes). Mutated only from the event loop;
        # read by STATUS and the service metrics.
        self.subscribers: dict[int, dict] = {}
        # Set by the --replica-of entrypoint (and replica tests) so STATUS
        # can report the tailer's connection state and lag.
        self.replica = None
        # Failover state: unlike the frozen config it starts from, the
        # role is dynamic — a PROMOTE flips a replica to leader in place.
        self.role = "replica" if self.config.replica_of else "leader"
        self.leader_name: Optional[str] = self.config.replica_of
        # Highest epoch this (leader) server has been fenced by: gossip —
        # a STATUS or SUBSCRIBE carrying a higher epoch than ours means a
        # promotion superseded us. A fenced leader never acknowledges
        # another write and refuses subscriptions.
        self.fenced_by: Optional[int] = None

    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.wait_threads,
            thread_name_prefix="repro-server-wait",
        )
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    @property
    def sessions_open(self) -> int:
        return len(self._sessions)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def epoch(self) -> int:
        """The leader epoch this server serves under (1 when non-durable)."""
        engine = self.service.db.durability
        return engine.epoch if engine is not None else 1

    def fence(self, epoch: int) -> None:
        """Record that a higher epoch superseded this leader: from now on
        it rejects writes and subscriptions with a retryable
        :class:`StaleEpochError` until it rejoins as a replica."""
        if self.fenced_by is None or epoch > self.fenced_by:
            if self.fenced_by is None:
                self.metrics.counter("server.fenced").inc()
            self.fenced_by = epoch

    def promote(self) -> int:
        """Flip this replica into the new leader (blocking; runs in a
        wait thread). Stops the tailer (keeping the database open),
        verifies the WAL tail and bumps the persisted epoch through
        :meth:`DurabilityEngine.promote`, then makes the service writable
        by flipping the role — SUBSCRIBE works immediately after (shipping
        is per-session), so survivors can re-point here."""
        engine = self.service.db.durability
        if engine is None:
            raise ReplicationError("cannot promote a non-durable server")
        if self.role != "replica":
            raise ReplicationError(
                f"only a replica can be promoted (this server is a "
                f"{self.role} at epoch {engine.epoch})"
            )
        replica = self.replica
        if replica is not None:
            replica.stop_tailing()
        new_epoch = engine.promote()
        self.role = "leader"
        self.leader_name = None
        self.fenced_by = None
        self.metrics.counter("server.promotions").inc()
        return new_epoch

    def status_fields(self) -> dict:
        """The STATUS response: role, epoch, LSN watermarks, subscriber lag."""
        db = self.service.db
        engine = db.durability
        fields: dict = {
            "role": self.role,
            "epoch": self.epoch,
            "fenced": self.fenced_by is not None,
            "published_lsn": db.store.mvcc.published,
            "sessions": self.sessions_open,
            "draining": self._draining,
        }
        if self.fenced_by is not None:
            fields["fenced_by"] = self.fenced_by
        if self.leader_name:
            fields["leader"] = self.leader_name
        if engine is not None:
            position = engine.replication_position()
            fields["applied_lsn"] = engine.applied_lsn()
            fields["durable_lsn"] = position["durable_seq"]
            fields["segment_floor"] = position["segment_floor"]
            fields["promote_lsn"] = position["promote_lsn"]
        else:
            fields["applied_lsn"] = db.store.mvcc.published
        replica = self.replica
        if replica is not None:
            fields.update(replica.status_fields())
        fields["subscribers"] = [
            {
                "session": session_id,
                "shipped_lsn": sub["shipped_lsn"],
                "applied_lsn": sub["applied_lsn"],
                "bytes_shipped": sub["bytes_shipped"],
                "unacked_bytes": sum(size for _seq, size in sub["in_flight"]),
            }
            for session_id, sub in sorted(self.subscribers.items())
        ]
        return fields

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, let busy sessions finish
        their current request (up to ``drain_timeout_s``), then cancel
        stragglers' queries and close every connection."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        for session in list(self._sessions):
            session.poke_drain()
        deadline = loop.time() + self.config.drain_timeout_s
        while self._sessions and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for session in list(self._sessions):
            self.metrics.counter("server.drain_aborts").inc()
            session.abort()
        # Aborted transports unwind promptly; bound the wait regardless.
        deadline = loop.time() + 5.0
        while self._sessions and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_session += 1
        session = _Session(self, self._next_session, reader, writer)
        self._sessions.add(session)
        self.metrics.counter("server.sessions_opened").inc()
        try:
            await session.run()
        finally:
            self._sessions.discard(session)
            self.metrics.counter("server.sessions_closed").inc()


class _OpenResult:
    """A completed query's rows, parked server-side awaiting PULL credit."""

    def __init__(self, outcome: QueryOutcome) -> None:
        self.outcome = outcome
        self.columns = outcome.columns
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self.outcome.rows) - self._cursor

    def next_chunk(self, limit: int) -> list[list]:
        rows = self.outcome.rows[self._cursor : self._cursor + limit]
        self._cursor += len(rows)
        return [
            [wire.wire_value(row.get(column)) for column in self.columns]
            for row in rows
        ]

    def summary(self) -> dict:
        outcome = self.outcome
        return {
            "has_more": False,
            "rows_total": outcome.row_count,
            "planning_seconds": outcome.planning_seconds,
            "execution_seconds": outcome.execution_seconds,
            "queue_seconds": outcome.queue_seconds,
            "total_seconds": outcome.total_seconds,
            "attempts": outcome.attempts,
            "max_intermediate_cardinality": outcome.max_intermediate_cardinality,
            "page_cache_hits": outcome.page_cache_hits,
            "page_cache_misses": outcome.page_cache_misses,
            "peak_memory_bytes": outcome.peak_memory_bytes,
            "spill_runs": outcome.spill_runs,
            "commit_lsn": outcome.commit_lsn,
        }


class _Session:
    """One connection: handshake, pipelined dispatch, streamed results."""

    def __init__(
        self,
        server: Server,
        session_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.session_id = session_id
        self.config = server.config
        self.metrics = server.metrics
        self._reader = reader
        self._writer = writer
        self._requests: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.request_queue_frames
        )
        self._statements: dict[int, str] = {}
        self._next_statement = 1
        self._result: Optional[_OpenResult] = None
        self._ticket = None
        self._busy = False
        self._disconnected = False
        transport = writer.transport
        if transport is not None:
            transport.set_write_buffer_limits(
                high=self.config.write_buffer_high_bytes
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> None:
        read_task: Optional[asyncio.Task] = None
        try:
            if not await self._handshake():
                return
            read_task = asyncio.get_running_loop().create_task(self._read_loop())
            while True:
                item = await self._requests.get()
                if item is _EOF:
                    break
                if isinstance(item, ProtocolError):
                    await self._send_failure(item)
                    break
                tag, fields = item
                if tag == wire.MSG_GOODBYE:
                    break
                self._busy = True
                try:
                    await self._dispatch(tag, fields)
                finally:
                    self._busy = False
                if self.server.draining and self._result is None:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if read_task is not None:
                read_task.cancel()
            self._cancel_inflight()
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def poke_drain(self) -> None:
        """Drain notification: close now if idle, else let the dispatch
        loop finish the current request/stream first."""
        if not self._busy and self._result is None:
            self._writer.close()

    def abort(self) -> None:
        """Hard close: cancel the in-flight query and drop the transport."""
        self._cancel_inflight()
        self._writer.close()

    def _cancel_inflight(self) -> None:
        ticket = self._ticket
        if ticket is not None and not ticket.done:
            self.metrics.counter("server.disconnect_cancels").inc()
            ticket.cancel()

    # ------------------------------------------------------------------
    # Frame I/O
    # ------------------------------------------------------------------

    async def _read_frame(self) -> Optional[tuple[int, dict]]:
        """One decoded frame, or None on clean EOF."""
        try:
            header = await self._reader.readexactly(wire.FRAME_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise ProtocolError(
                    "connection closed mid-frame header"
                ) from exc
            return None
        length, crc = wire.FRAME_HEADER.unpack(header)
        if length == 0 or length > wire.MAX_FRAME_BYTES:
            raise ProtocolError(f"implausible frame length {length}")
        try:
            payload = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-frame") from exc
        if zlib.crc32(payload) != crc:
            raise ProtocolError("frame CRC mismatch")
        self.metrics.counter("server.frames_in").inc()
        self.metrics.counter("server.bytes_in").inc(
            wire.FRAME_HEADER.size + length
        )
        return wire.decode_payload(payload)

    async def _read_loop(self) -> None:
        """Parse frames as they arrive; notices disconnects immediately and
        cancels the in-flight query (client gone → token cancel)."""
        try:
            while True:
                frame = await self._read_frame()
                if frame is None:
                    break
                await self._requests.put(frame)
        except ProtocolError as exc:
            self.metrics.counter("server.protocol_errors").inc()
            self._disconnected = True
            self._cancel_inflight()
            await self._requests.put(exc)
            return
        except (ConnectionError, OSError):
            pass
        self._disconnected = True
        self._cancel_inflight()
        await self._requests.put(_EOF)

    async def _send(self, tag: int, fields: dict) -> None:
        # Control frames are small; drain-stall accounting only matters on
        # the credit-based PULL stream (see _on_pull), which is where the
        # write buffer can actually fill.
        data = wire.encode_frame(tag, fields)
        self._writer.write(data)
        self.metrics.counter("server.frames_out").inc()
        self.metrics.counter("server.bytes_out").inc(len(data))
        await self._writer.drain()

    async def _send_failure(self, exc: BaseException) -> None:
        self.metrics.counter("server.failures_sent").inc()
        try:
            await self._send(wire.MSG_FAILURE, wire.failure_fields(exc))
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    async def _handshake(self) -> bool:
        try:
            frame = await asyncio.wait_for(
                self._read_frame(), timeout=self.config.handshake_timeout_s
            )
        except (asyncio.TimeoutError, ProtocolError, ConnectionError):
            self.metrics.counter("server.handshakes_failed").inc()
            return False
        if frame is None or frame[0] != wire.MSG_HELLO:
            self.metrics.counter("server.handshakes_failed").inc()
            if frame is not None:
                await self._send_failure(
                    ProtocolError("first message must be HELLO")
                )
            return False
        fields = frame[1]
        versions = fields.get("versions")
        if not isinstance(versions, list):
            versions = []
        common = [v for v in wire.SUPPORTED_VERSIONS if v in versions]
        if not common:
            self.metrics.counter("server.handshakes_failed").inc()
            await self._send_failure(
                ProtocolError(
                    f"no common protocol version (server speaks "
                    f"{list(wire.SUPPORTED_VERSIONS)}, client offered "
                    f"{versions})"
                )
            )
            return False
        expected = self.config.auth_token
        if expected is not None:
            auth = fields.get("auth")
            token = auth.get("token") if isinstance(auth, dict) else None
            if not isinstance(token, str) or not hmac.compare_digest(
                token, expected
            ):
                self.metrics.counter("server.auth_rejections").inc()
                await self._send_failure(
                    AuthenticationError("invalid or missing auth token")
                )
                return False
        await self._send(
            wire.MSG_SUCCESS,
            {
                "version": max(common),
                "server": _server_banner(),
                "session": self.session_id,
                "role": self.server.role,
                "epoch": self.server.epoch,
            },
        )
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, tag: int, fields: dict) -> None:
        if tag == wire.MSG_RUN:
            await self._on_run(fields)
        elif tag == wire.MSG_PULL:
            await self._on_pull(fields)
        elif tag == wire.MSG_DISCARD:
            await self._on_discard()
        elif tag == wire.MSG_PREPARE:
            await self._on_prepare(fields)
        elif tag == wire.MSG_RESET:
            await self._on_reset()
        elif tag == wire.MSG_STATUS:
            await self._on_status(fields)
        elif tag == wire.MSG_SUBSCRIBE:
            await self._on_subscribe(fields)
        elif tag == wire.MSG_PROMOTE:
            await self._on_promote(fields)
        elif tag == wire.MSG_REPOINT:
            await self._on_repoint(fields)
        elif tag == wire.MSG_WAL_ACK:
            await self._send_failure(
                ProtocolError("WAL_ACK outside an active subscription")
            )
        elif tag == wire.MSG_HELLO:
            await self._send_failure(ProtocolError("session already started"))
        else:
            await self._send_failure(
                ProtocolError(
                    f"unexpected {wire.MESSAGE_NAMES[tag]} message from client"
                )
            )

    def _resolve_query(self, fields: dict) -> str:
        statement = fields.get("stmt")
        if statement is not None:
            query = self._statements.get(statement)
            if query is None:
                raise ProtocolError(f"unknown prepared statement id {statement}")
            return query
        query = fields.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError("RUN needs a 'query' string or a 'stmt' id")
        return query

    async def _on_run(self, fields: dict) -> None:
        if self._result is not None:
            await self._send_failure(
                ProtocolError(
                    "previous result still open — PULL or DISCARD it first"
                )
            )
            return
        if self.server.draining:
            await self._send_failure(
                ServiceShutdownError("server is draining")
            )
            return
        try:
            query = self._resolve_query(fields)
        except ProtocolError as exc:
            await self._send_failure(exc)
            return
        deadline = fields.get("deadline_s")
        if deadline is not None and not isinstance(deadline, (int, float)):
            await self._send_failure(ProtocolError("deadline_s must be a number"))
            return
        require_lsn = fields.get("require_lsn")
        if require_lsn is not None and (
            isinstance(require_lsn, bool) or not isinstance(require_lsn, int)
        ):
            await self._send_failure(
                ProtocolError("require_lsn must be an integer LSN")
            )
            return
        loop = asyncio.get_running_loop()
        server = self.server
        fenced_by = server.fenced_by
        if server.role == "replica" or fenced_by is not None:
            # Classify before submitting: a replica serves reads only,
            # and a fenced old leader must never acknowledge another
            # write. The prepare goes through the plan cache, so the
            # classification costs a lookup on the steady state.
            try:
                cached = await loop.run_in_executor(
                    self.server._executor,
                    lambda: self.server.service.db.prepare(query),
                )
            except ReproError as exc:
                await self._send_failure(exc)
                return
            if cached.analyzed.is_write and server.role == "replica":
                leader = server.leader_name or "<unknown>"
                self.metrics.counter("server.replica_write_rejections").inc()
                await self._send_failure(
                    ReadOnlyReplicaError(
                        "this server is a read-only replica — "
                        f"send writes to the leader at {leader}",
                        leader=leader,
                    )
                )
                return
            if cached.analyzed.is_write and fenced_by is not None:
                self.metrics.counter("server.fenced_write_rejections").inc()
                await self._send_failure(
                    StaleEpochError(
                        f"this leader (epoch {server.epoch}) has been "
                        f"superseded by epoch {fenced_by} — writes belong "
                        "to the promoted leader",
                        epoch=server.epoch,
                        current_epoch=fenced_by,
                    )
                )
                return
        if require_lsn:
            # Read-your-writes: hold the read until this server has
            # published the token's LSN (immediate on the leader; a
            # bounded wait on a catching-up replica).
            if not await loop.run_in_executor(
                self.server._executor, self._await_published, require_lsn
            ):
                applied = self.server.service.db.store.mvcc.published
                self.metrics.counter("server.staleness_rejections").inc()
                await self._send_failure(
                    StalenessError(
                        f"required LSN {require_lsn} not applied within "
                        f"{self.config.require_lsn_wait_s:.1f}s "
                        f"(applied {applied})",
                        require_lsn=require_lsn,
                        applied_lsn=applied,
                    )
                )
                return
        try:
            ticket = self.server.service.submit(query, deadline_s=deadline)
        except ReproError as exc:
            await self._send_failure(exc)
            return
        self._ticket = ticket
        try:
            outcome = await loop.run_in_executor(
                self.server._executor, ticket.result
            )
        except QueryCancelledError as exc:
            self._ticket = None
            if self._disconnected:
                return  # nobody is listening
            await self._send_failure(exc)
            return
        except BaseException as exc:  # noqa: BLE001 - report to the client
            self._ticket = None
            await self._send_failure(exc)
            return
        self._ticket = None
        self._result = _OpenResult(outcome)
        self.metrics.counter("server.queries").inc()
        await self._send(wire.MSG_SUCCESS, {"columns": outcome.columns})

    async def _on_prepare(self, fields: dict) -> None:
        query = fields.get("query")
        if not isinstance(query, str) or not query:
            await self._send_failure(ProtocolError("PREPARE needs a 'query'"))
            return
        loop = asyncio.get_running_loop()
        try:
            cached = await loop.run_in_executor(
                self.server._executor,
                lambda: self.server.service.db.prepare(query),
            )
        except ReproError as exc:
            await self._send_failure(exc)
            return
        statement = self._next_statement
        self._next_statement += 1
        self._statements[statement] = query
        self.metrics.counter("server.prepares").inc()
        await self._send(
            wire.MSG_SUCCESS,
            {
                "stmt": statement,
                "columns": cached.columns,
                "is_write": cached.analyzed.is_write,
            },
        )

    async def _on_pull(self, fields: dict) -> None:
        result = self._result
        if result is None:
            await self._send_failure(ProtocolError("no open result to PULL"))
            return
        credit = fields.get("n", -1)
        if not isinstance(credit, int) or (credit < 1 and credit != -1):
            await self._send_failure(
                ProtocolError("PULL credit 'n' must be a positive int or -1")
            )
            return
        remaining = None if credit == -1 else credit
        while result.remaining and (remaining is None or remaining > 0):
            take = self.config.chunk_rows
            if remaining is not None:
                take = min(take, remaining)
            chunk = result.next_chunk(take)
            frame = wire.encode_frame(wire.MSG_RECORD, {"rows": chunk})
            self.metrics.counter("server.stream_chunks").inc()
            self.metrics.counter("server.records_streamed").inc(len(chunk))
            self.metrics.counter("server.bytes_streamed").inc(len(frame))
            self.metrics.counter("server.frames_out").inc()
            self.metrics.counter("server.bytes_out").inc(len(frame))
            self._writer.write(frame)
            transport = self._writer.transport
            if (
                transport is not None
                and transport.get_write_buffer_size()
                > self.config.write_buffer_high_bytes
            ):
                self.metrics.counter("server.drain_stalls").inc()
            await self._writer.drain()
            if remaining is not None:
                remaining -= len(chunk)
        if result.remaining:
            # Credit exhausted with rows still parked: the client paces us.
            self.metrics.counter("server.backpressure_stalls").inc()
            await self._send(wire.MSG_SUCCESS, {"has_more": True})
        else:
            self._result = None
            await self._send(wire.MSG_SUCCESS, result.summary())

    async def _on_discard(self) -> None:
        result = self._result
        if result is None:
            await self._send_failure(ProtocolError("no open result to DISCARD"))
            return
        self._result = None
        self.metrics.counter("server.discards").inc()
        summary = result.summary()
        summary["discarded"] = result.remaining
        await self._send(wire.MSG_SUCCESS, summary)

    async def _on_reset(self) -> None:
        self._result = None
        self.metrics.counter("server.resets").inc()
        await self._send(wire.MSG_SUCCESS, {})

    async def _on_status(self, fields: dict) -> None:
        self.metrics.counter("server.status_requests").inc()
        peer_epoch = fields.get("epoch")
        if (
            isinstance(peer_epoch, int)
            and not isinstance(peer_epoch, bool)
            and self.server.role == "leader"
            and peer_epoch > self.server.epoch
        ):
            # Gossip fencing: the poller (the router's health loop) has
            # observed a higher epoch — a promotion happened without us.
            self.server.fence(peer_epoch)
        await self._send(wire.MSG_SUCCESS, self.server.status_fields())

    async def _on_promote(self, fields: dict) -> None:
        server = self.server
        self.metrics.counter("server.promote_requests").inc()
        loop = asyncio.get_running_loop()
        try:
            new_epoch = await loop.run_in_executor(
                server._executor, server.promote
            )
        except SimulatedCrashError:
            # The injector killed the candidate mid-promotion: the
            # session dies like a crashed process (no FAILURE frame).
            self._writer.close()
            return
        except ReproError as exc:
            await self._send_failure(exc)
            return
        engine = server.service.db.durability
        await self._send(
            wire.MSG_SUCCESS,
            {
                "role": server.role,
                "epoch": new_epoch,
                "promote_lsn": engine.promote_lsn,
                "applied_lsn": engine.applied_lsn(),
            },
        )

    async def _on_repoint(self, fields: dict) -> None:
        server = self.server
        leader = fields.get("leader")
        if not isinstance(leader, str) or not leader:
            await self._send_failure(
                ProtocolError("REPOINT needs a 'leader' host:port string")
            )
            return
        if server.role != "replica" or server.replica is None:
            await self._send_failure(
                ReplicationError(
                    "REPOINT only applies to a running replica"
                )
            )
            return
        try:
            server.replica.repoint(leader)
        except ValueError as exc:
            await self._send_failure(ProtocolError(str(exc)))
            return
        server.leader_name = server.replica.leader_name
        self.metrics.counter("server.repoints").inc()
        await self._send(wire.MSG_SUCCESS, {"leader": server.leader_name})

    def _await_published(self, require_lsn: int) -> bool:
        """Block (in a wait thread) until this server's published LSN
        reaches ``require_lsn``; False on timeout/drain."""
        deadline = time.monotonic() + self.config.require_lsn_wait_s
        while True:
            # Read through the service each poll: a replica resync swaps
            # the database object underneath us.
            if self.server.service.db.store.mvcc.published >= require_lsn:
                return True
            if time.monotonic() >= deadline or self.server.draining:
                return False
            time.sleep(0.002)

    # ------------------------------------------------------------------
    # Replication: leader-side shipping
    # ------------------------------------------------------------------

    async def _on_subscribe(self, fields: dict) -> None:
        server = self.server
        engine = server.service.db.durability
        if engine is None:
            await self._send_failure(
                ReplicationError(
                    "server is not durable — there is no log to ship"
                )
            )
            return
        if server.role != "leader":
            await self._send_failure(
                ReplicationError(
                    "cannot subscribe to a replica — subscribe to the "
                    f"leader at {server.leader_name or '<unknown>'}"
                )
            )
            return
        from_lsn = fields.get("from_lsn", 0)
        if isinstance(from_lsn, bool) or not isinstance(from_lsn, int) or from_lsn < 0:
            await self._send_failure(
                ProtocolError("SUBSCRIBE needs a non-negative integer 'from_lsn'")
            )
            return
        sub_epoch = fields.get("epoch", 0)
        if isinstance(sub_epoch, bool) or not isinstance(sub_epoch, int) or sub_epoch < 0:
            await self._send_failure(
                ProtocolError("SUBSCRIBE 'epoch' must be a non-negative integer")
            )
            return
        if sub_epoch > engine.epoch:
            # The subscriber has seen a newer epoch than ours: *we* are
            # the stale leader. Fence ourselves and refuse the stream.
            server.fence(sub_epoch)
        if server.fenced_by is not None:
            await self._send_failure(
                StaleEpochError(
                    f"this leader (epoch {engine.epoch}) has been "
                    f"superseded by epoch {server.fenced_by} — subscribe "
                    "to the promoted leader",
                    epoch=engine.epoch,
                    current_epoch=server.fenced_by,
                )
            )
            return
        sub = {
            "shipped_lsn": from_lsn,
            "applied_lsn": from_lsn,
            "bytes_shipped": 0,
            "in_flight": [],  # (seq, frame bytes) shipped but unacked
        }
        server.subscribers[self.session_id] = sub
        self.metrics.counter("server.subscriptions").inc()
        try:
            await self._ship_loop(engine, from_lsn, sub, sub_epoch)
        except SimulatedCrashError:
            # The fault injector killed the leader mid-ship: the session
            # dies like a crashed process would (no FAILURE frame, the
            # replica just sees the connection drop).
            self._writer.close()
        except (ConnectionError, OSError):
            pass
        finally:
            server.subscribers.pop(self.session_id, None)

    async def _ship_loop(
        self, engine, from_lsn: int, sub: dict, sub_epoch: int = 0
    ) -> None:
        loop = asyncio.get_running_loop()
        executor = self.server._executor
        position = engine.replication_position()
        needs_snapshot = from_lsn < position["segment_floor"]
        if (
            not needs_snapshot
            and sub_epoch
            and sub_epoch < engine.epoch
            and from_lsn > position["promote_lsn"]
        ):
            # Divergence discard: the subscriber's history extends past
            # the point where this leader's epoch began, on an older
            # timeline — those records were never acknowledged by this
            # epoch and must go. Re-seed it from the checkpoint (the
            # install replaces its live pair wholesale).
            self.metrics.counter("replication.reseeds").inc()
            needs_snapshot = True
        if not needs_snapshot and from_lsn > position["durable_seq"]:
            # Ahead of us even without an epoch gap (should not happen on
            # a shared timeline); reseeding is the safe convergence path.
            self.metrics.counter("replication.reseeds").inc()
            needs_snapshot = True
        epoch_fields = {
            "epoch": engine.epoch,
            "promote_lsn": position["promote_lsn"],
        }
        if needs_snapshot:
            # The requested start pre-dates the live segment (folded into
            # the checkpoint) or diverges from it: ship the checkpoint
            # itself and resume the log from its floor.
            await self._send(wire.MSG_SUCCESS, {"mode": "snapshot", **epoch_fields})
            resume_lsn, files = await loop.run_in_executor(
                executor, engine.read_checkpoint
            )
            for name in sorted(files):
                await self._send_snapshot_file(name, files[name], sub)
            await self._send(
                wire.MSG_SUCCESS,
                {"snapshot_complete": True, "base_lsn": resume_lsn},
            )
            self.metrics.counter("server.snapshots_shipped").inc()
            from_lsn = resume_lsn
            sub["shipped_lsn"] = resume_lsn
            sub["applied_lsn"] = resume_lsn
        else:
            await self._send(
                wire.MSG_SUCCESS,
                {
                    "mode": "wal",
                    "from_lsn": from_lsn,
                    "durable_lsn": position["durable_seq"],
                    **epoch_fields,
                },
            )

        checkpoint_id = None
        offset = 0
        last_sent = from_lsn
        last_activity = loop.time()
        while True:
            if self.server.draining or self._disconnected:
                return
            if self.server.fenced_by is not None:
                # Fenced mid-stream: stop feeding subscribers our stale
                # timeline; they resubscribe to the promoted leader.
                await self._send_failure(
                    StaleEpochError(
                        f"this leader (epoch {engine.epoch}) has been "
                        f"superseded by epoch {self.server.fenced_by}",
                        epoch=engine.epoch,
                        current_epoch=self.server.fenced_by,
                    )
                )
                return
            # A crashed (fault-injected) leader is a dead process: it must
            # not keep heartbeating subscribers that reconnect to it.
            engine.injector.check()
            if not self._drain_acks(sub):
                return
            position = engine.replication_position()
            if position["checkpoint_id"] != checkpoint_id:
                if last_sent < position["segment_floor"]:
                    # A checkpoint folded records this subscriber never
                    # received. Fail the subscription; the replica
                    # resubscribes and lands on the snapshot path.
                    await self._send_failure(
                        ReplicationError(
                            f"records after LSN {last_sent} were folded "
                            "into a checkpoint — resubscribe for snapshot "
                            "catch-up"
                        )
                    )
                    return
                checkpoint_id = position["checkpoint_id"]
                offset = 0
            if sum(size for _seq, size in sub["in_flight"]) >= (
                self.config.ship_unacked_high_bytes
            ):
                # Backpressure: wait for WAL_ACKs before shipping more.
                self.metrics.counter("replication.backpressure_stalls").inc()
                await asyncio.sleep(self.config.ship_poll_s)
                continue
            frames, offset = await loop.run_in_executor(
                executor, iter_tail_frames, position["wal_path"], offset
            )
            batch: list[bytes] = []
            batch_first = batch_last = 0
            batch_bytes = 0
            sent_any = False
            for payload, end in frames:
                _record_type, body = decode_record(payload)
                seq = record_seq(body)
                if seq > position["durable_seq"]:
                    # Not fsynced yet: never ship a record the leader
                    # could still lose. Re-read it next poll.
                    offset = end - len(payload) - 8
                    break
                if seq <= last_sent:
                    continue
                if not batch:
                    batch_first = seq
                batch.append(payload)
                batch_last = seq
                batch_bytes += len(payload)
                if (
                    len(batch) >= self.config.ship_batch_records
                    or batch_bytes >= self.config.ship_batch_bytes
                ):
                    await self._send_segment(
                        engine, sub, batch, batch_first, batch_last, position
                    )
                    last_sent = batch_last
                    sent_any = True
                    batch, batch_bytes = [], 0
            if batch:
                await self._send_segment(
                    engine, sub, batch, batch_first, batch_last, position
                )
                last_sent = batch_last
                sent_any = True
            if sent_any:
                last_activity = loop.time()
                continue
            if loop.time() - last_activity >= self.config.heartbeat_s:
                # Idle heartbeat: carries the durable watermark so the
                # replica can report its lag even with no traffic.
                await self._send(
                    wire.MSG_WAL_SEGMENT,
                    {
                        "first": 0,
                        "last": 0,
                        "records": [],
                        "durable_lsn": position["durable_seq"],
                        "epoch": engine.epoch,
                    },
                )
                last_activity = loop.time()
            await asyncio.sleep(self.config.ship_poll_s)

    async def _send_segment(
        self,
        engine,
        sub: dict,
        records: list[bytes],
        first: int,
        last: int,
        position: dict,
    ) -> None:
        injector = engine.injector
        injector.reach("ship.before_segment")
        frame = wire.encode_frame(
            wire.MSG_WAL_SEGMENT,
            {
                "first": first,
                "last": last,
                "records": records,
                "durable_lsn": position["durable_seq"],
                "epoch": engine.epoch,
            },
        )
        if injector.will_fire("ship.torn_segment"):
            # Write half the frame, then die: the replica's FrameReader
            # must detect the torn stream and resubscribe from its applied
            # LSN with no duplicate application.
            self._writer.write(frame[: max(1, len(frame) // 2)])
            try:
                await self._writer.drain()
            except (ConnectionError, OSError):
                pass
            injector.reach("ship.torn_segment")
        self._writer.write(frame)
        self.metrics.counter("server.frames_out").inc()
        self.metrics.counter("server.bytes_out").inc(len(frame))
        self.metrics.counter("replication.segments_shipped").inc()
        self.metrics.counter("replication.records_shipped").inc(len(records))
        self.metrics.counter("replication.bytes_shipped").inc(len(frame))
        sub["shipped_lsn"] = last
        sub["bytes_shipped"] += len(frame)
        sub["in_flight"].append((last, len(frame)))
        await self._writer.drain()

    async def _send_snapshot_file(self, name: str, data: bytes, sub: dict) -> None:
        offset = 0
        while True:
            chunk = data[offset : offset + SNAPSHOT_CHUNK_BYTES]
            offset += len(chunk)
            eof = offset >= len(data)
            frame = wire.encode_frame(
                wire.MSG_SNAPSHOT_FILE,
                {"name": name, "data": chunk, "eof": eof},
            )
            self._writer.write(frame)
            self.metrics.counter("server.frames_out").inc()
            self.metrics.counter("server.bytes_out").inc(len(frame))
            self.metrics.counter("replication.bytes_shipped").inc(len(frame))
            sub["bytes_shipped"] += len(frame)
            await self._writer.drain()
            if eof:
                return

    def _drain_acks(self, sub: dict) -> bool:
        """Consume pipelined WAL_ACK frames during a subscription; False
        ends it. Terminal items (EOF, GOODBYE, protocol errors) are pushed
        back so the outer dispatch loop sees them and closes the session
        normally."""
        while True:
            try:
                item = self._requests.get_nowait()
            except asyncio.QueueEmpty:
                return True
            if item is _EOF or isinstance(item, ProtocolError):
                self._requeue(item)
                return False
            tag, fields = item
            if tag == wire.MSG_GOODBYE:
                self._requeue(item)
                return False
            if tag != wire.MSG_WAL_ACK:
                self._requeue(
                    ProtocolError(
                        f"unexpected {wire.MESSAGE_NAMES[tag]} during an "
                        "active subscription"
                    )
                )
                return False
            applied = fields.get("applied_lsn")
            if isinstance(applied, bool) or not isinstance(applied, int):
                self._requeue(ProtocolError("WAL_ACK applied_lsn must be an int"))
                return False
            sub["applied_lsn"] = max(sub["applied_lsn"], applied)
            sub["in_flight"] = [
                (seq, size) for seq, size in sub["in_flight"] if seq > applied
            ]
            engine = self.server.service.db.durability
            if engine is not None:
                lag = max(0, engine.replication_position()["durable_seq"] - applied)
                self.metrics.histogram(
                    "replication.lag_lsn",
                    buckets=(0, 1, 4, 16, 64, 256, 1024, 4096, 16384),
                ).observe(lag)

    def _requeue(self, item) -> None:
        try:
            self._requests.put_nowait(item)
        except asyncio.QueueFull:
            # Pathological pipelining; drop the connection instead.
            self._writer.close()


def _server_banner() -> str:
    from repro import __version__

    return f"pathindex-repro/{__version__}"


class BackgroundServer:
    """A :class:`Server` whose event loop runs in a daemon thread.

    The blocking-world adapter used by tests, the ``--network`` benchmark
    and embedders: ``start()`` returns the bound address, ``stop()`` drains
    gracefully and joins the thread. The caller still owns the service and
    database lifecycle.
    """

    def __init__(
        self, service: QueryService, config: Optional[ServerConfig] = None
    ) -> None:
        self.server = Server(service, config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.server.address is not None, "server not started"
        return self.server.address

    @property
    def metrics(self):
        return self.server.metrics

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self.address

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surface to start()
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.drain()

    def stop(self) -> None:
        """Drain the server and join its loop thread (idempotent)."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
