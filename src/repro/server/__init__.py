"""The network front door: an asyncio TCP server speaking the binary wire
protocol of :mod:`repro.wire` in front of one
:class:`~repro.service.QueryService`.

* :class:`Server` — the asyncio server: sessions, pipelined requests,
  credit-based result streaming, graceful drain.
* :class:`ServerConfig` — tuning knobs (auth token, chunk size, drain
  timeout, …).
* :class:`BackgroundServer` — runs a :class:`Server`'s event loop in a
  daemon thread; the blocking harness tests, benchmarks and embedders use.
* ``python -m repro.server --data DIR --port N`` — the deployable
  entrypoint (see :mod:`repro.server.__main__`).
"""

from repro.server.server import BackgroundServer, Server, ServerConfig

__all__ = ["BackgroundServer", "Server", "ServerConfig"]
