"""``python -m repro.server`` — the deployable network entrypoint.

Usage::

    python -m repro.server --data mydb/ --port 7687
    python -m repro.server --port 0          # in-memory db, ephemeral port

Opens a (durable, when ``--data`` is given) database, wraps it in a
:class:`~repro.service.QueryService`, and serves the binary protocol until
SIGTERM/SIGINT, then drains gracefully: the listener closes, busy sessions
finish their current request, stragglers are cancelled through their
cooperative tokens, and the service sheds what never started.

The first line printed to stdout is ``listening on HOST:PORT`` so wrappers
(CI smoke, benchmarks) can discover an ephemeral port; the last is
``server drained cleanly``.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

from repro import GraphDatabase
from repro.replication import Replica, ReplicaConfig
from repro.server.server import Server, ServerConfig
from repro.service import QueryService, ServiceConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="pathindex-repro network server (binary protocol)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7687, help="TCP port (0 = ephemeral)"
    )
    parser.add_argument(
        "--data",
        help="durable database directory (WAL + checkpoints); omit for an "
        "in-memory database",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="query service worker threads"
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission-control queue depth before shedding",
    )
    parser.add_argument(
        "--mode",
        choices=("row", "batched", "compiled"),
        help="execution engine (default: database default)",
    )
    parser.add_argument(
        "--default-deadline-s",
        type=float,
        help="deadline applied to queries that specify none",
    )
    parser.add_argument(
        "--auth-token",
        help="require this token in each session's HELLO",
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=64,
        help="rows per streamed RECORD frame",
    )
    parser.add_argument(
        "--replica-of",
        metavar="HOST:PORT",
        help="run as a read-only replica tailing this leader's WAL "
        "(requires --data); writes are rejected with the leader's address",
    )
    parser.add_argument(
        "--leader-auth-token",
        help="auth token for the leader connection (defaults to "
        "--auth-token)",
    )
    parser.add_argument(
        "--promote",
        action="store_true",
        help="offline promotion: open the (former replica) --data "
        "directory, replay its WAL tail through recovery, bump the "
        "persisted leader epoch, and serve as the new leader",
    )
    return parser


async def _serve(server: Server, host_hint: str) -> None:
    host, port = await server.start()
    print(f"listening on {host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await stop.wait()
    print("draining...", flush=True)
    await server.drain()


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    replica = None
    if args.promote and args.replica_of:
        parser.error("--promote conflicts with --replica-of: a promoted "
                     "node serves as the leader")
    if args.promote and not args.data:
        parser.error("--promote requires --data (the former replica's "
                     "durable directory)")
    if args.replica_of:
        if not args.data:
            parser.error("--replica-of requires --data (the replica's own "
                         "durable directory)")
        replica = Replica(
            args.data,
            args.replica_of,
            config=ReplicaConfig(
                auth_token=args.leader_auth_token or args.auth_token
            ),
        )
        db = replica.db
    elif args.data:
        # Opening replays the WAL tail through recovery; --promote then
        # bumps the persisted epoch so the old leader is fenced out.
        db = GraphDatabase.open(args.data)
        if args.promote:
            epoch = db.durability.promote()
            print(
                f"promoted to leader at epoch {epoch} "
                f"(divergence LSN {db.durability.promote_lsn})",
                flush=True,
            )
    else:
        db = GraphDatabase()
    service = QueryService(
        db,
        ServiceConfig(
            max_concurrency=args.workers,
            max_pending=args.max_pending,
            execution_mode=args.mode,
            default_deadline_s=args.default_deadline_s,
        ),
    )
    server = Server(
        service,
        ServerConfig(
            host=args.host,
            port=args.port,
            auth_token=args.auth_token,
            chunk_rows=args.chunk_rows,
            replica_of=args.replica_of,
        ),
    )
    if replica is not None:
        # Snapshot catch-up replaces the database wholesale; route the
        # swap through the service so its workers see the new one.
        replica.attach(on_swap=service.swap_database, metrics=service.metrics)
        server.replica = replica
        replica.start()
    try:
        asyncio.run(_serve(server, args.host))
    finally:
        # Drain already cancelled straggling sessions' tokens; this sheds
        # the queue and cancels anything still executing, so shutdown can
        # never hang behind a slow query.
        if replica is not None:
            replica.stop()
        service.shutdown(cancel_pending=True)
        service.db.close()
    print("server drained cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
