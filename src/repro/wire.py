"""The binary wire protocol shared by :mod:`repro.server` and :mod:`repro.client`.

A Bolt-flavoured, length-framed message protocol whose payloads reuse the
tagged value codec of :mod:`repro.durability.encoding` (one tag byte per
value, LEB128 varints, zigzag ints) — the same bytes a transaction writes to
the WAL travel the network unchanged. Every frame is::

    <u32 little-endian payload length> <u32 crc32(payload)> <payload>

    payload = <message tag byte> <fields as one codec-encoded dict>

The CRC makes corruption detection deterministic: flipping any byte of a
frame (header or payload) yields a clean :class:`~repro.errors.ProtocolError`
instead of a silently mis-decoded message, mirroring the WAL's framing
guarantees (``tests/test_durability_log.py``).

Message flow (client → server requests, server → client responses):

=============  ==========================================================
``HELLO``      first frame of a session: ``{"versions": [1], "auth":
               {"token": ...}, "client": name}`` → ``SUCCESS {"version",
               "server"}`` or ``FAILURE`` (version/auth rejection)
``PREPARE``    ``{"query"}`` → ``SUCCESS {"stmt", "columns", "is_write"}``
``RUN``        ``{"query"}`` or ``{"stmt"}``, optional ``deadline_s`` →
               ``SUCCESS {"columns"}`` opens the session's result
``PULL``       ``{"n": credit}`` (−1 = all): up to ``n`` rows stream as
               ``RECORD {"rows": [[...], ...]}`` chunks, then ``SUCCESS
               {"has_more": bool, …summary}`` — credit-based backpressure
``DISCARD``    drop the open result → ``SUCCESS {summary}``
``RESET``      clear session state (open result) → ``SUCCESS {}``
``STATUS``     server role / epoch / LSN watermarks / subscriber lag →
               ``SUCCESS`` (an ``{"epoch": N}`` field in the request
               gossips the highest epoch the sender has observed; a leader
               hearing a higher epoch fences itself)
``PROMOTE``    admin: flip a replica into the new leader — drains its
               apply loop, verifies the WAL tail, bumps the persisted
               epoch → ``SUCCESS {"epoch", "role", "promote_lsn"}``
``REPOINT``    admin: ``{"leader": "host:port"}`` re-points a replica's
               tailer at a new leader → ``SUCCESS {"leader"}``
``GOODBYE``    close the session (no response)
=============  ==========================================================

Replication reuses the same framing. A replica sends ``SUBSCRIBE
{"from_lsn"}`` after HELLO; the leader answers ``SUCCESS {"mode": "wal"}``
and turns the session into a server-push stream of ``WAL_SEGMENT
{"first", "last", "records": [payload bytes, ...], "durable_lsn"}``
frames (empty ``records`` = heartbeat), against which the replica sends
``WAL_ACK {"applied_lsn"}`` frames. When ``from_lsn`` pre-dates the
current WAL segment (folded into a checkpoint), the leader answers
``SUCCESS {"mode": "snapshot", ...}`` and first ships the checkpoint as
chunked ``SNAPSHOT_FILE {"name", "data", "eof"}`` frames, then a
``SUCCESS {"snapshot_complete": True, "base_lsn"}`` marker, then the
live WAL_SEGMENT stream.

Requests may be pipelined: a client can write many frames back-to-back; the
server processes them strictly in order and answers in order. ``FAILURE``
frames are structured errors: ``{"code": exception class name, "message",
"retryable"}``; :func:`raise_failure` re-raises the matching
:mod:`repro.errors` class on the client.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Optional

from repro import errors
from repro.durability.encoding import read_value, write_value
from repro.errors import (
    DurabilityError,
    LeaderUnavailableError,
    MemoryLimitExceeded,
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    StaleEpochError,
    StalenessError,
    TransactionError,
)

PROTOCOL_VERSION = 1
"""The protocol revision this build speaks (HELLO negotiates the highest
version common to both ends)."""

SUPPORTED_VERSIONS = (1,)

MAX_FRAME_BYTES = 16 << 20
"""Upper bound on one frame's payload; larger lengths are rejected before
any allocation so a corrupt or hostile header cannot balloon memory."""

FRAME_HEADER = struct.Struct("<II")
"""Payload length + CRC32 of the payload, matching the WAL's record framing."""

# Client → server ----------------------------------------------------------
MSG_HELLO = 0x01
MSG_GOODBYE = 0x02
MSG_RESET = 0x03
MSG_STATUS = 0x05
MSG_PREPARE = 0x10
MSG_RUN = 0x11
MSG_PULL = 0x12
MSG_DISCARD = 0x13
# Replication (replica → leader requests) ----------------------------------
MSG_SUBSCRIBE = 0x20
MSG_WAL_ACK = 0x21
# Admin (operator → server requests) ----------------------------------------
MSG_PROMOTE = 0x30
MSG_REPOINT = 0x31
# Server → client ----------------------------------------------------------
MSG_SUCCESS = 0x70
MSG_RECORD = 0x71
MSG_WAL_SEGMENT = 0x72
MSG_SNAPSHOT_FILE = 0x73
MSG_FAILURE = 0x7F

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_GOODBYE: "GOODBYE",
    MSG_RESET: "RESET",
    MSG_STATUS: "STATUS",
    MSG_PREPARE: "PREPARE",
    MSG_RUN: "RUN",
    MSG_PULL: "PULL",
    MSG_DISCARD: "DISCARD",
    MSG_SUBSCRIBE: "SUBSCRIBE",
    MSG_WAL_ACK: "WAL_ACK",
    MSG_PROMOTE: "PROMOTE",
    MSG_REPOINT: "REPOINT",
    MSG_SUCCESS: "SUCCESS",
    MSG_RECORD: "RECORD",
    MSG_WAL_SEGMENT: "WAL_SEGMENT",
    MSG_SNAPSHOT_FILE: "SNAPSHOT_FILE",
    MSG_FAILURE: "FAILURE",
}

REQUEST_TAGS = frozenset(
    (
        MSG_HELLO,
        MSG_GOODBYE,
        MSG_RESET,
        MSG_STATUS,
        MSG_PREPARE,
        MSG_RUN,
        MSG_PULL,
        MSG_DISCARD,
        MSG_SUBSCRIBE,
        MSG_WAL_ACK,
        MSG_PROMOTE,
        MSG_REPOINT,
    )
)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_frame(tag: int, fields: Optional[dict] = None) -> bytes:
    """One complete frame (header + payload) for ``tag`` and ``fields``."""
    if tag not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message tag {tag:#x}")
    payload = bytearray([tag])
    try:
        write_value(payload, fields if fields is not None else {})
    except DurabilityError as exc:
        raise ProtocolError(f"unencodable message field: {exc}") from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + bytes(payload)


def decode_payload(payload: bytes) -> tuple[int, dict]:
    """Decode one verified payload into ``(tag, fields)``."""
    if not payload:
        raise ProtocolError("empty frame payload")
    tag = payload[0]
    if tag not in MESSAGE_NAMES:
        raise ProtocolError(f"unknown message tag {tag:#x}")
    try:
        fields, end = read_value(payload, 1)
    except DurabilityError as exc:
        raise ProtocolError(f"malformed {MESSAGE_NAMES[tag]} fields: {exc}") from exc
    if end != len(payload):
        raise ProtocolError(
            f"{len(payload) - end} trailing bytes after {MESSAGE_NAMES[tag]} fields"
        )
    if not isinstance(fields, dict):
        raise ProtocolError(
            f"{MESSAGE_NAMES[tag]} fields must be a map, got "
            f"{type(fields).__name__}"
        )
    return tag, fields


def wire_value(value: Any) -> Any:
    """``value`` converted to something the codec can carry.

    Row values are entity ids (ints) or plain property values, which the
    codec covers directly; anything exotic degrades to its ``str`` form
    rather than poisoning the whole result frame.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (list, tuple)):
        return [wire_value(item) for item in value]
    if isinstance(value, dict):
        return {wire_value(key): wire_value(item) for key, item in value.items()}
    return str(value)


# ---------------------------------------------------------------------------
# Incremental decoding (the blocking client; also exercised by tests)
# ---------------------------------------------------------------------------


class FrameReader:
    """Incremental frame parser: :meth:`feed` bytes, :meth:`pop` messages.

    Raises :class:`ProtocolError` on any framing violation — implausible
    length, CRC mismatch, malformed payload — and on :meth:`close` (EOF)
    with a partial frame still buffered.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes
        self._closed = False

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def pop(self) -> Optional[tuple[int, dict]]:
        """The next complete ``(tag, fields)`` message, or None if more
        bytes are needed."""
        header_size = FRAME_HEADER.size
        if len(self._buffer) < header_size:
            return None
        length, crc = FRAME_HEADER.unpack_from(self._buffer, 0)
        if length == 0 or length > self._max:
            raise ProtocolError(f"implausible frame length {length}")
        if len(self._buffer) < header_size + length:
            return None
        payload = bytes(self._buffer[header_size : header_size + length])
        if zlib.crc32(payload) != crc:
            raise ProtocolError("frame CRC mismatch")
        del self._buffer[: header_size + length]
        return decode_payload(payload)

    def close(self) -> None:
        """Signal EOF; a partially buffered frame means a torn stream."""
        self._closed = True
        if self._buffer:
            raise ProtocolError(
                f"connection closed mid-frame ({len(self._buffer)} bytes buffered)"
            )


# ---------------------------------------------------------------------------
# Structured errors
# ---------------------------------------------------------------------------

_RETRYABLE = (
    ServiceOverloadedError,
    MemoryLimitExceeded,
    TransactionError,
    StalenessError,
    StaleEpochError,
    LeaderUnavailableError,
)


def failure_fields(exc: BaseException) -> dict:
    """The FAILURE frame fields describing ``exc``."""
    return {
        "code": type(exc).__name__,
        "message": str(exc) or type(exc).__name__,
        "retryable": isinstance(exc, _RETRYABLE),
    }


def _error_registry() -> dict[str, type]:
    registry = {}
    for name in dir(errors):
        candidate = getattr(errors, name)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            registry[name] = candidate
    return registry


_ERROR_CLASSES = _error_registry()


def failure_exception(fields: dict) -> ReproError:
    """The exception a FAILURE frame describes, mapped back to the matching
    :mod:`repro.errors` class (``ServiceError`` for unknown codes)."""
    code = fields.get("code")
    message = fields.get("message") or str(code)
    cls = _ERROR_CLASSES.get(code) if isinstance(code, str) else None
    if cls is None:
        exc: ReproError = ServiceError(f"{code}: {message}")
    else:
        try:
            exc = cls(message)
        except TypeError:
            exc = ServiceError(f"{code}: {message}")
    exc.retryable = bool(fields.get("retryable"))  # type: ignore[attr-defined]
    return exc


def raise_failure(fields: dict) -> None:
    raise failure_exception(fields)
