"""A small thread-safe metrics registry: counters and latency histograms.

The query service records per-query planning/execution time, rows produced,
admission rejections, timeouts, retries, plan-cache traffic and page-cache
deltas here; :meth:`MetricsRegistry.snapshot` renders everything as one
nested dict (the shape ``QueryService.metrics_snapshot()`` and the shell's
``:metrics`` command expose).

Histograms use fixed log-spaced bucket bounds (Prometheus-style cumulative
semantics would be overkill for an embedded engine; we keep per-bucket
counts plus count/sum/min/max, from which the snapshot derives mean and
approximate percentiles).
"""

from __future__ import annotations

import math
import threading
from typing import Optional, Sequence

DEFAULT_LATENCY_BUCKETS_S = tuple(
    1e-5 * (10 ** (exponent / 4)) for exponent in range(0, 29)
)
"""Log-spaced bounds from 10 µs to ~100 s (4 buckets per decade)."""

DEFAULT_COUNT_BUCKETS = tuple(
    int(10 ** (exponent / 2)) for exponent in range(0, 17)
)
"""Log-spaced bounds from 1 to 1e8 for row/page counts."""


class Counter:
    """A monotonically increasing thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and percentiles."""

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # One count per bound, plus an overflow bucket.
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, quantile: float) -> float:
        """Approximate percentile: the upper bound of the bucket in which
        the requested rank falls (exact min/max for the extremes)."""
        with self._lock:
            if not self._count:
                return 0.0
            if quantile <= 0:
                return self._min
            if quantile >= 1:
                return self._max
            rank = quantile * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    if index >= len(self.bounds):
                        return self._max
                    return min(self.bounds[index], self._max)
            return self._max

    def summary(self) -> dict:
        with self._lock:
            if not self._count:
                return {"count": 0, "sum": 0.0, "mean": 0.0}
            base = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
            }
        base["p50"] = self.percentile(0.50)
        base["p95"] = self.percentile(0.95)
        base["p99"] = self.percentile(0.99)
        return base


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, buckets or DEFAULT_LATENCY_BUCKETS_S
                )
            return histogram

    def snapshot(self) -> dict:
        """All counters (name -> value) and histograms (name -> summary)."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(histograms.items())
            },
        }
