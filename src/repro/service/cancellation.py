"""Cooperative cancellation tokens for query execution.

A :class:`CancellationToken` carries an optional absolute deadline and an
explicit cancel flag. The runtime checks the token at iterator row
boundaries (every row that crosses an operator, see
``repro.runtime.operators.compile_plan``), so a timed-out or cancelled
query stops mid-scan instead of running to completion.

Checking the cancel flag is a single attribute read per row; the deadline
(a ``time.monotonic`` call) is only consulted every ``DEADLINE_STRIDE``
checks to keep the per-row overhead negligible on million-row scans.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import QueryCancelledError, QueryTimeoutError

DEADLINE_STRIDE = 32
"""Rows between deadline clock reads (the cancel flag is read every row)."""


class CancellationToken:
    """Deadline + explicit-cancel signal shared between a query's submitter
    and the worker thread executing it."""

    __slots__ = ("deadline", "_cancelled", "_expired", "_ticks")

    def __init__(self, deadline: Optional[float] = None) -> None:
        #: Absolute ``time.monotonic()`` deadline, or None for no deadline.
        self.deadline = deadline
        self._cancelled = False
        self._expired = False
        self._ticks = 0

    @classmethod
    def with_timeout(cls, seconds: Optional[float]) -> "CancellationToken":
        """A token whose deadline is ``seconds`` from now (None = no limit)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.monotonic() + seconds)

    # ------------------------------------------------------------------

    def cancel(self) -> None:
        """Request cancellation; the running query raises at its next check."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed (checks the clock each call)."""
        if self._expired:
            return True
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._expired = True
            return True
        return False

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (may be negative), or None."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    # ------------------------------------------------------------------

    def check(self, rows_produced: int = 0) -> None:
        """Raise if cancelled or past deadline; called at row boundaries.

        ``rows_produced`` is attached to the raised error so callers can
        report how far the query got before being stopped.
        """
        if self._cancelled:
            raise QueryCancelledError(rows_produced=rows_produced)
        if self.deadline is None:
            return
        self._ticks += 1
        if self._expired or self._ticks % DEADLINE_STRIDE == 0:
            if self.expired:
                raise QueryTimeoutError(rows_produced=rows_produced)

    def check_batch(self, rows_produced: int = 0) -> None:
        """Like :meth:`check`, but always consults the deadline clock.

        The batched runtime checks once per morsel (~1024 rows), so the
        stride amortization of :meth:`check` would stretch deadline
        detection to tens of thousands of rows; one clock read per batch is
        already amortized.
        """
        if self._cancelled:
            raise QueryCancelledError(rows_produced=rows_produced)
        if self.deadline is not None and self.expired:
            raise QueryTimeoutError(rows_produced=rows_produced)
