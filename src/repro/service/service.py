"""The concurrent query service: worker pool, admission control, deadlines.

:class:`QueryService` wraps one :class:`~repro.db.database.GraphDatabase`
behind a thread pool so many callers can execute Cypher concurrently:

* **Admission control** — a bounded pending queue plus a fixed worker count.
  When the queue is full, :meth:`submit` raises
  :class:`~repro.errors.ServiceOverloadedError` immediately instead of
  queueing unboundedly (load shedding, not latency hiding).
* **Deadlines and cancellation** — every query gets a
  :class:`~repro.service.cancellation.CancellationToken`; the runtime checks
  it at iterator row boundaries, so a timed-out or cancelled query stops
  mid-scan. The deadline clock starts at *submission*: time spent waiting in
  the pending queue counts against it.
* **Write retry** — transient :class:`~repro.errors.TransactionError`
  conflicts on write queries are retried with exponential backoff under a
  bounded attempt budget. Reads take no lock at all: every read query pins
  an MVCC snapshot (:meth:`~repro.db.database.GraphDatabase.snapshot`) and
  resolves records against per-record version chains at its commit LSN, so
  any number of reads run concurrently *with each other and with writers*.
  Writers serialize only with other writers, on the store's write lock.
* **Resource governance** — before dispatch each query reserves a memory
  grant from the database's :class:`~repro.resources.MemoryPool`; when the
  pool is exhausted the query waits briefly, then is shed with
  :class:`~repro.errors.MemoryLimitExceeded` (backpressure) while the
  process and every other query keep running. An optional slow-query
  watchdog cancels queries exceeding ``max_query_seconds``.
* **Metrics** — a :class:`~repro.service.metrics.MetricsRegistry` records
  planning/execution latency, rows produced, rejections, timeouts, retries,
  plan-cache traffic and page-cache deltas; see :meth:`metrics_snapshot`.

>>> service = QueryService(db, ServiceConfig(max_concurrency=4))
>>> outcome = service.execute("MATCH (n:Person) RETURN n", deadline_s=1.0)
>>> outcome.rows
[...]
>>> service.shutdown()
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.db.database import GraphDatabase
from repro.errors import (
    MemoryLimitExceeded,
    QueryCancelledError,
    QueryTimeoutError,
    ServiceOverloadedError,
    ServiceShutdownError,
    TransactionError,
)
from repro.planner import PlannerHints
from repro.service.cancellation import CancellationToken
from repro.service.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry

_SHUTDOWN = object()

_VERSION_GC_WRITE_INTERVAL = 64
"""Opportunistic version-GC cadence: after this many write queries the
service reclaims version chains no live snapshot can reach (checkpoints
also vacuum, so this only bounds growth between checkpoints)."""

_GRANT_WAIT_S = 5.0
"""How long a deadline-less query waits at dispatch for a memory grant
before it is shed with backpressure (queries with a deadline wait at most
their remaining time)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`QueryService`."""

    max_concurrency: int = 4
    """Worker threads executing queries simultaneously."""

    max_pending: int = 16
    """Admitted-but-not-started queries; beyond this, submissions are
    rejected with :class:`ServiceOverloadedError`."""

    default_deadline_s: Optional[float] = None
    """Deadline applied when a query specifies none (None = unlimited)."""

    write_retries: int = 3
    """Retry attempts (beyond the first try) for transient write conflicts."""

    retry_backoff_s: float = 0.01
    """Initial backoff before the first retry; doubles per attempt."""

    retry_backoff_cap_s: float = 0.25
    """Upper bound on a single backoff sleep."""

    checkpoint_interval_s: Optional[float] = None
    """Background-checkpoint period for durable databases. When set (and
    the database was opened with ``GraphDatabase.open``), a checkpointer
    thread periodically compacts the write-ahead log into a snapshot; the
    engine serializes with writers on the store's write lock while reads
    continue against their MVCC snapshots. ``None`` leaves checkpointing
    to the engine's own record/byte thresholds and explicit :meth:`~repro.\
db.database.GraphDatabase.checkpoint` calls."""

    execution_mode: Optional[str] = None
    """Runtime engine for queries executed through the service:
    ``"row"``, ``"batched"`` or ``"compiled"``. ``None`` inherits the
    database's default (``REPRO_EXECUTION_MODE`` / constructor)."""

    memory_grant_bytes: Optional[int] = None
    """Admission grant reserved from the database's memory pool before a
    query is dispatched to a worker (also its spill threshold). ``None``
    uses the pool's default grant. Irrelevant for unbounded pools."""

    max_query_seconds: Optional[float] = None
    """Slow-query ceiling: a watchdog thread cancels (via the query's
    ``CancellationToken``) any query running longer than this. ``None``
    disables the watchdog."""

    watchdog_interval_s: float = 0.05
    """How often the slow-query watchdog scans in-flight queries."""

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be positive")
        if self.max_pending < 1:
            raise ValueError("max_pending must be positive")
        if self.checkpoint_interval_s is not None and self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")
        if self.execution_mode not in (None, "row", "batched", "compiled"):
            raise ValueError(
                "execution_mode must be 'row', 'batched' or 'compiled'"
            )
        if self.memory_grant_bytes is not None and self.memory_grant_bytes <= 0:
            raise ValueError("memory_grant_bytes must be positive")
        if self.max_query_seconds is not None and self.max_query_seconds <= 0:
            raise ValueError("max_query_seconds must be positive")
        if self.watchdog_interval_s <= 0:
            raise ValueError("watchdog_interval_s must be positive")


class QueryStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    CANCELLED = "cancelled"


@dataclass
class QueryOutcome:
    """A completed query's rows plus its per-query statistics."""

    rows: list[dict] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    total_seconds: float = 0.0
    queue_seconds: float = 0.0
    attempts: int = 1
    max_intermediate_cardinality: int = 0
    page_cache_hits: int = 0
    page_cache_misses: int = 0
    peak_memory_bytes: int = 0
    spill_runs: int = 0
    commit_lsn: Optional[int] = None
    """Log sequence number of the commit a write query produced (a
    read-your-writes token); ``None`` for reads, non-durable databases,
    and writes that changed nothing."""

    @property
    def row_count(self) -> int:
        return len(self.rows)


class QueryTicket:
    """Handle for one submitted query: await, inspect, or cancel it."""

    def __init__(
        self,
        query: str,
        hints: Optional[PlannerHints],
        token: CancellationToken,
        submitted_at: float,
    ) -> None:
        self.query = query
        self.hints = hints
        self.token = token
        self.submitted_at = submitted_at
        self.status = QueryStatus.PENDING
        self.rows_produced = 0
        """Rows the query emitted before completing or being stopped."""
        self._done = threading.Event()
        self._outcome: Optional[QueryOutcome] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (effective at the next row
        boundary, or before the query starts if still queued)."""
        self.token.cancel()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> QueryOutcome:
        """Block until the query finishes; return its outcome or re-raise
        its error (:class:`QueryTimeoutError` for deadline expiry)."""
        if not self._done.wait(timeout):
            raise TimeoutError("query still running")
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    # Internal completion hooks -----------------------------------------

    def _succeed(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self.rows_produced = outcome.row_count
        self.status = QueryStatus.SUCCEEDED
        self._done.set()

    def _fail(self, error: BaseException, status: QueryStatus) -> None:
        self._error = error
        self.status = status
        self._done.set()


class QueryService:
    """A bounded-concurrency query front-end over one database."""

    def __init__(
        self, db: GraphDatabase, config: Optional[ServiceConfig] = None
    ) -> None:
        self.db = db
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        # The queue itself is unbounded; admission control is enforced by
        # _pending_count under _lock, so shutdown's sentinel puts can never
        # block behind a full queue.
        self._pending: queue.Queue = queue.Queue()
        # _lock guards _shutdown, _pending_count and _in_flight, and makes
        # submit's shutdown-check + enqueue atomic against shutdown's
        # flag-set + drain + sentinel puts (a ticket can never land behind
        # the sentinels and hang its caller).
        self._lock = threading.Lock()
        self._shutdown = False
        self._pending_count = 0
        self._in_flight = 0
        # Plan-cache traffic feeds the registry as it happens; detached
        # again in shutdown() so replaced or parallel services never steal
        # each other's events.
        db.plan_cache.subscribe(self._plan_cache_event)
        # Pool/spill counters stream into this service's registry; detached
        # in shutdown() like the plan-cache subscription.
        db.memory_pool.bind_metrics(self.metrics)
        # In-flight tickets (id -> (ticket, dispatch time)) for the
        # slow-query watchdog; guarded by _lock.
        self._running: dict[int, tuple[QueryTicket, float]] = {}
        # Write-query countdown to the next opportunistic version GC.
        self._writes_until_gc = _VERSION_GC_WRITE_INTERVAL
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"query-service-worker-{index}",
                daemon=True,
            )
            for index in range(self.config.max_concurrency)
        ]
        for worker in self._workers:
            worker.start()
        # Background checkpointer for durable databases: the engine takes
        # the store's write lock itself, so writers pause while the
        # snapshot is cut and snapshot readers continue unimpeded.
        self._checkpoint_stop = threading.Event()
        self._checkpointer: Optional[threading.Thread] = None
        if db.durability is not None and self.config.checkpoint_interval_s:
            self._checkpointer = threading.Thread(
                target=self._checkpoint_loop,
                name="query-service-checkpointer",
                daemon=True,
            )
            self._checkpointer.start()
        # Slow-query watchdog: cancels queries running past the ceiling.
        self._watchdog_stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if self.config.max_query_seconds is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="query-service-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: str,
        hints: Optional[PlannerHints] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryTicket:
        """Admit a query for asynchronous execution.

        Raises :class:`ServiceOverloadedError` when the pending queue is
        full and :class:`ServiceShutdownError` after :meth:`shutdown`. The
        deadline clock starts now — queue wait counts against it.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        ticket = QueryTicket(
            query,
            hints,
            CancellationToken.with_timeout(deadline_s),
            submitted_at=time.monotonic(),
        )
        with self._lock:
            if self._shutdown:
                raise ServiceShutdownError("query service has been shut down")
            admitted = self._pending_count < self.config.max_pending
            if admitted:
                self._pending_count += 1
                self._pending.put(ticket)
        if not admitted:
            self.metrics.counter("service.admission_rejections").inc()
            raise ServiceOverloadedError(
                f"pending queue full ({self.config.max_pending} queries "
                f"waiting, {self.config.max_concurrency} running)"
            )
        self.metrics.counter("service.queries_submitted").inc()
        return ticket

    def execute(
        self,
        query: str,
        hints: Optional[PlannerHints] = None,
        deadline_s: Optional[float] = None,
    ) -> QueryOutcome:
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(query, hints, deadline_s).result()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop admitting queries and drain workers (idempotent).

        By default queued queries still execute before the workers exit.
        With ``cancel_pending=True`` the pending queue is shed instead —
        queued tickets fail immediately with
        :class:`ServiceShutdownError` — *and* every in-flight query's
        cancellation token is triggered, so shutdown can never hang behind
        a slow query (it stops at its next row/morsel boundary and its
        ticket fails with :class:`~repro.errors.QueryCancelledError`).
        """
        with self._lock:
            first = not self._shutdown
            self._shutdown = True
            shed: list[QueryTicket] = []
            cancelled_running: list[QueryTicket] = []
            if cancel_pending:
                sentinels = 0
                while True:
                    try:
                        item = self._pending.get_nowait()
                    except queue.Empty:
                        break
                    if item is _SHUTDOWN:
                        sentinels += 1
                    else:
                        shed.append(item)
                self._pending_count -= len(shed)
                for _ in range(sentinels):
                    self._pending.put(_SHUTDOWN)
                cancelled_running = [
                    ticket
                    for ticket, _ in self._running.values()
                    if not ticket.token.cancelled
                ]
            if first:
                # The queue is unbounded, so these puts cannot block even
                # when max_pending tickets are still queued ahead of them.
                for _ in self._workers:
                    self._pending.put(_SHUTDOWN)
        for ticket in shed:
            self.metrics.counter("service.shed_on_shutdown").inc()
            ticket._fail(
                ServiceShutdownError("query service shut down before start"),
                QueryStatus.CANCELLED,
            )
        for ticket in cancelled_running:
            self.metrics.counter("service.cancelled_on_shutdown").inc()
            ticket.token.cancel()
        if first:
            self.db.plan_cache.unsubscribe(self._plan_cache_event)
            self.db.memory_pool.unbind_metrics(self.metrics)
            self._checkpoint_stop.set()
            self._watchdog_stop.set()
        if wait:
            for worker in self._workers:
                worker.join()
            if self._checkpointer is not None:
                self._checkpointer.join()
            if self._watchdog is not None:
                self._watchdog.join()
            # Workers are drained; any spill file still on disk is an
            # orphan (e.g. a simulated crash mid-spill) — reclaim it.
            self.db.spill_manager.sweep()

    def swap_database(self, new_db: GraphDatabase) -> GraphDatabase:
        """Atomically replace the served database object.

        The replica uses this when catch-up installs a shipped checkpoint:
        queries already executing finish against the old object (their
        snapshots stay pinned to its store); every later submission plans
        and runs against the new one. Metric/plan-cache subscriptions move
        over; the old database is returned for the caller to close.
        """
        with self._lock:
            old = self.db
            self.db = new_db
        old.plan_cache.unsubscribe(self._plan_cache_event)
        old.memory_pool.unbind_metrics(self.metrics)
        new_db.plan_cache.subscribe(self._plan_cache_event)
        new_db.memory_pool.bind_metrics(self.metrics)
        self.metrics.counter("service.database_swaps").inc()
        return old

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Counters + histogram summaries + live cache/service gauges."""
        snapshot = self.metrics.snapshot()
        plan_cache = self.db.plan_cache
        page_stats = self.db.page_cache.stats
        snapshot["plan_cache"] = {
            "hits": plan_cache.hits,
            "misses": plan_cache.misses,
            "invalidations": plan_cache.invalidations,
            "evictions": plan_cache.evictions,
            "size": len(plan_cache),
            "capacity": plan_cache.capacity,
        }
        snapshot["page_cache"] = {
            "hits": page_stats.hits,
            "misses": page_stats.misses,
            "evictions": page_stats.evictions,
            "hit_ratio": page_stats.hit_ratio,
        }
        with self._lock:
            snapshot["service"] = {
                "workers": self.config.max_concurrency,
                "pending": self._pending_count,
                "in_flight": self._in_flight,
                "shutdown": self._shutdown,
            }
        snapshot["memory"] = self.db.memory_pool.snapshot()
        mvcc = self.db.store.mvcc
        snapshot["mvcc"] = {
            "published_lsn": mvcc.published,
            "live_snapshots": mvcc.live_count(),
            **self.db.store.version_stats(),
        }
        if self.db.durability is not None:
            snapshot["durability"] = self.db.durability.status()
        return snapshot

    def _plan_cache_event(self, event: str) -> None:
        self.metrics.counter(f"plan_cache.{event}").inc()

    # ------------------------------------------------------------------
    # Background checkpointing
    # ------------------------------------------------------------------

    def _checkpoint_loop(self) -> None:
        interval = self.config.checkpoint_interval_s
        assert interval is not None
        while not self._checkpoint_stop.wait(interval):
            try:
                started = time.perf_counter()
                # The engine serializes with writers on the store's write
                # lock; reads continue against their snapshots throughout.
                self.db.durability.checkpoint()
                self.metrics.counter("durability.checkpoints").inc()
                self.metrics.histogram("durability.checkpoint_seconds").observe(
                    time.perf_counter() - started
                )
            except BaseException:  # noqa: BLE001 - incl. simulated crashes
                # A crashed engine performs no further I/O; stop trying.
                self.metrics.counter("durability.checkpoint_failures").inc()
                return

    # ------------------------------------------------------------------
    # Slow-query watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Cancel in-flight queries exceeding ``max_query_seconds``.

        Cancellation is cooperative (the runtime checks the token at row /
        morsel boundaries), so a runaway query stops at its next check and
        surfaces as ``QueryStatus.CANCELLED``.
        """
        ceiling = self.config.max_query_seconds
        assert ceiling is not None
        while not self._watchdog_stop.wait(self.config.watchdog_interval_s):
            now = time.monotonic()
            with self._lock:
                overdue = [
                    ticket
                    for ticket, dispatched in self._running.values()
                    if now - dispatched > ceiling and not ticket.token.cancelled
                ]
            for ticket in overdue:
                self.metrics.counter("service.watchdog_cancels").inc()
                ticket.token.cancel()

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._pending.get()
            if item is _SHUTDOWN:
                return
            with self._lock:
                self._pending_count -= 1
                self._in_flight += 1
            try:
                self._run_ticket(item)
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _run_ticket(self, ticket: QueryTicket) -> None:
        started = time.monotonic()
        queue_seconds = started - ticket.submitted_at
        self.metrics.histogram("service.queue_seconds").observe(queue_seconds)
        token = ticket.token
        if token.cancelled:
            self.metrics.counter("service.cancellations").inc()
            ticket._fail(QueryCancelledError(), QueryStatus.CANCELLED)
            return
        if token.expired:
            # The deadline expired while the query waited for a worker.
            self.metrics.counter("service.timeouts").inc()
            ticket._fail(
                QueryTimeoutError("deadline expired in the pending queue"),
                QueryStatus.TIMED_OUT,
            )
            return
        ticket.status = QueryStatus.RUNNING
        pool = self.db.memory_pool
        # Admission control for memory: reserve the query's grant before it
        # touches a worker's CPU. The wait is bounded (remaining deadline,
        # or a few seconds for deadline-less queries) so an exhausted pool
        # sheds load with backpressure instead of queueing forever.
        try:
            wait_s = token.remaining()
            reserved = pool.reserve_grant(
                self.config.memory_grant_bytes,
                timeout_s=_GRANT_WAIT_S if wait_s is None else wait_s,
                token=token,
            )
        except MemoryLimitExceeded as exc:
            if token.cancelled:
                self.metrics.counter("service.cancellations").inc()
                ticket._fail(QueryCancelledError(), QueryStatus.CANCELLED)
            else:
                self.metrics.counter("service.memory_rejections").inc()
                ticket._fail(exc, QueryStatus.FAILED)
            return
        tracker = pool.tracker(
            label=f"service:{ticket.query[:48]}",
            grant_bytes=self.config.memory_grant_bytes,
            spill_manager=self.db.spill_manager,
            reserved_bytes=reserved,
        )
        with self._lock:
            self._running[id(ticket)] = (ticket, time.monotonic())
        try:
            outcome = self._execute_with_retry(ticket, queue_seconds, tracker)
        except QueryTimeoutError as exc:
            self.metrics.counter("service.timeouts").inc()
            ticket.rows_produced = exc.rows_produced
            ticket._fail(exc, QueryStatus.TIMED_OUT)
        except QueryCancelledError as exc:
            self.metrics.counter("service.cancellations").inc()
            ticket.rows_produced = exc.rows_produced
            ticket._fail(exc, QueryStatus.CANCELLED)
        except MemoryLimitExceeded as exc:
            # The query outgrew the pool mid-flight; it was rolled back
            # (writes) or abandoned (reads) — the process and every other
            # query keep running.
            self.metrics.counter("service.memory_rejections").inc()
            ticket._fail(exc, QueryStatus.FAILED)
        except BaseException as exc:  # noqa: BLE001 - report to the caller
            self.metrics.counter("service.failures").inc()
            ticket._fail(exc, QueryStatus.FAILED)
        else:
            self.metrics.counter("service.queries_completed").inc()
            ticket._succeed(outcome)
        finally:
            with self._lock:
                self._running.pop(id(ticket), None)
            tracker.close()

    def _execute_with_retry(
        self, ticket: QueryTicket, queue_seconds: float, tracker
    ) -> QueryOutcome:
        db = self.db
        plan_started = time.perf_counter()
        cached = db.prepare(ticket.query, ticket.hints)
        planning_seconds = time.perf_counter() - plan_started
        self.metrics.histogram("service.planning_seconds").observe(
            planning_seconds
        )
        is_write = cached.analyzed.is_write
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = self._execute_once(ticket, cached, is_write, tracker)
                break
            except TransactionError:
                if not is_write or attempts > self.config.write_retries:
                    raise
                self.metrics.counter("service.retries").inc()
                self._backoff(ticket.token, attempts)
        outcome.planning_seconds = planning_seconds
        outcome.queue_seconds = queue_seconds
        outcome.attempts = attempts
        outcome.peak_memory_bytes = tracker.peak_bytes
        outcome.spill_runs = tracker.spill_runs
        self.metrics.histogram("service.peak_memory_bytes").observe(
            tracker.peak_bytes
        )
        outcome.total_seconds = (
            queue_seconds + planning_seconds + outcome.execution_seconds
        )
        self.metrics.histogram("service.execution_seconds").observe(
            outcome.execution_seconds
        )
        self.metrics.histogram(
            "service.rows_produced", DEFAULT_COUNT_BUCKETS
        ).observe(outcome.row_count)
        self.metrics.counter("service.rows_total").inc(outcome.row_count)
        if is_write:
            self.metrics.counter("service.write_queries").inc()
        else:
            self.metrics.counter("service.read_queries").inc()
        return outcome

    def _execute_once(
        self, ticket: QueryTicket, cached, is_write: bool, tracker
    ) -> QueryOutcome:
        db = self.db
        # Page-cache deltas are approximate under concurrency (the cache is
        # shared); they remain exact for single-worker services and useful
        # in aggregate otherwise.
        before = db.page_cache.stats.snapshot()
        execution_started = time.perf_counter()
        # MVCC: reads pin a snapshot and resolve version chains at its
        # commit LSN — no lock, no waiting on writers, no torn state.
        # Writes serialize with other writes on the store's write lock,
        # acquired inside the transaction itself (db.execute).
        durability = db.durability
        if is_write:
            # Group commit: while the transaction holds the write lock the
            # commit only *appends* its log record (deferred_sync); the
            # fsync happens after the lock is released, so concurrent
            # writers queue up behind one leader's fsync instead of each
            # paying their own.
            if durability is not None:
                with durability.deferred_sync():
                    result = db.execute(
                        ticket.query,
                        ticket.hints,
                        token=ticket.token,
                        prepared=cached,
                        execution_mode=self.config.execution_mode,
                        tracker=tracker,
                    )
                    rows = self._drain(result, ticket)
            else:
                result = db.execute(
                    ticket.query,
                    ticket.hints,
                    token=ticket.token,
                    prepared=cached,
                    execution_mode=self.config.execution_mode,
                    tracker=tracker,
                )
                rows = self._drain(result, ticket)
            if durability is not None:
                sync_started = time.perf_counter()
                durability.sync_pending()
                self.metrics.histogram("durability.sync_seconds").observe(
                    time.perf_counter() - sync_started
                )
            self._maybe_vacuum_versions()
        else:
            # Planning happened at latest (prepare); execution and drain
            # resolve at the snapshot's LSN. Acquiring is a dict insert —
            # readers never block writers and vice versa.
            with db.snapshot() as snap:
                self.metrics.counter("service.snapshot_reads").inc()
                result = db.execute(
                    ticket.query,
                    ticket.hints,
                    token=ticket.token,
                    prepared=cached,
                    execution_mode=self.config.execution_mode,
                    tracker=tracker,
                )
                rows = self._drain(result, ticket)
            self.metrics.histogram("service.snapshot_lag_lsns").observe(
                db.store.mvcc.published - snap.lsn
            )
        execution_seconds = time.perf_counter() - execution_started
        delta = db.page_cache.stats.delta_since(before)
        self.metrics.histogram(
            "service.page_hits_per_query", DEFAULT_COUNT_BUCKETS
        ).observe(delta.hits)
        self.metrics.histogram(
            "service.page_misses_per_query", DEFAULT_COUNT_BUCKETS
        ).observe(delta.misses)
        return QueryOutcome(
            rows=rows,
            columns=result.columns,
            execution_seconds=execution_seconds,
            max_intermediate_cardinality=result.max_intermediate_cardinality,
            page_cache_hits=delta.hits,
            page_cache_misses=delta.misses,
            commit_lsn=result.commit_lsn,
        )

    def _maybe_vacuum_versions(self) -> None:
        """Every N writes, reclaim version chains behind the oldest live
        snapshot (and fold index deltas when no snapshot is live)."""
        with self._lock:
            self._writes_until_gc -= 1
            if self._writes_until_gc > 0:
                return
            self._writes_until_gc = _VERSION_GC_WRITE_INTERVAL
        counters = self.db.vacuum_versions()
        self.metrics.counter("storage.version_gc_runs").inc()
        self.metrics.counter("storage.versions_reclaimed").inc(
            counters["reclaimed"]
        )
        self.metrics.counter("storage.versions_folded").inc(counters["folded"])

    @staticmethod
    def _drain(result, ticket: QueryTicket) -> list[dict]:
        """Materialize rows, attaching the partial count on cancellation."""
        rows: list[dict] = []
        try:
            for row in result:
                rows.append(row)
                ticket.rows_produced = len(rows)
        except QueryCancelledError as exc:
            exc.rows_produced = len(rows)
            raise
        return rows

    def _backoff(self, token: CancellationToken, attempt: int) -> None:
        """Exponential backoff, truncated by the query's deadline."""
        delay = min(
            self.config.retry_backoff_s * (2 ** (attempt - 1)),
            self.config.retry_backoff_cap_s,
        )
        remaining = token.remaining()
        if remaining is not None:
            if remaining <= 0:
                raise QueryTimeoutError("deadline expired between retries")
            delay = min(delay, remaining)
        if delay > 0:
            time.sleep(delay)
        token.check()
