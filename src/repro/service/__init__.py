"""Concurrent query service layer over the embedded database.

The embedded :class:`~repro.db.database.GraphDatabase` is a single-caller
API; this package turns it into something that can sit behind traffic:

* :class:`QueryService` — worker pool + admission control + per-query
  deadlines/cancellation + write-conflict retry,
* :class:`CancellationToken` — the cooperative cancellation signal the
  runtime checks at row boundaries,
* :class:`MetricsRegistry` — counters and latency histograms backing
  :meth:`QueryService.metrics_snapshot` and the shell's ``:metrics``.
"""

from repro.service.cancellation import CancellationToken
from repro.service.metrics import Counter, Histogram, MetricsRegistry
from repro.service.service import (
    QueryOutcome,
    QueryService,
    QueryStatus,
    QueryTicket,
    ServiceConfig,
)

__all__ = [
    "CancellationToken",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "QueryOutcome",
    "QueryService",
    "QueryStatus",
    "QueryTicket",
    "ServiceConfig",
]
