"""A readers-writer lock guarding the store during service execution.

The storage layer (GraphStore record dicts, label index, statistics) has no
internal locking: a read scanning those structures while a write commits can
observe torn state or raise ``dictionary changed size during iteration``.
Until the store gains snapshot isolation, the service brackets every query
with this lock — reads share it (any number run concurrently), writes hold
it exclusively.

The lock is writer-preference: once a writer is waiting, new readers queue
behind it, so a steady stream of reads cannot starve writes. It is not
reentrant in either mode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        """Take the lock in shared mode (blocks while a writer holds or
        awaits it)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Take the lock exclusively (blocks until all readers drain)."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
