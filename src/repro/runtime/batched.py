"""Batched (morsel-at-a-time) operator runtime over slot-based rows.

The legacy pipeline in :mod:`repro.runtime.operators` is tuple-at-a-time:
every operator output allocates a fresh :class:`~repro.runtime.row.Row`
via a full dict copy, and every row crossing an operator pays a profile
increment plus an optional cancellation check. This module is the batched
counterpart selected with ``GraphDatabase.execute(..., execution_mode=
"batched")``:

* A compile-time **slot allocation pass** (:class:`SlotLayout`) assigns
  each variable a fixed integer slot. Rows become fixed-width lists; the
  last element carries the tuple of bound relationship ids (Cypher's
  relationship-uniqueness scope, reset at projection boundaries).
* Operators produce/consume **morsels** — lists of up to
  ``RuntimeContext.morsel_size`` (default 1024) slot rows — so profile
  accounting and cancellation checks are paid once per batch instead of
  once per row, and hot inner loops hoist bound methods into locals.
* Expressions are compiled once per plan via
  :func:`repro.runtime.expressions.compile_expression`, removing the
  per-row AST walk and name-to-value dict lookups.

Semantics are identical to the row engine (the differential tests in
``tests/test_batched_runtime.py`` assert result, profile-count, and
max-intermediate-cardinality equality), with one representational note:
a slot holding None means *unbound*, whereas the row engine can
distinguish an absent dict key from an explicit None binding. The two are
observationally equivalent here because explicit None bindings only
arise from projected expressions, which either terminate a part (and are
reconstructed per projection column, preserving None) or enter the next
part through the shared argument row, where both sides of any join see
the same value.

Cancellation uses ``CancellationToken.check_batch`` when available: the
per-row ``check`` only consults the deadline clock every
``DEADLINE_STRIDE`` calls, which per-morsel checking would stretch to
tens of thousands of rows; ``check_batch`` always reads the clock, so
morsel size bounds the deadline-abort latency.

Two cross-cutting concerns are compiled in per subtree:

* **Memory accounting** — blocking operators buffer through the shared
  spill-aware structures in :mod:`repro.resources.spill`, charging the
  query's :class:`~repro.resources.pool.MemoryTracker` (reached via
  ``ctx.mem()``) with the same deterministic per-row estimates as the
  row engine, so both engines spill at identical input cardinalities
  and differential tests stay exact under any budget.
* **Demand-driven LIMIT** — ``_limit`` compiles its streaming child
  subtree with a morsel size of one, so upstream operators produce (and
  profile) exactly as many rows as the row engine's lazy pull would,
  instead of overfilling the final morsel. Blocking operators reset
  their fully-consumed children back to ``ctx.morsel_size`` since
  laziness cannot propagate through a full materialization.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import ReproError
from repro.planner.plans import (
    LogicalPlan,
    PlanAggregation,
    PlanAllNodesScan,
    PlanArgument,
    PlanCartesianProduct,
    PlanDistinct,
    PlanExpand,
    PlanFilter,
    PlanLimit,
    PlanNodeByLabelScan,
    PlanNodeHashJoin,
    PlanPathIndexFilteredScan,
    PlanPathIndexPrefixSeek,
    PlanPathIndexScan,
    PlanProjection,
    PlanRelationshipByTypeScan,
    PlanSort,
)
from repro.runtime.expressions import (
    compile_expression,
    compile_predicate,
    evaluate,
)
from repro.runtime.operators import (
    RuntimeContext,
    _Accumulator,
    _aggregate_calls,
    _filtered_scan_constraints,
    _hashable,
    _label_ids,
    _labels_ok,
    _resolve_type_ids,
    _skip_target,
    _sort_key,
)
from repro.resources import (
    ROW_BYTES,
    AggregationSpillBuffer,
    AppendSpillBuffer,
    Desc,
    DistinctSpillBuffer,
    JoinSpillBuffer,
    SortSpillBuffer,
)
from repro.runtime.row import Row

DEFAULT_MORSEL_SIZE = 1024
"""Rows per morsel: large enough to amortize per-batch overhead, small
enough that per-batch cancellation still aborts scans promptly."""

#: A batched operator: one argument slot row in, morsels of slot rows out.
BatchRunFn = Callable[[list], Iterator[list]]


class SlotLayout:
    """Compile-time variable-to-slot mapping for one query part.

    Slot rows are lists of length ``width + 1``: one element per variable
    plus a trailing tuple of bound relationship ids. Slots are allocated
    on first reference during plan compilation (and for argument-row
    names during :meth:`row_from`), and indices never move, so closures
    capture plain ints. ``width`` is read at *run* time because argument
    rows may introduce names after compilation.
    """

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: dict[str, int] = {}

    def slot_of(self, name: str) -> int:
        return self.slots.setdefault(name, len(self.slots))

    @property
    def width(self) -> int:
        return len(self.slots)

    def row_from(self, arg_row: Row) -> list:
        """Convert a dict row into a slot row, allocating missing slots."""
        slot_of = self.slots.setdefault
        for name in arg_row.values:
            slot_of(name, len(self.slots))
        width = len(self.slots)
        row = [None] * (width + 1)
        for name, value in arg_row.values.items():
            row[self.slots[name]] = value
        row[width] = tuple(arg_row.rel_ids)
        return row

    def row_to(self, slot_row: list) -> Row:
        """Convert a slot row back into a dict row (part boundaries).

        None slots are dropped: a None slot means *unbound*, and every
        consumer of the resulting row reads bindings via ``.get`` where
        absent and explicitly-None agree.
        """
        width = len(slot_row) - 1
        values: dict[str, object] = {}
        for name, slot in self.slots.items():
            if slot >= width:
                break
            value = slot_row[slot]
            if value is not None:
                values[name] = value
        return Row(values, frozenset(slot_row[width]))


def compile_batched_plan(
    plan: LogicalPlan,
    ctx: RuntimeContext,
    layout: SlotLayout,
    morsel_size: Optional[int] = None,
) -> BatchRunFn:
    """Compile ``plan`` into a batched pipeline with per-morsel profiling.

    The cancellation token (when present) is checked once per morsel via
    ``check_batch`` (fall back to ``check`` for token-like objects without
    it), so morsel size bounds abort latency instead of row count.

    ``morsel_size`` overrides the output batch size for this subtree
    (``None`` means ``ctx.morsel_size``); LIMIT uses it to compile its
    child demand-driven.
    """
    if morsel_size is None:
        morsel_size = ctx.morsel_size
    run = _compile(plan, ctx, layout, morsel_size)
    profile = ctx.profile
    record = profile.record
    token = ctx.token
    if token is None:

        def counted(arg: list) -> Iterator[list]:
            for morsel in run(arg):
                if morsel:
                    record(plan, len(morsel))
                    yield morsel

    else:
        check = getattr(token, "check_batch", None) or token.check

        def counted(arg: list) -> Iterator[list]:
            for morsel in run(arg):
                if morsel:
                    check()
                    record(plan, len(morsel))
                    yield morsel

    return counted


def _compile(
    plan: LogicalPlan, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    if isinstance(plan, PlanArgument):
        return _argument(plan, ctx, layout)
    if isinstance(plan, PlanAllNodesScan):
        return _all_nodes_scan(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanNodeByLabelScan):
        return _node_by_label_scan(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanRelationshipByTypeScan):
        return _relationship_by_type_scan(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanExpand):
        return _expand(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanNodeHashJoin):
        return _node_hash_join(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanCartesianProduct):
        return _cartesian_product(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanFilter):
        return _filter(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanPathIndexScan):
        return _path_index_scan(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanPathIndexFilteredScan):
        return _path_index_filtered_scan(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanPathIndexPrefixSeek):
        return _path_index_prefix_seek(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanProjection):
        return _projection(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanAggregation):
        return _aggregation(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanDistinct):
        return _distinct(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanSort):
        return _sort(plan, ctx, layout, morsel_size)
    if isinstance(plan, PlanLimit):
        return _limit(plan, ctx, layout, morsel_size)
    raise ReproError(f"no batched operator for {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


def _argument(plan: PlanArgument, ctx: RuntimeContext, layout: SlotLayout) -> BatchRunFn:
    for variable in plan.variables:
        layout.slot_of(variable)

    def run(arg: list) -> Iterator[list]:
        yield [arg]

    return run


def _all_nodes_scan(
    plan: PlanAllNodesScan, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    slot = layout.slot_of(plan.node)
    store = ctx.store

    def run(arg: list) -> Iterator[list]:
        bound = arg[slot]
        out: list = []
        append = out.append
        for node_id in store.all_nodes():
            if bound is not None and bound != node_id:
                continue
            row = arg[:]
            row[slot] = node_id
            append(row)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _node_by_label_scan(
    plan: PlanNodeByLabelScan, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    slot = layout.slot_of(plan.node)
    store = ctx.store
    post = [label_id for _, label_id in _label_ids(ctx, plan.post_labels)]
    label_id_static = store.labels.id_of(plan.label)

    def run(arg: list) -> Iterator[list]:
        label_id = (
            label_id_static
            if label_id_static is not None
            else store.labels.id_of(plan.label)
        )
        if label_id is None:
            return
        bound = arg[slot]
        out: list = []
        append = out.append
        for node_id in store.nodes_with_label(label_id):
            if bound is not None and bound != node_id:
                continue
            if post and not _labels_ok(ctx, node_id, post):
                continue
            row = arg[:]
            row[slot] = node_id
            append(row)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _relationship_by_type_scan(
    plan: PlanRelationshipByTypeScan,
    ctx: RuntimeContext,
    layout: SlotLayout,
    morsel_size: int,
) -> BatchRunFn:
    if ctx.index_store is None:
        raise ReproError("RelationshipByTypeScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    rel_slot = layout.slot_of(plan.rel)
    start_slot = layout.slot_of(plan.start_node)
    end_slot = layout.slot_of(plan.end_node)
    label_checks = [
        (layout.slot_of(var), ctx.store.labels.id_of(label))
        for var, label in plan.post_labels
    ]
    store = ctx.store
    directed = plan.directed

    def run(arg: list) -> Iterator[list]:
        width = len(arg) - 1
        bound_rel = arg[rel_slot]
        arg_rels = arg[width]
        out: list = []
        append = out.append
        for start_id, rel_id, end_id in index.scan():
            if bound_rel is not None and bound_rel != rel_id:
                continue
            if rel_id in arg_rels and bound_rel != rel_id:
                continue  # relationship uniqueness (bound by another variable)
            orientations = [(start_id, end_id)]
            if not directed and start_id != end_id:
                orientations.append((end_id, start_id))
            for source, target in orientations:
                row = arg[:]
                existing = row[start_slot]
                if existing is not None and existing != source:
                    continue
                row[start_slot] = source
                existing = row[end_slot]
                if existing is not None and existing != target:
                    continue
                row[end_slot] = target
                row[rel_slot] = rel_id
                ok = True
                for check_slot, label_id in label_checks:
                    node_id = row[check_slot]
                    # An unbound check variable can never satisfy the label.
                    if (
                        node_id is None
                        or label_id is None
                        or not store.has_label(int(node_id), label_id)
                    ):
                        ok = False
                        break
                if not ok:
                    continue
                row[width] = (
                    arg_rels if rel_id in arg_rels else arg_rels + (rel_id,)
                )
                append(row)
                if len(out) >= morsel_size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    return run


# ---------------------------------------------------------------------------
# Expand / join / product / filter
# ---------------------------------------------------------------------------


def _expand(
    plan: PlanExpand, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    child = compile_batched_plan(plan.children[0], ctx, layout, morsel_size)
    from_slot = layout.slot_of(plan.from_node)
    rel_slot = layout.slot_of(plan.rel)
    to_slot = layout.slot_of(plan.to_node)
    post = [label_id for _, label_id in _label_ids(ctx, plan.post_labels)]
    static_type_ids = _resolve_type_ids(ctx, plan.types) if plan.types else None
    direction = plan.direction
    into = plan.into
    expand = ctx.store.expand

    def run(arg: list) -> Iterator[list]:
        type_ids: Optional[set[int]] = None
        single_type: Optional[int] = None
        if plan.types:
            resolved = static_type_ids
            if len(resolved) < len(plan.types):
                resolved = _resolve_type_ids(ctx, plan.types)
            if not resolved:
                return  # none of the requested types exist
            if len(resolved) == 1:
                single_type = next(iter(resolved))
            else:
                type_ids = resolved  # filter during iteration
        width = len(arg) - 1
        out: list = []
        append = out.append
        for morsel in child(arg):
            for row in morsel:
                from_id = row[from_slot]
                if from_id is None:
                    continue
                target_bound = row[to_slot] if into else None
                bound_rel = row[rel_slot]
                row_rels = row[width]
                for rel, neighbour in expand(int(from_id), direction, single_type):
                    if type_ids is not None and rel.type_id not in type_ids:
                        continue
                    rel_id = rel.id
                    if bound_rel is not None and bound_rel != rel_id:
                        continue
                    if rel_id in row_rels and bound_rel != rel_id:
                        continue  # relationship uniqueness
                    if into:
                        if neighbour != target_bound:
                            continue
                        new = row[:]
                    else:
                        if post and not _labels_ok(ctx, neighbour, post):
                            continue
                        new = row[:]
                        new[to_slot] = neighbour
                    new[rel_slot] = rel_id
                    new[width] = (
                        row_rels if rel_id in row_rels else row_rels + (rel_id,)
                    )
                    append(new)
                    if len(out) >= morsel_size:
                        yield out
                        out = []
                        append = out.append
        if out:
            yield out

    return run


def _merge_rows(
    partner: list, row: list, shared: frozenset, width: int
) -> Optional[list]:
    """Merge two slot rows built from the same argument row.

    Returns None on a binding conflict or a relationship-uniqueness
    violation (a rel id bound on both sides that did not come in through
    the shared argument row).
    """
    row_rels = row[width]
    partner_rels = partner[width]
    for rel_id in partner_rels:
        if rel_id in row_rels and rel_id not in shared:
            return None
    merged = partner[:]
    for slot in range(width):
        value = row[slot]
        if value is None:
            continue
        existing = merged[slot]
        if existing is None:
            merged[slot] = value
        elif existing != value:
            return None
    combined = partner_rels
    for rel_id in row_rels:
        if rel_id not in combined:
            combined = combined + (rel_id,)
    merged[width] = combined
    return merged


def _node_hash_join(
    plan: PlanNodeHashJoin, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    # The build side is fully consumed regardless of downstream demand,
    # so it always runs at the context morsel size; the probe side
    # streams and inherits the (possibly LIMIT-reduced) subtree size.
    left = compile_batched_plan(plan.children[0], ctx, layout, ctx.morsel_size)
    right = compile_batched_plan(plan.children[1], ctx, layout, morsel_size)
    join_slots = [layout.slot_of(var) for var in plan.join_nodes]

    def run(arg: list) -> Iterator[list]:
        width = len(arg) - 1
        shared = frozenset(arg[width])

        def merge(partner: list, row: list) -> Optional[list]:
            return _merge_rows(partner, row, shared, width)

        buffer = JoinSpillBuffer(ctx.mem(), plan, merge)
        for morsel in left(arg):
            for row in morsel:
                key = tuple(row[slot] for slot in join_slots)
                buffer.insert(key, row)
        out: list = []
        append = out.append
        for morsel in right(arg):
            for row in morsel:
                key = tuple(row[slot] for slot in join_slots)
                for merged in buffer.probe(key, row):
                    append(merged)
                    if len(out) >= morsel_size:
                        yield out
                        out = []
                        append = out.append
        for merged in buffer.drain():
            append(merged)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _cartesian_product(
    plan: PlanCartesianProduct, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    # The right side is materialized wholesale on the first left row, so
    # it always runs at the context morsel size; the left side streams.
    left = compile_batched_plan(plan.children[0], ctx, layout, morsel_size)
    right = compile_batched_plan(plan.children[1], ctx, layout, ctx.morsel_size)

    def run(arg: list) -> Iterator[list]:
        width = len(arg) - 1
        right_rows: Optional[AppendSpillBuffer] = None
        shared = frozenset(arg[width])
        out: list = []
        append = out.append
        for morsel in left(arg):
            for left_row in morsel:
                if right_rows is None:
                    right_rows = AppendSpillBuffer(ctx.mem(), plan)
                    for right_morsel in right(arg):
                        for row in right_morsel:
                            right_rows.add(row)
                for right_row in right_rows:
                    merged = _merge_rows(left_row, right_row, shared, width)
                    if merged is not None:
                        append(merged)
                        if len(out) >= morsel_size:
                            yield out
                            out = []
                            append = out.append
        if out:
            yield out

    return run


def _filter(
    plan: PlanFilter, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    child = compile_batched_plan(plan.children[0], ctx, layout, morsel_size)
    predicates = [
        compile_predicate(predicate, layout.slot_of, ctx.eval_ctx)
        for predicate in plan.predicates
    ]

    def run(arg: list) -> Iterator[list]:
        for morsel in child(arg):
            out = [
                row
                for row in morsel
                if all(predicate(row) for predicate in predicates)
            ]
            if out:
                yield out

    return run


# ---------------------------------------------------------------------------
# Path index operators (§5.1)
# ---------------------------------------------------------------------------


def _slot_entry_binder(
    plan, ctx: RuntimeContext, layout: SlotLayout, skip_positions: int = 0
) -> Callable[[tuple, list], Optional[list]]:
    """Slot-row counterpart of ``operators._entry_binder``.

    Checks, in stored order: binding consistency (repeated variables and
    pre-bound variables), relationship uniqueness, residual label filters
    and residual type filters. ``skip_positions`` marks a leading prefix
    already bound by the row (PathIndexPrefixSeek).
    """
    entry_slots = [layout.slot_of(var) for var in plan.entry_vars]
    label_check_map: dict[int, list[int]] = {}
    for var, label in getattr(plan, "label_filters", ()):
        label_id = ctx.store.labels.id_of(label)
        label_check_map.setdefault(layout.slot_of(var), []).append(
            -1 if label_id is None else label_id
        )
    label_checks = list(label_check_map.items())
    type_checks = [
        (layout.slot_of(var), frozenset(_resolve_type_ids(ctx, type_names)))
        for var, type_names in getattr(plan, "type_filters", ())
    ]
    store = ctx.store

    def bind(entry: tuple, arg_row: list) -> Optional[list]:
        width = len(arg_row) - 1
        arg_rels = arg_row[width]
        row = arg_row[:]
        new_rels: list[int] = []
        for position, slot in enumerate(entry_slots):
            identifier = entry[position]
            pre_bound = arg_row[slot]
            existing = row[slot]
            if existing is not None and existing != identifier:
                return None
            row[slot] = identifier
            if position % 2 == 1 and position >= skip_positions:
                if identifier in new_rels:
                    return None
                # Uniqueness: reject ids bound to *another* relationship
                # variable; re-binding the same variable (an anchored or
                # argument relationship) is consistent, not a duplicate.
                if identifier in arg_rels and pre_bound != identifier:
                    return None
                if pre_bound != identifier:
                    new_rels.append(identifier)
        for slot, label_ids in label_checks:
            node_id = int(row[slot])
            for label_id in label_ids:
                if label_id < 0 or not store.has_label(node_id, label_id):
                    return None
        for slot, allowed in type_checks:
            rel = store.relationship(int(row[slot]))
            if rel.type_id not in allowed:
                return None
        if new_rels:
            row[width] = arg_rels + tuple(new_rels)
        return row

    return bind


def _path_index_scan(
    plan: PlanPathIndexScan, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    bind = _slot_entry_binder(plan, ctx, layout)

    def run(arg: list) -> Iterator[list]:
        out: list = []
        append = out.append
        for entry in index.scan():
            row = bind(entry, arg)
            if row is not None:
                append(row)
                if len(out) >= morsel_size:
                    yield out
                    out = []
                    append = out.append
        if out:
            yield out

    return run


def _path_index_filtered_scan(
    plan: PlanPathIndexFilteredScan,
    ctx: RuntimeContext,
    layout: SlotLayout,
    morsel_size: int,
) -> BatchRunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexFilteredScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    bind = _slot_entry_binder(plan, ctx, layout)
    width = len(plan.entry_vars)
    must_differ, must_equal, residual = _filtered_scan_constraints(plan)
    predicates = [
        compile_predicate(predicate, layout.slot_of, ctx.eval_ctx)
        for predicate in residual
    ]

    def run(arg: list) -> Iterator[list]:
        out: list = []
        append = out.append
        lower = (0,) * width
        while True:
            restart: Optional[tuple[int, ...]] = None
            for entry in index.scan_from(lower):
                violation = _skip_target(entry, must_differ, must_equal, width)
                if violation is not None:
                    restart = violation
                    break
                row = bind(entry, arg)
                if row is None:
                    continue
                if all(predicate(row) for predicate in predicates):
                    append(row)
                    if len(out) >= morsel_size:
                        yield out
                        out = []
                        append = out.append
            if restart is None:
                break
            lower = restart
        if out:
            yield out

    return run


def _path_index_prefix_seek(
    plan: PlanPathIndexPrefixSeek,
    ctx: RuntimeContext,
    layout: SlotLayout,
    morsel_size: int,
) -> BatchRunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexPrefixSeek requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    # The child is fully materialized into prefix groups, so it always
    # runs at the context morsel size.
    child = compile_batched_plan(plan.children[0], ctx, layout, ctx.morsel_size)
    prefix_slots = [
        layout.slot_of(var) for var in plan.entry_vars[: plan.prefix_length]
    ]
    bind = _slot_entry_binder(plan, ctx, layout, skip_positions=plan.prefix_length)
    store = ctx.store

    def run(arg: list) -> Iterator[list]:
        # Take in all child results, group them by their prefix, then seek
        # the index once per distinct prefix (§5.1.3). The grouped rows are
        # accessed randomly per prefix, so they cannot spill; charge them
        # against the tracker (released wholesale at tracker close).
        mem = ctx.mem()
        groups: dict[tuple[int, ...], list] = {}
        for morsel in child(arg):
            for row in morsel:
                prefix = tuple(int(row[slot]) for slot in prefix_slots)
                groups.setdefault(prefix, []).append(row)
                mem.charge(plan, ROW_BYTES)
        out: list = []
        append = out.append
        for prefix, rows in groups.items():
            # Partial indexes (§4.1) materialize the start node on demand.
            index.prepare_prefix(prefix, store)
            for entry in index.scan_prefix(prefix):
                for row in rows:
                    combined = bind(entry, row)
                    if combined is not None:
                        append(combined)
                        if len(out) >= morsel_size:
                            yield out
                            out = []
                            append = out.append
        if out:
            yield out

    return run


# ---------------------------------------------------------------------------
# Projection boundary operators
# ---------------------------------------------------------------------------


def _projection(
    plan: PlanProjection, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    child = compile_batched_plan(plan.children[0], ctx, layout, morsel_size)
    items = [
        (
            layout.slot_of(item.output_name),
            compile_expression(item.expression, layout.slot_of, ctx.eval_ctx),
        )
        for item in plan.items
    ]

    def run(arg: list) -> Iterator[list]:
        width = layout.width
        for morsel in child(arg):
            out = []
            for row in morsel:
                new = [None] * (width + 1)
                new[width] = ()  # uniqueness scope resets at the boundary
                for slot, fn in items:
                    new[slot] = fn(row)
                out.append(new)
            yield out

    return run


def _aggregation(
    plan: PlanAggregation, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    # Aggregation consumes its entire child regardless of demand.
    child = compile_batched_plan(plan.children[0], ctx, layout, ctx.morsel_size)
    grouping = [
        (
            item.output_name,
            layout.slot_of(item.output_name),
            compile_expression(item.expression, layout.slot_of, ctx.eval_ctx),
        )
        for item in plan.grouping_items
    ]
    aggregates = []
    for item in plan.aggregate_items:
        compiled_calls = [
            (
                call,
                None
                if call.star
                else compile_expression(call.argument, layout.slot_of, ctx.eval_ctx),
            )
            for call in _aggregate_calls(item.expression)
        ]
        aggregates.append((item, layout.slot_of(item.output_name), compiled_calls))
    eval_ctx = ctx.eval_ctx

    def make_accumulators():
        return [
            [(_Accumulator(call), arg_fn) for call, arg_fn in compiled_calls]
            for _, _, compiled_calls in aggregates
        ]

    def new_state(row: list) -> tuple[list, list]:
        return ([(name, fn(row)) for name, _, fn in grouping], make_accumulators())

    def feed(state: tuple[list, list], row: list) -> None:
        for item_accumulators in state[1]:
            for accumulator, arg_fn in item_accumulators:
                if arg_fn is None:  # count(*)
                    accumulator.count += 1
                else:
                    accumulator.feed_value(arg_fn(row))

    def run(arg: list) -> Iterator[list]:
        width = layout.width
        buffer = AggregationSpillBuffer(ctx.mem(), plan, new_state, feed)
        for morsel in child(arg):
            for row in morsel:
                key = tuple(_hashable(fn(row)) for _, _, fn in grouping)
                buffer.add(key, row)
        if buffer.is_empty and not grouping:
            # Global aggregation over zero rows still yields one row.
            states: list = [([], make_accumulators())]
        else:
            states = buffer.states()
        out: list = []
        append = out.append
        for key_values, accumulator_lists in states:
            values = dict(key_values)
            for (item, _, _), item_accumulators in zip(aggregates, accumulator_lists):
                results = {
                    accumulator.call: accumulator.result()
                    for accumulator, _ in item_accumulators
                }
                values[item.output_name] = evaluate(
                    item.expression, Row(values), eval_ctx, results
                )
            new = [None] * (width + 1)
            new[width] = ()
            for name, slot, _ in grouping:
                new[slot] = values[name]
            for item, slot, _ in aggregates:
                new[slot] = values[item.output_name]
            append(new)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _distinct(
    plan: PlanDistinct, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    child = compile_batched_plan(plan.children[0], ctx, layout, morsel_size)
    slots = [layout.slot_of(column) for column in plan.columns]

    def run(arg: list) -> Iterator[list]:
        buffer = DistinctSpillBuffer(ctx.mem(), plan)
        out: list = []
        append = out.append
        for morsel in child(arg):
            for row in morsel:
                key = tuple(_hashable(row[slot]) for slot in slots)
                if buffer.offer(key, row):
                    append(row)
                    if len(out) >= morsel_size:
                        yield out
                        out = []
                        append = out.append
        for row in buffer.drain():
            append(row)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _sort(
    plan: PlanSort, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    # Sort consumes its entire child regardless of demand.
    child = compile_batched_plan(plan.children[0], ctx, layout, ctx.morsel_size)
    keys = [
        (compile_expression(expression, layout.slot_of, ctx.eval_ctx), ascending)
        for expression, ascending in plan.order_by
    ]

    def composed_key(row: list) -> tuple:
        # A single stable sort on this composed key is equivalent to the
        # historical chain of per-level stable sorts (descending levels
        # invert comparisons via Desc), and it also orders spilled runs.
        return tuple(
            _sort_key(fn(row)) if ascending else Desc(_sort_key(fn(row)))
            for fn, ascending in keys
        )

    def run(arg: list) -> Iterator[list]:
        buffer = SortSpillBuffer(ctx.mem(), plan, composed_key)
        for morsel in child(arg):
            for row in morsel:
                buffer.add(row)
        out: list = []
        append = out.append
        for row in buffer:
            append(row)
            if len(out) >= morsel_size:
                yield out
                out = []
                append = out.append
        if out:
            yield out

    return run


def _limit(
    plan: PlanLimit, ctx: RuntimeContext, layout: SlotLayout, morsel_size: int
) -> BatchRunFn:
    # Compile the child subtree demand-driven (morsels of one) so that
    # upstream operators produce — and profile — exactly the rows the
    # row engine's lazy pull would, instead of overfilling the final
    # morsel past the limit. Blocking operators below reset their own
    # children back to ctx.morsel_size.
    child = compile_batched_plan(plan.children[0], ctx, layout, 1)
    skip = plan.skip
    limit = plan.limit

    def run(arg: list) -> Iterator[list]:
        skipped = 0
        produced = 0
        for morsel in child(arg):
            out = []
            for row in morsel:
                if skipped < skip:
                    skipped += 1
                    continue
                if limit >= 0 and produced >= limit:
                    if out:
                        yield out
                    return
                produced += 1
                out.append(row)
            if out:
                yield out

    return run
