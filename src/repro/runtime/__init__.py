"""Runtime: physical operators, expression evaluation, and the executor.

Logical plans are compiled into pull-based iterator pipelines ("the results
are pulled from the executable plan using an iterator interface", §2.1.4).
Every operator counts the rows it produces, which yields the *maximum
intermediate state cardinality* metric of the evaluation (Tables 3/7/10/11),
and relationship-uniqueness (Cypher's default MATCH semantics, §7.1 footnote)
is enforced by every operator that binds a relationship.
"""

from repro.runtime.row import Row
from repro.runtime.executor import ExecutionProfile, Executor

__all__ = ["ExecutionProfile", "Executor", "Row"]
