"""Execution rows: variable bindings plus bound-relationship tracking.

Values are entity identifiers (ints) for node/relationship variables and
plain Python values for projected expressions. ``rel_ids`` carries every
relationship bound so far in the current query part so operators can enforce
Cypher's relationship-uniqueness semantics cheaply.
"""

from __future__ import annotations

from typing import Iterable, Optional


class Row:
    """An immutable-by-convention binding of variables to values."""

    __slots__ = ("values", "rel_ids")

    def __init__(
        self,
        values: Optional[dict[str, object]] = None,
        rel_ids: frozenset[int] = frozenset(),
    ) -> None:
        self.values: dict[str, object] = values if values is not None else {}
        self.rel_ids = rel_ids

    @classmethod
    def empty(cls) -> "Row":
        return cls({}, frozenset())

    def get(self, name: str) -> object:
        return self.values.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def extended(self, new_values: dict[str, object], new_rels: Iterable[int] = ()) -> "Row":
        """A new row with extra bindings and relationship ids."""
        merged = dict(self.values)
        merged.update(new_values)
        rels = self.rel_ids
        new_rel_set = frozenset(new_rels)
        if new_rel_set:
            rels = rels | new_rel_set
        return Row(merged, rels)

    def project(self, values: dict[str, object]) -> "Row":
        """A fresh row for a projection boundary (uniqueness scope resets)."""
        return Row(values, frozenset())

    def __repr__(self) -> str:
        return f"Row({self.values})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Row) and self.values == other.values

    def __hash__(self) -> int:  # pragma: no cover - rows rarely hashed
        return hash(tuple(sorted(self.values.items(), key=lambda kv: kv[0])))
