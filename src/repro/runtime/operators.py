"""Compilation of logical plans into pull-based operator pipelines.

``compile_plan`` turns a :class:`~repro.planner.plans.LogicalPlan` tree into
a function ``run(argument_row) -> Iterator[Row]``. Every operator:

* merges its bindings into the incoming argument row,
* enforces Cypher's relationship-uniqueness semantics when binding
  relationships (paper §7.1, footnote 2),
* increments its row counter in the profile, from which the *max intermediate
  state cardinality* metric is derived.

``PathIndexFilteredScan`` implements the B+-tree skip-scan of §5.1.2: when an
entry violates an entry-internal constraint (repeated relationship, a
``x <> y`` predicate over entry variables, or a binding inconsistency), the
scan seeks past the whole violating subtree instead of stepping entry by
entry.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.cypher import ast
from repro.errors import ReproError
from repro.pathindex.store import PathIndexStore
from repro.planner.plans import (
    LogicalPlan,
    PlanAggregation,
    PlanAllNodesScan,
    PlanArgument,
    PlanCartesianProduct,
    PlanDistinct,
    PlanExpand,
    PlanFilter,
    PlanLimit,
    PlanNodeByLabelScan,
    PlanNodeHashJoin,
    PlanPathIndexFilteredScan,
    PlanPathIndexPrefixSeek,
    PlanPathIndexScan,
    PlanProjection,
    PlanRelationshipByTypeScan,
    PlanSort,
)
from repro.resources import (
    NULL_TRACKER,
    ROW_BYTES,
    AggregationSpillBuffer,
    AppendSpillBuffer,
    Desc,
    DistinctSpillBuffer,
    JoinSpillBuffer,
    SortSpillBuffer,
)
from repro.runtime.expressions import EvaluationContext, evaluate, is_true
from repro.runtime.row import Row
from repro.storage.graphstore import GraphStore

RunFn = Callable[[Row], Iterator[Row]]


class OperatorProfile:
    """Rows produced per operator, keyed by plan-node identity.

    ``peak_bytes`` / ``spills`` carry the memory tracker's per-operator
    accounting (peak buffered bytes and spill-run counts); keys are
    ``id(plan)`` for plan operators and plain strings for non-plan buffers
    (the update buffer, index initialization).
    """

    def __init__(self) -> None:
        self.rows: dict[int, int] = {}
        self.descriptions: dict[int, str] = {}
        self.peak_bytes: dict = {}
        self.spills: dict = {}

    def record(self, plan: LogicalPlan, count: int) -> None:
        key = id(plan)
        self.rows[key] = self.rows.get(key, 0) + count
        if key not in self.descriptions:
            self.descriptions[key] = plan.describe()

    def record_memory(self, key, peak: int, spills: int, description: str) -> None:
        self.peak_bytes[key] = max(self.peak_bytes.get(key, 0), peak)
        if spills:
            self.spills[key] = self.spills.get(key, 0) + spills
        if key not in self.descriptions:
            self.descriptions[key] = description

    def max_intermediate_cardinality(self) -> int:
        return max(self.rows.values(), default=0)

    def by_operator(self) -> list[tuple[str, int]]:
        return [
            (self.descriptions[key], count) for key, count in self.rows.items()
        ]

    def bytes_by_operator(self) -> list[tuple[str, int, int]]:
        """``(description, peak_bytes, spill_runs)`` per charged operator."""
        return [
            (self.descriptions.get(key, str(key)), peak, self.spills.get(key, 0))
            for key, peak in self.peak_bytes.items()
        ]

    def total_spill_runs(self) -> int:
        return sum(self.spills.values())

    def merge(self, other: "OperatorProfile") -> None:
        for key, count in other.rows.items():
            self.rows[key] = self.rows.get(key, 0) + count
        for key, peak in other.peak_bytes.items():
            self.peak_bytes[key] = max(self.peak_bytes.get(key, 0), peak)
        for key, spills in other.spills.items():
            self.spills[key] = self.spills.get(key, 0) + spills
        self.descriptions.update(other.descriptions)


class RuntimeContext:
    """Shared state for one query execution.

    ``token`` (when set) is a cooperative cancellation token — see
    ``repro.service.cancellation`` — checked at every operator's row
    boundary (row engine) or morsel boundary (batched engine), so deadline
    expiry or an explicit cancel stops a query mid-scan instead of letting
    it run to completion. ``morsel_size`` is the batch size used by the
    batched engine; the row engine ignores it.

    ``tracker`` (when set) is a per-query
    :class:`~repro.resources.MemoryTracker`: blocking operators charge it as
    their buffers grow and spill to disk once the query's grant is
    exceeded. Without one, :meth:`mem` returns a no-op tracker, so operator
    code charges unconditionally.
    """

    def __init__(
        self,
        store: GraphStore,
        index_store: Optional[PathIndexStore],
        eval_ctx: EvaluationContext,
        profile: OperatorProfile,
        token: Optional[object] = None,
        morsel_size: int = 1024,
        tracker=None,
    ) -> None:
        self.store = store
        self.index_store = index_store
        self.eval_ctx = eval_ctx
        self.profile = profile
        self.token = token
        self.morsel_size = morsel_size
        self.tracker = tracker

    def mem(self):
        return self.tracker if self.tracker is not None else NULL_TRACKER


def compile_plan(plan: LogicalPlan, ctx: RuntimeContext) -> RunFn:
    """Compile ``plan`` into an executable pipeline with profiling.

    With a cancellation token on the context, every row crossing this
    operator also passes a token check; tokenless execution pays nothing.
    """
    run = _compile(plan, ctx)
    token = ctx.token
    if token is None:
        def counted(arg_row: Row) -> Iterator[Row]:
            for row in run(arg_row):
                ctx.profile.record(plan, 1)
                yield row
    else:
        check = token.check

        def counted(arg_row: Row) -> Iterator[Row]:
            for row in run(arg_row):
                check()
                ctx.profile.record(plan, 1)
                yield row

    return counted


def _compile(plan: LogicalPlan, ctx: RuntimeContext) -> RunFn:
    if isinstance(plan, PlanArgument):
        return _argument(plan, ctx)
    if isinstance(plan, PlanAllNodesScan):
        return _all_nodes_scan(plan, ctx)
    if isinstance(plan, PlanNodeByLabelScan):
        return _node_by_label_scan(plan, ctx)
    if isinstance(plan, PlanRelationshipByTypeScan):
        return _relationship_by_type_scan(plan, ctx)
    if isinstance(plan, PlanExpand):
        return _expand(plan, ctx)
    if isinstance(plan, PlanNodeHashJoin):
        return _node_hash_join(plan, ctx)
    if isinstance(plan, PlanCartesianProduct):
        return _cartesian_product(plan, ctx)
    if isinstance(plan, PlanFilter):
        return _filter(plan, ctx)
    if isinstance(plan, PlanPathIndexScan):
        return _path_index_scan(plan, ctx)
    if isinstance(plan, PlanPathIndexFilteredScan):
        return _path_index_filtered_scan(plan, ctx)
    if isinstance(plan, PlanPathIndexPrefixSeek):
        return _path_index_prefix_seek(plan, ctx)
    if isinstance(plan, PlanProjection):
        return _projection(plan, ctx)
    if isinstance(plan, PlanAggregation):
        return _aggregation(plan, ctx)
    if isinstance(plan, PlanDistinct):
        return _distinct(plan, ctx)
    if isinstance(plan, PlanSort):
        return _sort(plan, ctx)
    if isinstance(plan, PlanLimit):
        return _limit(plan, ctx)
    raise ReproError(f"no runtime operator for {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _label_ids(ctx: RuntimeContext, checks) -> list[tuple[str, Optional[int]]]:
    return [(var, ctx.store.labels.id_of(label)) for var, label in checks]


def _labels_ok(ctx, node_id: int, label_ids: list[Optional[int]]) -> bool:
    for label_id in label_ids:
        if label_id is None or not ctx.store.has_label(node_id, label_id):
            return False
    return True


def _bind_node(row_values: dict, var: str, node_id: int, arg_row: Row) -> bool:
    """Bind ``var`` to ``node_id`` honouring existing bindings."""
    existing = row_values.get(var, arg_row.values.get(var))
    if existing is not None and existing != node_id:
        return False
    row_values[var] = node_id
    return True


# ---------------------------------------------------------------------------
# Leaf operators
# ---------------------------------------------------------------------------


def _argument(plan: PlanArgument, ctx: RuntimeContext) -> RunFn:
    def run(arg_row: Row) -> Iterator[Row]:
        yield arg_row

    return run


def _all_nodes_scan(plan: PlanAllNodesScan, ctx: RuntimeContext) -> RunFn:
    node_var = plan.node

    def run(arg_row: Row) -> Iterator[Row]:
        bound = arg_row.values.get(node_var)
        for node_id in ctx.store.all_nodes():
            if bound is not None and bound != node_id:
                continue
            yield arg_row.extended({node_var: node_id})

    return run


def _node_by_label_scan(plan: PlanNodeByLabelScan, ctx: RuntimeContext) -> RunFn:
    node_var = plan.node
    post = [label_id for _, label_id in _label_ids(ctx, plan.post_labels)]
    # Hoisted out of ``run``; the fallback covers labels created by an
    # earlier part of the same query (parts compile before rows flow).
    label_id_static = ctx.store.labels.id_of(plan.label)

    def run(arg_row: Row) -> Iterator[Row]:
        label_id = (
            label_id_static
            if label_id_static is not None
            else ctx.store.labels.id_of(plan.label)
        )
        if label_id is None:
            return
        bound = arg_row.values.get(node_var)
        for node_id in ctx.store.nodes_with_label(label_id):
            if bound is not None and bound != node_id:
                continue
            if post and not _labels_ok(ctx, node_id, post):
                continue
            yield arg_row.extended({node_var: node_id})

    return run


def _relationship_by_type_scan(
    plan: PlanRelationshipByTypeScan, ctx: RuntimeContext
) -> RunFn:
    if ctx.index_store is None:
        raise ReproError("RelationshipByTypeScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    label_checks = [
        (var, ctx.store.labels.id_of(label)) for var, label in plan.post_labels
    ]

    def run(arg_row: Row) -> Iterator[Row]:
        bound_rel = arg_row.values.get(plan.rel)
        for start_id, rel_id, end_id in index.scan():
            if bound_rel is not None and bound_rel != rel_id:
                continue
            if rel_id in arg_row.rel_ids and bound_rel != rel_id:
                continue  # relationship uniqueness (bound by another variable)
            orientations = [(start_id, end_id)]
            if not plan.directed and start_id != end_id:
                orientations.append((end_id, start_id))
            for source, target in orientations:
                values: dict[str, object] = {}
                if not _bind_node(values, plan.start_node, source, arg_row):
                    continue
                if not _bind_node(values, plan.end_node, target, arg_row):
                    continue
                values[plan.rel] = rel_id
                ok = True
                for var, label_id in label_checks:
                    node_id = values.get(var, arg_row.values.get(var))
                    # An unbound check variable can never satisfy the label.
                    if (
                        node_id is None
                        or label_id is None
                        or not ctx.store.has_label(int(node_id), label_id)
                    ):
                        ok = False
                        break
                if ok:
                    yield arg_row.extended(values, (rel_id,))

    return run


# ---------------------------------------------------------------------------
# Expand / join / product / filter
# ---------------------------------------------------------------------------


def _resolve_type_ids(ctx: RuntimeContext, names) -> set[int]:
    resolved = {ctx.store.types.id_of(name) for name in names}
    resolved.discard(None)
    return resolved


def _expand(plan: PlanExpand, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    post = [label_id for _, label_id in _label_ids(ctx, plan.post_labels)]
    # Hoisted: types resolved once at compile time; re-resolved at run start
    # only while incomplete (a type may be created by an earlier query part).
    static_type_ids = _resolve_type_ids(ctx, plan.types) if plan.types else None

    def run(arg_row: Row) -> Iterator[Row]:
        type_ids: Optional[set[int]] = None
        single_type: Optional[int] = None
        if plan.types:
            resolved = static_type_ids
            if len(resolved) < len(plan.types):
                resolved = _resolve_type_ids(ctx, plan.types)
            if not resolved:
                return  # none of the requested types exist
            if len(resolved) == 1:
                single_type = next(iter(resolved))
            else:
                type_ids = resolved  # filter during iteration
        for row in child(arg_row):
            from_id = row.values.get(plan.from_node)
            if from_id is None:
                continue
            target_bound = row.values.get(plan.to_node) if plan.into else None
            bound_rel = row.values.get(plan.rel)
            for rel, neighbour in ctx.store.expand(
                int(from_id), plan.direction, single_type
            ):
                if type_ids is not None and rel.type_id not in type_ids:
                    continue
                if bound_rel is not None and bound_rel != rel.id:
                    continue
                if rel.id in row.rel_ids and bound_rel != rel.id:
                    continue  # relationship uniqueness
                if plan.into:
                    if neighbour != target_bound:
                        continue
                elif post and not _labels_ok(ctx, neighbour, post):
                    continue
                if plan.into:
                    yield row.extended({plan.rel: rel.id}, (rel.id,))
                else:
                    yield row.extended(
                        {plan.rel: rel.id, plan.to_node: neighbour}, (rel.id,)
                    )

    return run


def _merge_join_rows(partner: Row, row: Row, shared_arg_rels) -> Optional[Row]:
    """Join-merge two rows, or None on a uniqueness/binding conflict.

    Relationship uniqueness: a rel id on both sides means two variables
    bound the same relationship — unless it came in through the shared
    argument row.
    """
    if (partner.rel_ids & row.rel_ids) - shared_arg_rels:
        return None
    merged = dict(partner.values)
    for name, value in row.values.items():
        if name in merged and merged[name] != value:
            return None
        merged[name] = value
    return Row(merged, partner.rel_ids | row.rel_ids)


def _node_hash_join(plan: PlanNodeHashJoin, ctx: RuntimeContext) -> RunFn:
    left = compile_plan(plan.children[0], ctx)
    right = compile_plan(plan.children[1], ctx)
    join_vars = plan.join_nodes

    def run(arg_row: Row) -> Iterator[Row]:
        shared_arg_rels = arg_row.rel_ids

        def merge(partner: Row, row: Row) -> Optional[Row]:
            return _merge_join_rows(partner, row, shared_arg_rels)

        buffer = JoinSpillBuffer(ctx.mem(), plan, merge)
        for row in left(arg_row):
            buffer.insert(tuple(row.values[var] for var in join_vars), row)
        for row in right(arg_row):
            yield from buffer.probe(
                tuple(row.values[var] for var in join_vars), row
            )
        yield from buffer.drain()

    return run


def _cartesian_product(plan: PlanCartesianProduct, ctx: RuntimeContext) -> RunFn:
    left = compile_plan(plan.children[0], ctx)
    right = compile_plan(plan.children[1], ctx)

    def run(arg_row: Row) -> Iterator[Row]:
        right_rows: Optional[AppendSpillBuffer] = None
        shared_arg_rels = arg_row.rel_ids
        for left_row in left(arg_row):
            if right_rows is None:
                right_rows = AppendSpillBuffer(ctx.mem(), plan)
                for row in right(arg_row):
                    right_rows.add(row)
            for right_row in right_rows:
                if (left_row.rel_ids & right_row.rel_ids) - shared_arg_rels:
                    continue
                merged = dict(left_row.values)
                conflict = False
                for name, value in right_row.values.items():
                    if name in merged and merged[name] != value:
                        conflict = True
                        break
                    merged[name] = value
                if not conflict:
                    yield Row(merged, left_row.rel_ids | right_row.rel_ids)

    return run


def _filter(plan: PlanFilter, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    predicates = plan.predicates

    def run(arg_row: Row) -> Iterator[Row]:
        for row in child(arg_row):
            if all(is_true(predicate, row, ctx.eval_ctx) for predicate in predicates):
                yield row

    return run


# ---------------------------------------------------------------------------
# Path index operators (§5.1)
# ---------------------------------------------------------------------------


def _entry_binder(
    plan, ctx: RuntimeContext, skip_positions: int = 0
) -> Callable[[tuple, Row], Optional[Row]]:
    """Build a function binding an index entry into a row.

    Checks, in stored order: binding consistency (repeated variables and
    pre-bound variables), relationship uniqueness, residual label filters and
    residual type filters. ``skip_positions`` marks a leading prefix already
    bound by the row (PathIndexPrefixSeek)."""
    entry_vars = plan.entry_vars
    label_checks: dict[str, list[int]] = {}
    for var, label in getattr(plan, "label_filters", ()):
        label_id = ctx.store.labels.id_of(label)
        label_checks.setdefault(var, []).append(-1 if label_id is None else label_id)
    type_checks: dict[str, frozenset[int]] = {}
    for var, type_names in getattr(plan, "type_filters", ()):
        resolved = {ctx.store.types.id_of(name) for name in type_names}
        resolved.discard(None)
        type_checks[var] = frozenset(resolved)

    def bind(entry: tuple, arg_row: Row) -> Optional[Row]:
        values: dict[str, object] = {}
        new_rels: list[int] = []
        for position, var in enumerate(entry_vars):
            identifier = entry[position]
            pre_bound = arg_row.values.get(var)
            existing = values.get(var, pre_bound)
            if existing is not None and existing != identifier:
                return None
            values[var] = identifier
            if position % 2 == 1 and position >= skip_positions:
                if identifier in new_rels:
                    return None
                # Uniqueness: reject ids bound to *another* relationship
                # variable; re-binding the same variable (an anchored or
                # argument relationship) is consistent, not a duplicate.
                if identifier in arg_row.rel_ids and pre_bound != identifier:
                    return None
                if pre_bound != identifier:
                    new_rels.append(identifier)
        for var, label_ids in label_checks.items():
            node_id = int(values[var])
            for label_id in label_ids:
                if label_id < 0 or not ctx.store.has_label(node_id, label_id):
                    return None
        for var, allowed in type_checks.items():
            rel = ctx.store.relationship(int(values[var]))
            if rel.type_id not in allowed:
                return None
        return arg_row.extended(values, new_rels)

    return bind


def _path_index_scan(plan: PlanPathIndexScan, ctx: RuntimeContext) -> RunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    bind = _entry_binder(plan, ctx)

    def run(arg_row: Row) -> Iterator[Row]:
        for entry in index.scan():
            row = bind(entry, arg_row)
            if row is not None:
                yield row

    return run


def _path_index_filtered_scan(
    plan: PlanPathIndexFilteredScan, ctx: RuntimeContext
) -> RunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexFilteredScan requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    bind = _entry_binder(plan, ctx)
    width = len(plan.entry_vars)
    must_differ, must_equal, residual_predicates = _filtered_scan_constraints(plan)

    def run(arg_row: Row) -> Iterator[Row]:
        lower = (0,) * width
        while True:
            restart: Optional[tuple[int, ...]] = None
            for entry in index.scan_from(lower):
                violation = _skip_target(entry, must_differ, must_equal, width)
                if violation is not None:
                    restart = violation
                    break
                row = bind(entry, arg_row)
                if row is None:
                    continue
                if all(
                    is_true(predicate, row, ctx.eval_ctx)
                    for predicate in residual_predicates
                ):
                    yield row
            if restart is None:
                return
            lower = restart

    return run


def _filtered_scan_constraints(
    plan: PlanPathIndexFilteredScan,
) -> tuple[
    list[tuple[int, int]], list[tuple[int, int]], list[ast.Expression]
]:
    """Skip-scan constraints (§5.1.2), shared by both engines.

    Returns ``(must_differ, must_equal, residual_predicates)``: pairs of
    entry positions that must differ (relationship uniqueness and top-level
    ``x <> y`` predicates over two entry variables), pairs that must be equal
    (repeated variables), and the predicates the skip-scan cannot absorb.
    """
    entry_vars = plan.entry_vars
    width = len(entry_vars)
    position_of: dict[str, int] = {}
    for position, var in enumerate(entry_vars):
        position_of.setdefault(var, position)
    must_differ: list[tuple[int, int]] = []
    must_equal: list[tuple[int, int]] = []
    residual_predicates: list[ast.Expression] = []
    seen_rel_positions: dict[str, int] = {}
    for position, var in enumerate(entry_vars):
        if position % 2 == 1:
            first = seen_rel_positions.setdefault(var, position)
            if first != position:
                must_equal.append((first, position))
    rel_positions = [p for p in range(1, width, 2)]
    for i_index, i in enumerate(rel_positions):
        for j in rel_positions[i_index + 1 :]:
            if entry_vars[i] != entry_vars[j]:
                must_differ.append((i, j))
    for position, var in enumerate(entry_vars):
        if position % 2 == 0 and position_of[var] != position:
            must_equal.append((position_of[var], position))
    for predicate in plan.predicates:
        pair = _neq_entry_pair(predicate, position_of)
        if pair is not None:
            must_differ.append(pair)
        else:
            residual_predicates.append(predicate)
    must_differ.sort(key=lambda pair: pair[1])
    must_equal.sort(key=lambda pair: pair[1])
    return must_differ, must_equal, residual_predicates


def _skip_target(entry, differ, equal, width) -> Optional[tuple[int, ...]]:
    """First key past the violating subtree, or None if ``entry`` is clean."""
    for i, j in differ:
        if entry[i] == entry[j]:
            return entry[:j] + (entry[j] + 1,) + (0,) * (width - j - 1)
    for i, j in equal:
        target = entry[i]
        if entry[j] < target:
            return entry[:j] + (target,) + (0,) * (width - j - 1)
        if entry[j] > target:
            if j == 0:
                return None  # cannot happen: position 0 pairs with itself
            return entry[: j - 1] + (entry[j - 1] + 1,) + (0,) * (width - j)
    return None


def _neq_entry_pair(predicate, position_of) -> Optional[tuple[int, int]]:
    """`x <> y` over two entry variables → their (earlier, later) positions."""
    if not isinstance(predicate, ast.Comparison):
        return None
    if predicate.op is not ast.ComparisonOp.NEQ:
        return None
    if not isinstance(predicate.left, ast.Variable):
        return None
    if not isinstance(predicate.right, ast.Variable):
        return None
    left = position_of.get(predicate.left.name)
    right = position_of.get(predicate.right.name)
    if left is None or right is None or left == right:
        return None
    return (min(left, right), max(left, right))


def _path_index_prefix_seek(
    plan: PlanPathIndexPrefixSeek, ctx: RuntimeContext
) -> RunFn:
    if ctx.index_store is None:
        raise ReproError("PathIndexPrefixSeek requires a path index store")
    index = ctx.index_store.get(plan.index_name)
    child = compile_plan(plan.children[0], ctx)
    prefix_vars = plan.entry_vars[: plan.prefix_length]
    bind = _entry_binder(plan, ctx, skip_positions=plan.prefix_length)

    def run(arg_row: Row) -> Iterator[Row]:
        # "The operator will first take in all results from the child plan,
        # compute the relevant prefix for each result and group all results by
        # this prefix" (§5.1.3).
        groups: dict[tuple[int, ...], list[Row]] = {}
        mem = ctx.mem()
        for row in child(arg_row):
            prefix = tuple(int(row.values[var]) for var in prefix_vars)
            groups.setdefault(prefix, []).append(row)
            # Non-spillable: the groups map is randomly accessed per index
            # prefix, so it charges (and may exhaust the pool) rather than
            # spill; the charge is released when the tracker closes.
            mem.charge(plan, ROW_BYTES)
        for prefix, rows in groups.items():
            # Partial indexes (§4.1) materialize the start node on demand.
            index.prepare_prefix(prefix, ctx.store)
            for entry in index.scan_prefix(prefix):
                for row in rows:
                    combined = bind(entry, row)
                    if combined is not None:
                        yield combined

    return run


# ---------------------------------------------------------------------------
# Projection boundary operators
# ---------------------------------------------------------------------------


def _projection(plan: PlanProjection, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    items = plan.items

    def run(arg_row: Row) -> Iterator[Row]:
        for row in child(arg_row):
            yield row.project(
                {
                    item.output_name: evaluate(item.expression, row, ctx.eval_ctx)
                    for item in items
                }
            )

    return run


class _Accumulator:
    """State for one aggregate function call within one group."""

    __slots__ = ("call", "count", "total", "minimum", "maximum", "values", "seen")

    def __init__(self, call: ast.FunctionCall) -> None:
        self.call = call
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.values: list = []
        self.seen: set = set()

    def feed(self, row, ctx: RuntimeContext) -> None:
        if self.call.star:  # count(*)
            self.count += 1
            return
        self.feed_value(evaluate(self.call.argument, row, ctx.eval_ctx))

    def feed_value(self, value) -> None:
        """Accumulate an already-evaluated argument (batched engine path)."""
        name = self.call.name
        if value is None:
            return  # aggregates skip NULLs (Cypher semantics)
        if self.call.distinct:
            key = repr(value) if isinstance(value, (list, dict)) else value
            if key in self.seen:
                return
            self.seen.add(key)
        self.count += 1
        if name in ("sum", "avg"):
            self.total += value
        elif name == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif name == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        elif name == "collect":
            self.values.append(value)

    def result(self):
        name = self.call.name
        if name == "count":
            return self.count
        if name == "sum":
            return self.total  # sum over no rows is 0, as in Cypher
        if name == "avg":
            return self.total / self.count if self.count else None
        if name == "min":
            return self.minimum
        if name == "max":
            return self.maximum
        if name == "collect":
            return self.values
        raise ReproError(f"unknown aggregate {name}()")


def _aggregate_calls(expression: ast.Expression) -> list[ast.FunctionCall]:
    calls: list[ast.FunctionCall] = []

    def walk(node) -> None:
        if isinstance(node, ast.FunctionCall) and node.is_aggregate:
            calls.append(node)
            return
        for attr in ("left", "right", "operand", "argument"):
            child = getattr(node, attr, None)
            if isinstance(child, ast.Expression):
                walk(child)

    walk(expression)
    return calls


def _aggregation(plan: PlanAggregation, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    grouping = plan.grouping_items
    aggregates = plan.aggregate_items
    calls_per_item = {
        id(item): _aggregate_calls(item.expression) for item in aggregates
    }

    def run(arg_row: Row) -> Iterator[Row]:
        def new_state(row: Row) -> tuple[dict, dict]:
            key_values = {
                item.output_name: evaluate(item.expression, row, ctx.eval_ctx)
                for item in grouping
            }
            accumulators = {
                id(item): [
                    _Accumulator(call) for call in calls_per_item[id(item)]
                ]
                for item in aggregates
            }
            return (key_values, accumulators)

        def feed(state: tuple[dict, dict], row: Row) -> None:
            accumulators = state[1]
            for item in aggregates:
                for accumulator in accumulators[id(item)]:
                    accumulator.feed(row, ctx)

        buffer = AggregationSpillBuffer(ctx.mem(), plan, new_state, feed)
        for row in child(arg_row):
            key = tuple(
                _hashable(evaluate(item.expression, row, ctx.eval_ctx))
                for item in grouping
            )
            buffer.add(key, row)
        if buffer.is_empty and not grouping:
            # Global aggregation over zero rows still yields one row.
            states = [
                (
                    {},
                    {
                        id(item): [
                            _Accumulator(call)
                            for call in calls_per_item[id(item)]
                        ]
                        for item in aggregates
                    },
                )
            ]
        else:
            states = buffer.states()
        for key_values, accumulators in states:
            out = dict(key_values)
            for item in aggregates:
                results = {
                    accumulator.call: accumulator.result()
                    for accumulator in accumulators[id(item)]
                }
                out[item.output_name] = evaluate(
                    item.expression, Row(out), ctx.eval_ctx, results
                )
            yield Row(out)

    return run


def _distinct(plan: PlanDistinct, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    columns = plan.columns

    def run(arg_row: Row) -> Iterator[Row]:
        buffer = DistinctSpillBuffer(ctx.mem(), plan)
        for row in child(arg_row):
            key = tuple(_hashable(row.values.get(column)) for column in columns)
            if buffer.offer(key, row):
                yield row
        yield from buffer.drain()

    return run


def _hashable(value):
    if isinstance(value, (list, dict)):
        return repr(value)
    return value


def _sort(plan: PlanSort, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)
    order_by = plan.order_by

    # One composed key reproduces the repeated per-level stable sorts:
    # descending levels are order-inverted via Desc, and sort stability
    # supplies the original-input tiebreak.
    def composed_key(row: Row) -> tuple:
        return tuple(
            _sort_key(evaluate(expression, row, ctx.eval_ctx))
            if ascending
            else Desc(_sort_key(evaluate(expression, row, ctx.eval_ctx)))
            for expression, ascending in order_by
        )

    def run(arg_row: Row) -> Iterator[Row]:
        buffer = SortSpillBuffer(ctx.mem(), plan, composed_key)
        for row in child(arg_row):
            buffer.add(row)
        yield from buffer

    return run


def _sort_key(value):
    # NULLs order last in ascending order; booleans after numbers.
    if value is None:
        return (3, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (0, value)
    return (2, str(value))


def _limit(plan: PlanLimit, ctx: RuntimeContext) -> RunFn:
    child = compile_plan(plan.children[0], ctx)

    def run(arg_row: Row) -> Iterator[Row]:
        produced = 0
        skipped = 0
        for row in child(arg_row):
            if skipped < plan.skip:
                skipped += 1
                continue
            if plan.limit >= 0 and produced >= plan.limit:
                return
            produced += 1
            yield row

    return run
