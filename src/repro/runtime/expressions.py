"""Expression evaluation with Cypher's ternary (NULL) logic.

``evaluate`` returns a Python value or None (Cypher NULL). Comparisons
involving NULL yield None; `AND`/`OR`/`NOT` follow three-valued logic; a
filter keeps a row only when its predicate evaluates to exactly True.
Property access resolves through the graph store using the variable-kind
annotations from semantic analysis.
"""

from __future__ import annotations

from typing import Optional

from repro.cypher import ast
from repro.cypher.semantics import VariableKind
from repro.errors import ReproError
from repro.storage.graphstore import GraphStore


class EvaluationContext:
    """Everything expression evaluation needs: store + variable kinds."""

    def __init__(
        self, store: GraphStore, variable_kinds: dict[str, VariableKind]
    ) -> None:
        self.store = store
        self.variable_kinds = variable_kinds

    def property_of(self, name: str, value: object, key: str) -> object:
        key_id = self.store.property_keys.id_of(key)
        if key_id is None or value is None:
            return None
        kind = self.variable_kinds.get(name)
        if kind is VariableKind.RELATIONSHIP:
            return self.store.relationship_property(int(value), key_id)
        if kind is VariableKind.NODE:
            return self.store.node_property(int(value), key_id)
        raise ReproError(f"cannot access property {key!r} of value {name!r}")

    def has_label(self, value: object, label: str) -> Optional[bool]:
        if value is None:
            return None
        label_id = self.store.labels.id_of(label)
        if label_id is None:
            return False
        return self.store.has_label(int(value), label_id)


def evaluate(
    expression: ast.Expression,
    row,
    ctx: EvaluationContext,
    aggregate_values: Optional[dict] = None,
):
    """Evaluate ``expression`` against ``row``; None means Cypher NULL.

    ``aggregate_values`` maps aggregate :class:`~repro.cypher.ast.FunctionCall`
    nodes (they are hashable value objects) to their pre-computed results —
    the aggregation operator substitutes them when evaluating a projection
    item like ``count(x) + 1``.
    """
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Variable):
        return row.get(expression.name)
    if isinstance(expression, ast.FunctionCall):
        if aggregate_values is not None and expression in aggregate_values:
            return aggregate_values[expression]
        if expression.is_aggregate:
            raise ReproError(
                f"aggregate function {expression.name}() outside an "
                "aggregating projection"
            )
        return _scalar_function(expression, row, ctx, aggregate_values)
    if isinstance(expression, ast.PropertyAccess):
        return ctx.property_of(
            expression.subject, row.get(expression.subject), expression.key
        )
    if isinstance(expression, ast.HasLabel):
        return ctx.has_label(row.get(expression.subject), expression.label)
    if isinstance(expression, ast.Comparison):
        return _compare(
            expression.op,
            evaluate(expression.left, row, ctx, aggregate_values),
            evaluate(expression.right, row, ctx, aggregate_values),
        )
    if isinstance(expression, ast.Not):
        value = evaluate(expression.operand, row, ctx, aggregate_values)
        return None if value is None else not _truthy(value)
    if isinstance(expression, ast.BooleanOp):
        return _boolean(expression, row, ctx, aggregate_values)
    if isinstance(expression, ast.Arithmetic):
        return _arithmetic(
            expression.op,
            evaluate(expression.left, row, ctx, aggregate_values),
            evaluate(expression.right, row, ctx, aggregate_values),
        )
    raise ReproError(f"cannot evaluate expression {expression!r}")


def _scalar_function(
    expression: ast.FunctionCall, row, ctx: EvaluationContext, aggregate_values
):
    argument = (
        evaluate(expression.argument, row, ctx, aggregate_values)
        if expression.argument is not None
        else None
    )
    name = expression.name
    if argument is None:
        return None
    if name == "id":
        return int(argument)
    if name == "type":
        record = ctx.store.relationship(int(argument))
        return ctx.store.types.name_of(record.type_id)
    if name == "labels":
        label_ids = ctx.store.node_labels(int(argument))
        return sorted(ctx.store.labels.name_of(label_id) for label_id in label_ids)
    if name == "size":
        if isinstance(argument, (list, str)):
            return len(argument)
        raise ReproError(f"size() expects a list or string, got {argument!r}")
    raise ReproError(f"unknown function {name}()")


def is_true(expression: ast.Expression, row, ctx: EvaluationContext) -> bool:
    """Predicate semantics: only an exact True passes."""
    return evaluate(expression, row, ctx) is True


# ---------------------------------------------------------------------------


def _truthy(value: object) -> bool:
    return bool(value)


def _compare(op: ast.ComparisonOp, left, right):
    if left is None or right is None:
        return None
    if op is ast.ComparisonOp.EQ:
        return _eq(left, right)
    if op is ast.ComparisonOp.NEQ:
        equal = _eq(left, right)
        return None if equal is None else not equal
    if not _orderable(left, right):
        return None
    if op is ast.ComparisonOp.LT:
        return left < right
    if op is ast.ComparisonOp.GT:
        return left > right
    if op is ast.ComparisonOp.LE:
        return left <= right
    return left >= right


def _eq(left, right):
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    return left == right


def _orderable(left, right) -> bool:
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    return (numeric or textual) and not (
        isinstance(left, bool) or isinstance(right, bool)
    )


def _boolean(expression: ast.BooleanOp, row, ctx, aggregate_values=None):
    left = evaluate(expression.left, row, ctx, aggregate_values)
    right = evaluate(expression.right, row, ctx, aggregate_values)
    left_bool = None if left is None else _truthy(left)
    right_bool = None if right is None else _truthy(right)
    if expression.op == "AND":
        if left_bool is False or right_bool is False:
            return False
        if left_bool is None or right_bool is None:
            return None
        return True
    if expression.op == "OR":
        if left_bool is True or right_bool is True:
            return True
        if left_bool is None or right_bool is None:
            return None
        return False
    # XOR
    if left_bool is None or right_bool is None:
        return None
    return left_bool != right_bool


def _arithmetic(op: str, left, right):
    if left is None or right is None:
        return None
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ReproError(f"cannot apply {op!r} to {left!r} and {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ReproError("division by zero")
        return left / right if isinstance(left, float) or isinstance(right, float) else left // right
    if op == "%":
        if right == 0:
            raise ReproError("modulo by zero")
        return left % right
    raise ReproError(f"unknown arithmetic operator {op!r}")
