"""Expression evaluation with Cypher's ternary (NULL) logic.

``evaluate`` returns a Python value or None (Cypher NULL). Comparisons
involving NULL yield None; `AND`/`OR`/`NOT` follow three-valued logic; a
filter keeps a row only when its predicate evaluates to exactly True.
Property access resolves through the graph store using the variable-kind
annotations from semantic analysis.

``compile_expression`` is the batched engine's counterpart: it resolves
variable names to slot indices and token names to token ids once, at
compile time, and returns a closure evaluating the expression against a
slot row (a fixed-width list) with no per-row AST walk or dict lookups.
Token ids unknown at compile time (a label or property key created by an
earlier part of the same query) fall back to a per-call lookup, so the
compiled form is observationally identical to ``evaluate``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.cypher import ast
from repro.cypher.semantics import VariableKind
from repro.errors import ReproError
from repro.storage.graphstore import GraphStore


class EvaluationContext:
    """Everything expression evaluation needs: store + variable kinds."""

    def __init__(
        self, store: GraphStore, variable_kinds: dict[str, VariableKind]
    ) -> None:
        self.store = store
        self.variable_kinds = variable_kinds

    def property_of(self, name: str, value: object, key: str) -> object:
        key_id = self.store.property_keys.id_of(key)
        if key_id is None or value is None:
            return None
        kind = self.variable_kinds.get(name)
        if kind is VariableKind.RELATIONSHIP:
            return self.store.relationship_property(int(value), key_id)
        if kind is VariableKind.NODE:
            return self.store.node_property(int(value), key_id)
        raise ReproError(f"cannot access property {key!r} of value {name!r}")

    def has_label(self, value: object, label: str) -> Optional[bool]:
        if value is None:
            return None
        label_id = self.store.labels.id_of(label)
        if label_id is None:
            return False
        return self.store.has_label(int(value), label_id)


def evaluate(
    expression: ast.Expression,
    row,
    ctx: EvaluationContext,
    aggregate_values: Optional[dict] = None,
):
    """Evaluate ``expression`` against ``row``; None means Cypher NULL.

    ``aggregate_values`` maps aggregate :class:`~repro.cypher.ast.FunctionCall`
    nodes (they are hashable value objects) to their pre-computed results —
    the aggregation operator substitutes them when evaluating a projection
    item like ``count(x) + 1``.
    """
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Variable):
        return row.get(expression.name)
    if isinstance(expression, ast.FunctionCall):
        if aggregate_values is not None and expression in aggregate_values:
            return aggregate_values[expression]
        if expression.is_aggregate:
            raise ReproError(
                f"aggregate function {expression.name}() outside an "
                "aggregating projection"
            )
        return _scalar_function(expression, row, ctx, aggregate_values)
    if isinstance(expression, ast.PropertyAccess):
        return ctx.property_of(
            expression.subject, row.get(expression.subject), expression.key
        )
    if isinstance(expression, ast.HasLabel):
        return ctx.has_label(row.get(expression.subject), expression.label)
    if isinstance(expression, ast.Comparison):
        return _compare(
            expression.op,
            evaluate(expression.left, row, ctx, aggregate_values),
            evaluate(expression.right, row, ctx, aggregate_values),
        )
    if isinstance(expression, ast.Not):
        value = evaluate(expression.operand, row, ctx, aggregate_values)
        return None if value is None else not _truthy(value)
    if isinstance(expression, ast.BooleanOp):
        return _boolean(expression, row, ctx, aggregate_values)
    if isinstance(expression, ast.Arithmetic):
        return _arithmetic(
            expression.op,
            evaluate(expression.left, row, ctx, aggregate_values),
            evaluate(expression.right, row, ctx, aggregate_values),
        )
    raise ReproError(f"cannot evaluate expression {expression!r}")


def _scalar_function(
    expression: ast.FunctionCall, row, ctx: EvaluationContext, aggregate_values
):
    argument = (
        evaluate(expression.argument, row, ctx, aggregate_values)
        if expression.argument is not None
        else None
    )
    return _apply_scalar_function(expression.name, argument, ctx)


def _apply_scalar_function(name: str, argument, ctx: EvaluationContext):
    if argument is None:
        return None
    if name == "id":
        return int(argument)
    if name == "type":
        record = ctx.store.relationship(int(argument))
        return ctx.store.types.name_of(record.type_id)
    if name == "labels":
        label_ids = ctx.store.node_labels(int(argument))
        return sorted(ctx.store.labels.name_of(label_id) for label_id in label_ids)
    if name == "size":
        if isinstance(argument, (list, str)):
            return len(argument)
        raise ReproError(f"size() expects a list or string, got {argument!r}")
    raise ReproError(f"unknown function {name}()")


def is_true(expression: ast.Expression, row, ctx: EvaluationContext) -> bool:
    """Predicate semantics: only an exact True passes."""
    return evaluate(expression, row, ctx) is True


# ---------------------------------------------------------------------------


def _truthy(value: object) -> bool:
    return bool(value)


def _compare(op: ast.ComparisonOp, left, right):
    if left is None or right is None:
        return None
    if op is ast.ComparisonOp.EQ:
        return _eq(left, right)
    if op is ast.ComparisonOp.NEQ:
        equal = _eq(left, right)
        return None if equal is None else not equal
    if not _orderable(left, right):
        return None
    if op is ast.ComparisonOp.LT:
        return left < right
    if op is ast.ComparisonOp.GT:
        return left > right
    if op is ast.ComparisonOp.LE:
        return left <= right
    return left >= right


def _eq(left, right):
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    return left == right


def _orderable(left, right) -> bool:
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    textual = isinstance(left, str) and isinstance(right, str)
    return (numeric or textual) and not (
        isinstance(left, bool) or isinstance(right, bool)
    )


def _boolean(expression: ast.BooleanOp, row, ctx, aggregate_values=None):
    left = evaluate(expression.left, row, ctx, aggregate_values)
    right = evaluate(expression.right, row, ctx, aggregate_values)
    return _boolean_value(expression.op, left, right)


def _boolean_value(op: str, left, right):
    left_bool = None if left is None else _truthy(left)
    right_bool = None if right is None else _truthy(right)
    if op == "AND":
        if left_bool is False or right_bool is False:
            return False
        if left_bool is None or right_bool is None:
            return None
        return True
    if op == "OR":
        if left_bool is True or right_bool is True:
            return True
        if left_bool is None or right_bool is None:
            return None
        return False
    # XOR
    if left_bool is None or right_bool is None:
        return None
    return left_bool != right_bool


def _arithmetic(op: str, left, right):
    if left is None or right is None:
        return None
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ReproError(f"cannot apply {op!r} to {left!r} and {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ReproError("division by zero")
        return left / right if isinstance(left, float) or isinstance(right, float) else left // right
    if op == "%":
        if right == 0:
            raise ReproError("modulo by zero")
        return left % right
    raise ReproError(f"unknown arithmetic operator {op!r}")


# ---------------------------------------------------------------------------
# Compiled (slot-row) evaluation for the batched engine
# ---------------------------------------------------------------------------

SlotFn = Callable[[Sequence], object]
"""A compiled expression: slot row in, value (or None = NULL) out."""


def compile_expression(
    expression: ast.Expression,
    slot_of: Callable[[str], int],
    ctx: EvaluationContext,
) -> SlotFn:
    """Compile ``expression`` into a closure over slot indices.

    ``slot_of`` maps a variable name to its slot, allocating one if the
    layout has not seen the name yet. The returned function must behave
    exactly like ``evaluate`` on a dict row carrying the same bindings.
    """
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda row: value
    if isinstance(expression, ast.Variable):
        slot = slot_of(expression.name)
        return lambda row: row[slot]
    if isinstance(expression, ast.FunctionCall):
        return _compile_function(expression, slot_of, ctx)
    if isinstance(expression, ast.PropertyAccess):
        return _compile_property(expression, slot_of, ctx)
    if isinstance(expression, ast.HasLabel):
        return _compile_has_label(expression, slot_of, ctx)
    if isinstance(expression, ast.Comparison):
        op = expression.op
        left = compile_expression(expression.left, slot_of, ctx)
        right = compile_expression(expression.right, slot_of, ctx)
        return lambda row: _compare(op, left(row), right(row))
    if isinstance(expression, ast.Not):
        operand = compile_expression(expression.operand, slot_of, ctx)

        def negate(row):
            value = operand(row)
            return None if value is None else not _truthy(value)

        return negate
    if isinstance(expression, ast.BooleanOp):
        op = expression.op
        left = compile_expression(expression.left, slot_of, ctx)
        right = compile_expression(expression.right, slot_of, ctx)
        return lambda row: _boolean_value(op, left(row), right(row))
    if isinstance(expression, ast.Arithmetic):
        op = expression.op
        left = compile_expression(expression.left, slot_of, ctx)
        right = compile_expression(expression.right, slot_of, ctx)
        return lambda row: _arithmetic(op, left(row), right(row))
    raise ReproError(f"cannot evaluate expression {expression!r}")


def compile_predicate(
    expression: ast.Expression,
    slot_of: Callable[[str], int],
    ctx: EvaluationContext,
) -> Callable[[Sequence], bool]:
    """Compiled ``is_true``: only an exact True passes."""
    compiled = compile_expression(expression, slot_of, ctx)
    return lambda row: compiled(row) is True


def _compile_function(
    expression: ast.FunctionCall,
    slot_of: Callable[[str], int],
    ctx: EvaluationContext,
) -> SlotFn:
    name = expression.name
    if expression.is_aggregate:
        # Aggregates are computed by the aggregation operator; reaching one
        # here mirrors ``evaluate`` without aggregate_values.
        def aggregate_error(row):
            raise ReproError(
                f"aggregate function {name}() outside an aggregating projection"
            )

        return aggregate_error
    if expression.argument is None:
        # No argument means a NULL argument, and every scalar function maps
        # NULL to NULL (same as ``_scalar_function``).
        return lambda row: None
    argument = compile_expression(expression.argument, slot_of, ctx)
    return lambda row: _apply_scalar_function(name, argument(row), ctx)


def _compile_property(
    expression: ast.PropertyAccess,
    slot_of: Callable[[str], int],
    ctx: EvaluationContext,
) -> SlotFn:
    subject = expression.subject
    key = expression.key
    slot = slot_of(subject)
    store = ctx.store
    keys = store.property_keys
    key_id_static = keys.id_of(key)
    kind = ctx.variable_kinds.get(subject)
    if kind is VariableKind.RELATIONSHIP:
        getter = store.relationship_property
    elif kind is VariableKind.NODE:
        getter = store.node_property
    else:
        getter = None

    def fn(row):
        value = row[slot]
        key_id = key_id_static if key_id_static is not None else keys.id_of(key)
        if key_id is None or value is None:
            return None
        if getter is None:
            raise ReproError(
                f"cannot access property {key!r} of value {subject!r}"
            )
        return getter(int(value), key_id)

    return fn


def _compile_has_label(
    expression: ast.HasLabel,
    slot_of: Callable[[str], int],
    ctx: EvaluationContext,
) -> SlotFn:
    slot = slot_of(expression.subject)
    label = expression.label
    store = ctx.store
    label_id_static = store.labels.id_of(label)

    def fn(row):
        value = row[slot]
        if value is None:
            return None
        label_id = (
            label_id_static
            if label_id_static is not None
            else store.labels.id_of(label)
        )
        if label_id is None:
            return False
        return store.has_label(int(value), label_id)

    return fn
