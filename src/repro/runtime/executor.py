"""Query execution across parts, including update application.

Parts execute in order; each incoming row is fed through the next part's
pipeline as its argument row (Apply semantics across WITH boundaries). For
parts carrying CREATE/DELETE actions the pattern portion runs first, the
updates are applied per matched row inside the active transaction, and the
projection boundary is evaluated afterwards — matching Cypher's clause
ordering.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.cypher import ast
from repro.cypher.semantics import VariableKind
from repro.errors import ReproError, TransactionError
from repro.pathindex.store import PathIndexStore
from repro.planner.plans import LogicalPlan
from repro.querygraph import QueryPart, UpdateAction
from repro.resources import ROW_BYTES, AppendSpillBuffer
from repro.runtime.batched import SlotLayout, compile_batched_plan
from repro.runtime.compiled import CompiledPart, CompiledQuery, compile_query
from repro.runtime.expressions import EvaluationContext, evaluate
from repro.runtime.operators import (
    OperatorProfile,
    RuntimeContext,
    _sort_key,
    compile_plan,
)
from repro.runtime.row import Row
from repro.storage.graphstore import GraphStore
from repro.tx.transaction import Transaction


def _no_check() -> None:
    """Cancellation no-op for tokenless compiled executions."""


def _accounted(rows: Iterator[Row], tracker, profile) -> Iterator[Row]:
    """Merge the tracker's per-operator peaks into the profile when the
    (possibly lazily consumed) row iterator finishes or is abandoned."""
    try:
        yield from rows
    finally:
        tracker.merge_into_profile(profile.operators)


class ExecutionProfile:
    """Execution statistics: per-operator row counts, memory, and plans."""

    def __init__(self, plans: Sequence[LogicalPlan]) -> None:
        self.plans = list(plans)
        self.operators = OperatorProfile()

    @property
    def max_intermediate_cardinality(self) -> int:
        """The evaluation's plan-quality metric (§7.1.1)."""
        return self.operators.max_intermediate_cardinality()

    @property
    def peak_memory_bytes(self) -> int:
        """Largest single-operator buffered-bytes peak of the execution."""
        return max(self.operators.peak_bytes.values(), default=0)

    @property
    def spill_runs(self) -> int:
        """Total spill runs written by this execution's operators."""
        return self.operators.total_spill_runs()

    def rows_by_operator(self) -> list[tuple[str, int]]:
        return self.operators.by_operator()

    def bytes_by_operator(self) -> list[tuple[str, int, int]]:
        """``(operator, peak_bytes, spill_runs)`` for every charged buffer."""
        return self.operators.bytes_by_operator()


class Executor:
    """Runs planned query parts against the store."""

    def __init__(
        self,
        store: GraphStore,
        index_store: Optional[PathIndexStore],
        variable_kinds: dict[str, VariableKind],
    ) -> None:
        self.store = store
        self.index_store = index_store
        self.variable_kinds = variable_kinds
        self.eval_ctx = EvaluationContext(store, variable_kinds)

    def compile_artifact(
        self,
        planned_parts: Sequence[tuple[QueryPart, LogicalPlan]],
        morsel_size: Optional[int] = None,
    ) -> CompiledQuery:
        """Compile the codegen artifact for ``planned_parts``.

        The artifact binds the store, indexes and expression closures at
        compile time but takes profile/cancellation hooks per execution,
        so one artifact serves every later execution of the cached plan.
        """
        ctx = RuntimeContext(
            self.store, self.index_store, self.eval_ctx, OperatorProfile()
        )
        if morsel_size is not None:
            ctx.morsel_size = morsel_size
        return compile_query(planned_parts, ctx)

    def execute(
        self,
        planned_parts: Sequence[tuple[QueryPart, LogicalPlan]],
        transaction: Optional[Transaction] = None,
        initial_row: Optional[Row] = None,
        token: Optional[object] = None,
        mode: str = "row",
        morsel_size: Optional[int] = None,
        compiled: Optional[CompiledQuery] = None,
        tracker=None,
    ) -> tuple[Iterator[Row], ExecutionProfile]:
        """Build the row iterator for the whole query; lazy for reads.

        ``token`` is an optional cooperative cancellation token (see
        ``repro.service.cancellation``) checked at row boundaries (``mode
        ="row"``), morsel boundaries (``mode="batched"``), or every
        ~``CHECK_STRIDE`` operator outputs (``mode="compiled"``). ``mode``
        selects the execution engine; ``morsel_size`` overrides the
        batched/compiled engines' batch size (mainly for tests).
        ``compiled`` supplies a cached codegen artifact for
        ``mode="compiled"``; when absent (or compiled for a different
        morsel size) the plans are compiled on the fly. ``tracker`` is the
        query's :class:`~repro.resources.MemoryTracker`; blocking operators
        charge it (and spill through it), and its per-operator peaks merge
        into the profile when the iterator finishes.
        """
        if mode not in ("row", "batched", "compiled"):
            raise ReproError(f"unknown execution mode {mode!r}")
        profile = ExecutionProfile([plan for _, plan in planned_parts])
        ctx = RuntimeContext(
            self.store,
            self.index_store,
            self.eval_ctx,
            profile.operators,
            token=token,
            tracker=tracker,
        )
        if morsel_size is not None:
            ctx.morsel_size = morsel_size
        rows: Iterator[Row] = iter([initial_row or Row.empty()])
        if mode == "compiled":
            if compiled is None or compiled.morsel_size != ctx.morsel_size:
                compiled = compile_query(planned_parts, ctx)
            for (part, plan), cpart in zip(planned_parts, compiled.parts):
                rows = self._run_part_compiled(
                    rows, part, plan, ctx, transaction, cpart
                )
        else:
            run_part = (
                self._run_part_batched if mode == "batched" else self._run_part
            )
            for part, plan in planned_parts:
                rows = run_part(rows, part, plan, ctx, transaction)
        if tracker is not None:
            rows = _accounted(rows, tracker, profile)
        return rows, profile

    # ------------------------------------------------------------------

    def _run_part(
        self,
        input_rows: Iterator[Row],
        part: QueryPart,
        plan: LogicalPlan,
        ctx: RuntimeContext,
        transaction: Optional[Transaction],
    ) -> Iterator[Row]:
        pipeline = compile_plan(plan, ctx)
        if not part.updates:
            def run_read() -> Iterator[Row]:
                for arg_row in input_rows:
                    yield from pipeline(arg_row)

            return run_read()
        if transaction is None:
            raise TransactionError("update query requires an open transaction")
        return self._run_update_part(input_rows, part, pipeline, transaction, ctx)

    def _run_part_batched(
        self,
        input_rows: Iterator[Row],
        part: QueryPart,
        plan: LogicalPlan,
        ctx: RuntimeContext,
        transaction: Optional[Transaction],
    ) -> Iterator[Row]:
        """Batched counterpart of :meth:`_run_part`.

        Each part gets its own :class:`SlotLayout`; argument rows convert
        to slot rows on entry (Apply semantics are preserved — the batched
        pipeline is still invoked once per argument row) and back to
        :class:`Row` at the part boundary. Read parts with a projection
        rebuild rows from the projection's output columns, keeping
        explicit None values, exactly like ``Row.project``.
        """
        layout = SlotLayout()
        pipeline = compile_batched_plan(plan, ctx, layout)
        if not part.updates:
            if part.projection:
                out_slots = [
                    (item.output_name, layout.slot_of(item.output_name))
                    for item in part.projection
                ]

                def run_read() -> Iterator[Row]:
                    for arg_row in input_rows:
                        for morsel in pipeline(layout.row_from(arg_row)):
                            for slot_row in morsel:
                                yield Row(
                                    {
                                        name: slot_row[slot]
                                        for name, slot in out_slots
                                    }
                                )
            else:

                def run_read() -> Iterator[Row]:
                    for arg_row in input_rows:
                        for morsel in pipeline(layout.row_from(arg_row)):
                            for slot_row in morsel:
                                yield layout.row_to(slot_row)

            return run_read()
        if transaction is None:
            raise TransactionError("update query requires an open transaction")

        def row_pipeline(arg_row: Row) -> Iterator[Row]:
            for morsel in pipeline(layout.row_from(arg_row)):
                for slot_row in morsel:
                    yield layout.row_to(slot_row)

        return self._run_update_part(
            input_rows, part, row_pipeline, transaction, ctx
        )

    def _run_part_compiled(
        self,
        input_rows: Iterator[Row],
        part: QueryPart,
        plan: LogicalPlan,
        ctx: RuntimeContext,
        transaction: Optional[Transaction],
        cpart: Optional[CompiledPart],
    ) -> Iterator[Row]:
        """Codegen counterpart of :meth:`_run_part_batched`.

        ``cpart`` is the part's compiled pipeline, or None when it fell
        back to the batched engine. The generated function receives its
        per-execution dependencies — the profile flush and the
        cancellation check — as arguments; everything compile-time
        (store, index, expression closures, tokens) is baked in.
        """
        if cpart is None:
            return self._run_part_batched(input_rows, part, plan, ctx, transaction)
        fn = cpart.fn
        layout = cpart.layout
        plans = cpart.plans
        record = ctx.profile.record

        def flush(counts: tuple) -> None:
            for node, count in zip(plans, counts):
                if count:
                    record(node, count)

        token = ctx.token
        if token is None:
            check = _no_check
        else:
            check = getattr(token, "check_batch", None) or token.check

        def slot_arg(arg_row: Row) -> list:
            # The layout is shared across executions of the cached
            # artifact; runtime slot allocation for unforeseen argument
            # names must not race.
            with cpart.lock:
                return layout.row_from(arg_row)

        tracker = ctx.tracker

        if not part.updates:
            if cpart.row_sink:

                def run_read() -> Iterator[Row]:
                    for arg_row in input_rows:
                        for morsel in fn(slot_arg(arg_row), flush, check, tracker):
                            yield from morsel

            else:

                def run_read() -> Iterator[Row]:
                    for arg_row in input_rows:
                        for morsel in fn(slot_arg(arg_row), flush, check, tracker):
                            for slot_row in morsel:
                                yield layout.row_to(slot_row)

            return run_read()
        if transaction is None:
            raise TransactionError("update query requires an open transaction")

        def row_pipeline(arg_row: Row) -> Iterator[Row]:
            for morsel in fn(slot_arg(arg_row), flush, check, tracker):
                for slot_row in morsel:
                    yield layout.row_to(slot_row)

        return self._run_update_part(
            input_rows, part, row_pipeline, transaction, ctx
        )

    def _run_update_part(
        self,
        input_rows: Iterator[Row],
        part: QueryPart,
        pipeline,
        transaction: Transaction,
        ctx: RuntimeContext,
    ) -> Iterator[Row]:
        # Updates are eager: all matches are computed, all writes applied,
        # then the boundary projection is evaluated. The matched-row buffer
        # spills (order-preserving append buffer); the post-update rows are
        # charged non-spillably, so an oversized write fails with
        # MemoryLimitExceeded and rolls back.
        mem = ctx.mem()
        matched = AppendSpillBuffer(mem, "update: matched rows")
        for arg_row in input_rows:
            for row in pipeline(arg_row):
                matched.add(row)
        deleted_rels: set[int] = set()
        deleted_nodes: set[int] = set()
        updated_rows: list[Row] = []
        for row in matched:
            mem.charge("update: written rows", ROW_BYTES)
            updated_rows.append(
                self._apply_updates(
                    row, part.updates, transaction, deleted_rels, deleted_nodes
                )
            )
        if part.order_by:
            # Sort before projecting so ORDER BY sees pattern variables;
            # aliases resolve to their source expressions.
            alias_map = {
                item.output_name: item.expression for item in part.projection
            }
            for expression, ascending in reversed(part.order_by):
                if (
                    isinstance(expression, ast.Variable)
                    and expression.name in alias_map
                ):
                    expression = alias_map[expression.name]
                updated_rows.sort(
                    key=lambda row, expr=expression: _sort_key(
                        evaluate(expr, row, self.eval_ctx)
                    ),
                    reverse=not ascending,
                )
        output = []
        for row in updated_rows:
            if part.projection:
                output.append(
                    row.project(
                        {
                            item.output_name: evaluate(
                                item.expression, row, self.eval_ctx
                            )
                            for item in part.projection
                        }
                    )
                )
            else:
                output.append(row)
        if part.distinct and part.projection:
            seen = set()
            unique = []
            columns = [item.output_name for item in part.projection]
            for row in output:
                key = tuple(row.values.get(column) for column in columns)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            output = unique
        if part.skip:
            output = output[part.skip :]
        if part.limit is not None:
            output = output[: part.limit]
        return iter(output)

    def _apply_updates(
        self,
        row: Row,
        updates: Sequence[UpdateAction],
        transaction: Transaction,
        deleted_rels: set[int],
        deleted_nodes: set[int],
    ) -> Row:
        values = dict(row.values)
        for action in updates:
            if action.kind == "create_node":
                label_ids = [
                    self.store.labels.get_or_create(label) for label in action.labels
                ]
                node_id = transaction.create_node(label_ids)
                for key, value_expr in action.properties.items():
                    key_id = self.store.property_keys.get_or_create(key)
                    transaction.set_node_property(
                        node_id,
                        key_id,
                        evaluate(value_expr, Row(values), self.eval_ctx),
                    )
                values[action.variable] = node_id
            elif action.kind == "create_relationship":
                start = values.get(action.start)
                end = values.get(action.end)
                if start is None or end is None:
                    raise ReproError(
                        f"CREATE relationship endpoints {action.start!r}/"
                        f"{action.end!r} are unbound"
                    )
                type_id = self.store.types.get_or_create(action.type)
                rel_id = transaction.create_relationship(
                    int(start), int(end), type_id
                )
                for key, value_expr in action.properties.items():
                    key_id = self.store.property_keys.get_or_create(key)
                    transaction.set_relationship_property(
                        rel_id,
                        key_id,
                        evaluate(value_expr, Row(values), self.eval_ctx),
                    )
                values[action.variable] = rel_id
            elif action.kind == "delete":
                self._apply_delete(
                    action, values, transaction, deleted_rels, deleted_nodes
                )
            else:  # pragma: no cover - builder produces only the above
                raise ReproError(f"unknown update action {action.kind!r}")
        return Row(values, row.rel_ids)

    def _apply_delete(
        self,
        action: UpdateAction,
        values: dict[str, object],
        transaction: Transaction,
        deleted_rels: set[int],
        deleted_nodes: set[int],
    ) -> None:
        name = action.variable
        entity = values.get(name)
        if entity is None:
            return
        kind = self.variable_kinds.get(name)
        if kind is VariableKind.RELATIONSHIP:
            if entity not in deleted_rels:
                deleted_rels.add(int(entity))
                transaction.delete_relationship(int(entity))
            return
        if kind is not VariableKind.NODE:
            raise ReproError(f"DELETE target {name!r} is not an entity")
        node_id = int(entity)
        if node_id in deleted_nodes:
            return
        if action.detach:
            for rel in list(self.store.relationships_of(node_id)):
                if rel.id not in deleted_rels:
                    deleted_rels.add(rel.id)
                    transaction.delete_relationship(rel.id)
        deleted_nodes.add(node_id)
        transaction.delete_node(node_id)
