"""Compiled (data-centric codegen) execution mode.

``compile_query`` turns a planned query into a :class:`CompiledQuery`: one
exec-compiled Python pipeline function per query part (see
:mod:`repro.runtime.compiled.codegen`), with ``None`` marking parts that
fell back to the batched engine because a plan node has no compiled form.
The artifact is cached on the plan-cache entry, so it shares the plan's
invalidation (statistics drift, index set changes).

Fallbacks are recorded in a process-wide counter keyed by reason —
:func:`fallback_counts` — so benchmarks and tests can assert that the
paper's query shapes compile fully.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.planner.plans import LogicalPlan
from repro.runtime.batched import SlotLayout
from repro.runtime.compiled.codegen import (
    CHECK_STRIDE,
    PRODUCERS,
    CompiledUnsupported,
    PartCompiler,
    generate_part_source,
)
from repro.runtime.operators import RuntimeContext

__all__ = [
    "CHECK_STRIDE",
    "PRODUCERS",
    "CompiledPart",
    "CompiledQuery",
    "CompiledUnsupported",
    "compile_query",
    "fallback_counts",
    "reset_fallback_counts",
    "PartCompiler",
]

_fallback_lock = threading.Lock()
_fallbacks: Counter = Counter()


def record_fallback(reason: str) -> None:
    """Count one batched-engine fallback with its reason."""
    with _fallback_lock:
        _fallbacks[reason] += 1


def fallback_counts() -> dict[str, int]:
    """Snapshot of fallback reasons → occurrence counts."""
    with _fallback_lock:
        return dict(_fallbacks)


def reset_fallback_counts() -> None:
    with _fallback_lock:
        _fallbacks.clear()


@dataclass
class CompiledPart:
    """One query part's exec-compiled pipeline.

    ``fn(slot_arg, flush, check)`` yields morsels; items are finished
    :class:`~repro.runtime.row.Row` objects when ``row_sink`` is set,
    full slot rows otherwise. ``plans`` lists the plan nodes in counter
    order for ``flush``. ``lock`` guards the shared layout's runtime slot
    allocation (``row_from``) because the artifact — unlike the batched
    engine's per-execution layouts — is reused across executions.
    """

    fn: object
    source: str
    layout: SlotLayout
    plans: list[LogicalPlan]
    row_sink: bool
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class CompiledQuery:
    """Compiled pipelines for all parts of one query.

    ``parts[i]`` is None when part ``i`` fell back to the batched engine;
    ``fallback_reasons`` records why (aligned with fallen-back parts in
    order). ``morsel_size`` is baked into the generated output chunking,
    so executions with a different morsel size must recompile.
    """

    parts: list[Optional[CompiledPart]]
    fallback_reasons: list[str]
    morsel_size: int

    @property
    def fully_compiled(self) -> bool:
        return all(part is not None for part in self.parts)

    def source(self) -> str:
        """The generated Python source for all parts (shell ``:source``)."""
        sections = []
        for position, part in enumerate(self.parts):
            header = f"# ---- part {position} ----"
            if part is None:
                reason = (
                    self.fallback_reasons[
                        sum(1 for p in self.parts[:position] if p is None)
                    ]
                    if self.fallback_reasons
                    else "unknown"
                )
                sections.append(f"{header}\n# falls back to batched: {reason}\n")
            else:
                sections.append(f"{header}\n{part.source}")
        return "\n".join(sections)


def compile_part(
    part,
    plan: LogicalPlan,
    ctx: RuntimeContext,
    arg_names: Sequence[str] = (),
    position: int = 0,
) -> CompiledPart:
    """Compile one part; raises :class:`CompiledUnsupported`."""
    layout = SlotLayout()
    source, env, plans, row_sink = generate_part_source(
        part, plan, ctx, layout, arg_names
    )
    namespace = dict(env)
    code = compile(source, f"<compiled:part{position}>", "exec")
    exec(code, namespace)
    return CompiledPart(
        fn=namespace["_pipeline"],
        source=source,
        layout=layout,
        plans=plans,
        row_sink=row_sink,
    )


def compile_query(
    planned_parts: Sequence[tuple[object, LogicalPlan]],
    ctx: RuntimeContext,
) -> CompiledQuery:
    """Compile every part of a planned query, falling back per part.

    ``planned_parts`` is the plan cache's ``(QueryPart, LogicalPlan)``
    sequence; ``ctx`` supplies the store, index store, evaluation context
    and morsel size the generated code binds at compile time (the profile
    and token on ``ctx`` are *not* captured — they arrive per execution
    through the ``flush``/``check`` arguments).
    """
    parts: list[Optional[CompiledPart]] = []
    reasons: list[str] = []
    arg_names: Sequence[str] = ()
    for position, (part, plan) in enumerate(planned_parts):
        try:
            compiled = compile_part(part, plan, ctx, arg_names, position)
        except CompiledUnsupported as exc:
            record_fallback(exc.reason)
            reasons.append(exc.reason)
            parts.append(None)
            arg_names = tuple(
                item.output_name for item in getattr(part, "projection", ())
            )
            continue
        parts.append(compiled)
        # Pre-allocate everything the next part can receive through its
        # argument row, so runtime slot allocation is the exception.
        if part.projection:
            arg_names = tuple(item.output_name for item in part.projection)
        else:
            arg_names = tuple(compiled.layout.slots)
    return CompiledQuery(
        parts=parts,
        fallback_reasons=reasons,
        morsel_size=ctx.morsel_size,
    )
