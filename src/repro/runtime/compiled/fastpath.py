"""Store access fast paths bound into generated pipelines.

The interpreted engines reach records through the full store stack —
``read`` → ``try_read`` → ``_touch`` → ``PageCache.touch`` →
``PageCache.touch_page`` — which costs five Python frames per record on
top of the generator frames of :meth:`GraphStore.expand`. In a fused
pipeline those frames dominate expand-heavy queries, so the compiled
engine binds the closures below instead: they walk the same chains and
buckets with direct record-list access and issue exactly one
``touch_page`` call per record read.

Page-cache accounting stays observably identical: every record access
touches the same page, in the same order, as the interpreted path would
(the arithmetic ``record_id * record_size // page_size`` is what
``RecordStore._touch`` computes). Dense nodes keep using the store's
group-chain iterator — their per-type chains are already selective, and
duplicating that logic here would buy little.

MVCC: each closure samples the thread's ambient snapshot LSN per
invocation. Latest-mode reads (writers, embedded use) take the one-load
``slot[1]`` path; snapshot reads resolve each slot against its version
chain exactly like :meth:`RecordStore.try_read`, so compiled pipelines
are byte-identical to the interpreted engines at any pinned LSN — with
zero locking either way.
"""

from __future__ import annotations

from repro.errors import RecordNotFoundError
from repro.storage.graphstore import Direction, GraphStore


def make_expander(store: GraphStore):
    """A closure ``expand(node_id, direction, type_id)`` yielding
    ``(rel_id, neighbour_id, type_id)`` — the compiled form of
    :meth:`GraphStore.expand` with the sparse chain walk inlined."""
    nodes_read = store.nodes.read
    rel_store = store.relationships
    slots = rel_store._records
    history = rel_store._history
    file_name = rel_store.name
    record_size = rel_store.record_size
    page_cache = store.page_cache
    touch_page = page_cache.touch_page
    page_size = page_cache.page_size
    rels_of = store.relationships_of
    reading_lsn = store.mvcc.reading_lsn
    incoming = Direction.INCOMING
    outgoing = Direction.OUTGOING

    def expand(node_id, direction, type_id):
        record = nodes_read(node_id)
        if record.dense:
            for rel in rels_of(node_id, direction, type_id):
                start = rel.start_node
                yield rel.id, (
                    rel.end_node if node_id == start else start
                ), rel.type_id
            return
        lsn = reading_lsn()
        out_ok = direction is not incoming
        in_ok = direction is not outgoing
        pointer = record.first_rel
        while pointer != -1:
            touch_page(file_name, pointer * record_size // page_size)
            slot = slots[pointer]
            if lsn is None:
                rel = None if slot is None else slot[1]
            elif slot is not None and slot[0] <= lsn:
                rel = slot[1]
            else:
                rel = None
                chain = history.get(pointer)
                if chain is not None:
                    for version_lsn, version in reversed(chain):
                        if version_lsn <= lsn:
                            rel = version
                            break
            if rel is None:
                raise RecordNotFoundError(
                    f"{file_name}: no record {pointer}"
                )
            start = rel.start_node
            end = rel.end_node
            if type_id is None or rel.type_id == type_id:
                if start == end:
                    if start == node_id:
                        yield rel.id, node_id, rel.type_id
                elif node_id == start:
                    if out_ok:
                        yield rel.id, end, rel.type_id
                elif in_ok:
                    yield rel.id, start, rel.type_id
            pointer = rel.start_next if node_id == start else rel.end_next
        return

    return expand


def make_label_scanner(store: GraphStore):
    """A closure ``scan(label_id)`` yielding node ids from the label
    index, touching each node's page like the interpreted scan does."""
    node_store = store.nodes
    file_name = node_store.name
    record_size = node_store.record_size
    page_cache = store.page_cache
    touch_page = page_cache.touch_page
    page_size = page_cache.page_size
    buckets = store._label_index
    reading_lsn = store.mvcc.reading_lsn

    def scan(label_id):
        bucket = buckets.get(label_id)
        if bucket is None:
            return
        lsn = reading_lsn()
        value_at = bucket.value_at
        for node_id in bucket.keys():
            if value_at(node_id, lsn, False):
                touch_page(file_name, node_id * record_size // page_size)
                yield node_id

    return scan


def make_label_checker(store: GraphStore):
    """A closure ``has_label(node_id, label_id)`` — the compiled form of
    :meth:`GraphStore.has_label`, one page touch per check."""
    node_store = store.nodes
    slots = node_store._records
    history = node_store._history
    file_name = node_store.name
    record_size = node_store.record_size
    page_cache = store.page_cache
    touch_page = page_cache.touch_page
    page_size = page_cache.page_size
    reading_lsn = store.mvcc.reading_lsn

    def has_label(node_id, label_id):
        touch_page(file_name, node_id * record_size // page_size)
        slot = slots[node_id]
        lsn = reading_lsn()
        if lsn is None:
            record = None if slot is None else slot[1]
        elif slot is not None and slot[0] <= lsn:
            record = slot[1]
        else:
            record = None
            chain = history.get(node_id)
            if chain is not None:
                for version_lsn, version in reversed(chain):
                    if version_lsn <= lsn:
                        record = version
                        break
        if record is None:
            raise RecordNotFoundError(f"{file_name}: no record {node_id}")
        return label_id in record.labels

    return has_label
