"""Plan-to-Python source compilation (data-centric codegen, §2.2 context).

``compile_part`` walks one query part's :class:`LogicalPlan` tree and emits
a single Python generator function in which all operators of a pipeline are
fused into one loop nest: scans become ``for`` loops over store/index
iterators, variable bindings become plain locals, and predicates/projections
call expression closures pre-compiled with
:func:`repro.runtime.expressions.compile_expression`. Pipeline breakers
(hash-join build, aggregation, sort, distinct-free buffering points) stay in
the same function as materialization points between loop nests, exactly
where the batched engine breaks its morsel streams.

The generated function preserves the batched engine's observable contract:

* per-logical-operator row counts (flushed once per invocation via the
  ``_flush`` argument; operators that produced nothing are skipped, like the
  batched engine's empty-morsel suppression),
* cooperative cancellation (``_check`` is called every
  :data:`CHECK_STRIDE` operator outputs — the fused counterpart of the
  batched engine's per-morsel ``check_batch``),
* relationship-uniqueness semantics, binder/filter ordering, and the
  morsel-sized output chunking of the batched engine,
* per-query memory accounting: the optional ``_mem`` argument is the
  query's :class:`~repro.resources.pool.MemoryTracker`, and every
  pipeline breaker buffers through the same spill-aware structures
  (:mod:`repro.resources.spill`) as the other engines, with identical
  per-row cost estimates — so all three engines spill at the same input
  cardinalities and remain row-identical under any budget.

Codegen is a produce/consume recursion (Neumann-style): ``produce(plan)``
emits the loops that generate rows and invokes the parent's ``consume``
callback to emit the code handling each row. The *scope* threaded through
consume callbacks tracks how each variable is currently available — as a
local, or as a slot of a materialized row — so rows are only materialized
at breakers and sinks.

Token ids (labels, relationship types, property keys) are resolved when the
part is compiled, with per-invocation fallback for ids unknown at compile
time in exactly the places the batched engine has one (primary label of a
label scan, incomplete expand type sets, compiled expressions). The
artifact is cached with the plan, so it is dropped whenever statistics
drift invalidates the plan itself.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from repro.cypher import ast
from repro.errors import ReproError
from repro.resources import (
    NULL_TRACKER,
    ROW_BYTES,
    AggregationSpillBuffer,
    AppendSpillBuffer,
    Desc,
    DistinctSpillBuffer,
    JoinSpillBuffer,
    SortSpillBuffer,
)
from repro.planner.plans import (
    LogicalPlan,
    PlanAggregation,
    PlanAllNodesScan,
    PlanArgument,
    PlanCartesianProduct,
    PlanDistinct,
    PlanExpand,
    PlanFilter,
    PlanLimit,
    PlanNodeByLabelScan,
    PlanNodeHashJoin,
    PlanPathIndexFilteredScan,
    PlanPathIndexPrefixSeek,
    PlanPathIndexScan,
    PlanProjection,
    PlanRelationshipByTypeScan,
    PlanSort,
)
from repro.runtime.batched import SlotLayout, _merge_rows, _slot_entry_binder
from repro.runtime.expressions import (
    EvaluationContext,
    compile_expression,
    compile_predicate,
    evaluate,
)
from repro.runtime.operators import (
    RuntimeContext,
    _Accumulator,
    _aggregate_calls,
    _filtered_scan_constraints,
    _hashable,
    _label_ids,
    _resolve_type_ids,
    _skip_target,
    _sort_key,
)
from repro.runtime.compiled.fastpath import (
    make_expander,
    make_label_checker,
    make_label_scanner,
)
from repro.runtime.row import Row

CHECK_STRIDE = 1024
"""Operator outputs between cancellation checks (matches the batched
engine's morsel size, so deadline-abort latency is comparable)."""


class CompiledUnsupported(ReproError):
    """Raised when a plan (or plan node) has no compiled form.

    The caller falls back to the batched engine for the affected part and
    records ``reason`` in the fallback counter.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"compiled execution unsupported: {reason}")
        self.reason = reason


# ---------------------------------------------------------------------------
# Scopes: how variables are available at a point in the generated code
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Scope:
    """Variable availability at one point of the generated loop nest.

    ``base`` names a local holding a full slot row (or None when the row
    exists only as locals); ``bound`` maps variable names to expression
    strings overriding the base row; ``rels`` is an expression for the
    current relationship-uniqueness tuple. ``closed`` marks post-boundary
    scopes where any variable not in ``bound`` is NULL (the row engine
    drops non-projected bindings at WITH boundaries).
    """

    base: Optional[str]
    bound: dict[str, str] = field(default_factory=dict)
    rels: str = "()"
    closed: bool = False

    def binding(self, **names: str) -> "_Scope":
        merged = dict(self.bound)
        merged.update(names)
        return replace(self, bound=merged)


class _MiniSlots:
    """Slot allocator for one compiled expression: the closure indexes a
    tuple built from scope references instead of a full slot row."""

    def __init__(self) -> None:
        self.names: list[str] = []

    def slot_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            self.names.append(name)
            return len(self.names) - 1


# ---------------------------------------------------------------------------
# The per-part compiler
# ---------------------------------------------------------------------------


class PartCompiler:
    """Emits the fused pipeline function for one query part."""

    def __init__(
        self,
        plan: LogicalPlan,
        ctx: RuntimeContext,
        layout: SlotLayout,
    ) -> None:
        self.plan = plan
        self.ctx = ctx
        self.layout = layout
        self.lines: list[str] = []
        self.indent = 2  # inside `def` + `try`
        self.env: dict[str, object] = {}
        self._names = itertools.count()
        self.plans: list[LogicalPlan] = []
        self._plan_index: dict[int, int] = {}
        for node in _walk(plan):
            if id(node) not in self._plan_index:
                self._plan_index[id(node)] = len(self.plans)
                self.plans.append(node)
        self.initial_scope = _Scope(base="_arg", rels="_R0")

    # -- emission helpers ------------------------------------------------

    def fresh(self, prefix: str) -> str:
        return f"_{prefix}{next(self._names)}"

    def add_env(self, prefix: str, value: object) -> str:
        name = self.fresh(prefix)
        self.env[name] = value
        return name

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    @contextmanager
    def block(self):
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1

    def ref(self, scope: _Scope, name: str) -> str:
        """Expression string for variable ``name`` under ``scope``."""
        expr = scope.bound.get(name)
        if expr is not None:
            return expr
        if scope.closed:
            return "None"
        return f"{scope.base}[{self.layout.slot_of(name)}]"

    def count_and_check(self, plan: LogicalPlan) -> None:
        """Per-operator-output profile accounting (one integer add)."""
        self.emit(f"_ct{self._plan_index[id(plan)]} += 1")

    def tick(self) -> None:
        """Strided cancellation check, emitted once per source-loop
        iteration (scans, expands, seeks, probe/product inner loops)
        rather than per operator output — pass-through operators ride on
        the tick of the loop that feeds them."""
        self.emit("_tick += 1")
        self.emit(f"if not _tick % {CHECK_STRIDE}:")
        with self.block():
            self.emit("_check()")

    # -- expression compilation ------------------------------------------

    def expr_code(self, expression: ast.Expression, scope: _Scope) -> str:
        """Code evaluating ``expression`` in ``scope`` (NULL-safe)."""
        if isinstance(expression, ast.Variable):
            return self.ref(scope, expression.name)
        if isinstance(expression, ast.Literal) and isinstance(
            expression.value, (bool, int, str, type(None))
        ):
            return repr(expression.value)
        mini = _MiniSlots()
        fn = self.add_env(
            "e", compile_expression(expression, mini.slot_of, self.ctx.eval_ctx)
        )
        return f"{fn}({self._ref_tuple(mini, scope)})"

    def pred_code(self, expression: ast.Expression, scope: _Scope) -> str:
        """Code for a predicate test (only an exact True passes)."""
        if isinstance(expression, ast.Variable):
            return f"{self.ref(scope, expression.name)} is True"
        mini = _MiniSlots()
        fn = self.add_env(
            "p", compile_predicate(expression, mini.slot_of, self.ctx.eval_ctx)
        )
        return f"{fn}({self._ref_tuple(mini, scope)})"

    def _ref_tuple(self, mini: _MiniSlots, scope: _Scope) -> str:
        if not mini.names:
            return "()"
        parts = ", ".join(self.ref(scope, name) for name in mini.names)
        return f"({parts},)" if len(mini.names) == 1 else f"({parts})"

    # -- row materialization ----------------------------------------------

    def materialize(self, scope: _Scope) -> str:
        """Emit code building a full slot row for ``scope``; returns its
        local name (or the base row itself when nothing was rebound)."""
        if (
            scope.base is not None
            and not scope.bound
            and scope.rels == f"{scope.base}[_W]"
        ):
            return scope.base
        row = self.fresh("m")
        if scope.base is not None:
            self.emit(f"{row} = {scope.base}[:]")
        else:
            self.emit(f"{row} = [None] * (_W + 1)")
        for name, expr in scope.bound.items():
            self.emit(f"{row}[{self.layout.slot_of(name)}] = {expr}")
        self.emit(f"{row}[_W] = {scope.rels}")
        return row

    def row_scope(self, row: str) -> _Scope:
        return _Scope(base=row, rels=f"{row}[_W]")

    # -- produce/consume recursion ----------------------------------------

    def produce(self, plan: LogicalPlan, consume: Callable[[_Scope], None]) -> None:
        producer = PRODUCERS.get(type(plan))
        if producer is None:
            raise CompiledUnsupported(
                f"no compiled operator for {type(plan).__name__}"
            )
        producer(self, plan, consume)


def _walk(plan: LogicalPlan) -> Iterable[LogicalPlan]:
    yield plan
    for child in plan.children:
        yield from _walk(child)


# ---------------------------------------------------------------------------
# Leaf producers
# ---------------------------------------------------------------------------


def _p_argument(comp: PartCompiler, plan: PlanArgument, consume) -> None:
    for variable in plan.variables:
        comp.layout.slot_of(variable)
    # A one-iteration loop so downstream `continue` has a loop to target.
    comp.emit("for _ in (0,):")
    with comp.block():
        comp.count_and_check(plan)
        consume(comp.initial_scope)


def _p_all_nodes_scan(comp: PartCompiler, plan: PlanAllNodesScan, consume) -> None:
    scope = comp.initial_scope
    nodes = comp.add_env("nodes", comp.ctx.store.all_nodes)
    bound = comp.fresh("b")
    node = comp.fresh("n")
    comp.emit(f"{bound} = {comp.ref(scope, plan.node)}")
    comp.emit(f"for {node} in {nodes}():")
    with comp.block():
        comp.tick()
        comp.emit(f"if {bound} is not None and {bound} != {node}:")
        with comp.block():
            comp.emit("continue")
        comp.count_and_check(plan)
        consume(scope.binding(**{plan.node: node}))


def _emit_post_label_checks(comp: PartCompiler, post, value: str) -> bool:
    """Emit per-label filters on ``value`` (an int node-id local).

    Returns False when a label is unknown at compile time: the row can
    never match (batched parity), a bare ``continue`` was emitted, and
    the caller must stop emitting code for this output.
    """
    if not post:
        return True
    checker = comp.add_env("hasl", make_label_checker(comp.ctx.store))
    for label_id in post:
        if label_id is None:
            comp.emit("continue")
            return False
        comp.emit(f"if not {checker}({value}, {label_id}):")
        with comp.block():
            comp.emit("continue")
    return True


def _p_node_by_label_scan(
    comp: PartCompiler, plan: PlanNodeByLabelScan, consume
) -> None:
    scope = comp.initial_scope
    ctx = comp.ctx
    store = ctx.store
    scan = comp.add_env("lscan", make_label_scanner(store))
    label_id = comp.fresh("lid")
    static = store.labels.id_of(plan.label)
    if static is not None:
        comp.emit(f"{label_id} = {static}")
    else:
        # Unknown at compile time: per-invocation lookup, like the batched
        # engine's per-run fallback.
        lookup = comp.add_env(
            "rlbl", lambda store=store, label=plan.label: store.labels.id_of(label)
        )
        comp.emit(f"{label_id} = {lookup}()")
    post = [lid for _, lid in _label_ids(ctx, plan.post_labels)]
    comp.emit(f"if {label_id} is not None:")
    with comp.block():
        bound = comp.fresh("b")
        node = comp.fresh("n")
        comp.emit(f"{bound} = {comp.ref(scope, plan.node)}")
        comp.emit(f"for {node} in {scan}({label_id}):")
        with comp.block():
            comp.tick()
            comp.emit(f"if {bound} is not None and {bound} != {node}:")
            with comp.block():
                comp.emit("continue")
            if not _emit_post_label_checks(comp, post, node):
                return
            comp.count_and_check(plan)
            consume(scope.binding(**{plan.node: node}))


def _p_relationship_by_type_scan(
    comp: PartCompiler, plan: PlanRelationshipByTypeScan, consume
) -> None:
    ctx = comp.ctx
    if ctx.index_store is None:
        raise CompiledUnsupported("RelationshipByTypeScan without an index store")
    scope = comp.initial_scope
    index = ctx.index_store.get(plan.index_name)
    scan = comp.add_env("rscan", index.scan)
    bound_rel = comp.fresh("br")
    comp.emit(f"{bound_rel} = {comp.ref(scope, plan.rel)}")
    rels = scope.rels
    start, rel_id, end = comp.fresh("s"), comp.fresh("r"), comp.fresh("t")
    comp.emit(f"for {start}, {rel_id}, {end} in {scan}():")
    with comp.block():
        comp.tick()
        comp.emit(f"if {bound_rel} is not None and {bound_rel} != {rel_id}:")
        with comp.block():
            comp.emit("continue")
        comp.emit(f"if {rel_id} in {rels} and {bound_rel} != {rel_id}:")
        with comp.block():
            comp.emit("continue")

        def orientation(source: str, target: str) -> None:
            bound_start = comp.ref(scope, plan.start_node)
            comp.emit(
                f"if {bound_start} is not None and {bound_start} != {source}:"
            )
            with comp.block():
                comp.emit("continue")
            if plan.end_node == plan.start_node:
                # Same variable on both endpoints: the just-bound start
                # value must match the other orientation endpoint.
                comp.emit(f"if {source} != {target}:")
                with comp.block():
                    comp.emit("continue")
            else:
                bound_end = comp.ref(scope, plan.end_node)
                comp.emit(
                    f"if {bound_end} is not None and {bound_end} != {target}:"
                )
                with comp.block():
                    comp.emit("continue")
            inner = scope.binding(
                **{
                    plan.start_node: source,
                    plan.end_node: target,
                    plan.rel: rel_id,
                }
            )
            for var, label in plan.post_labels:
                label_id = ctx.store.labels.id_of(label)
                value = comp.ref(inner, var)
                if label_id is None:
                    # An unknown label can never match (batched parity).
                    comp.emit("continue")
                    return
                has_label = comp.add_env(
                    "hasl", make_label_checker(ctx.store)
                )
                comp.emit(
                    f"if {value} is None or "
                    f"not {has_label}(int({value}), {label_id}):"
                )
                with comp.block():
                    comp.emit("continue")
            new_rels = comp.fresh("nr")
            comp.emit(
                f"{new_rels} = {rels} if {rel_id} in {rels} "
                f"else {rels} + ({rel_id},)"
            )
            comp.count_and_check(plan)
            consume(replace(inner, rels=new_rels))

        if plan.directed:
            orientation(start, end)
        else:
            pair = comp.fresh("o")
            comp.emit(
                f"for {pair} in ((({start}, {end}), ({end}, {start})) "
                f"if {start} != {end} else (({start}, {end}),)):"
            )
            with comp.block():
                source, target = comp.fresh("s"), comp.fresh("t")
                comp.emit(f"{source}, {target} = {pair}")
                orientation(source, target)


# ---------------------------------------------------------------------------
# Expand / join / product / filter producers
# ---------------------------------------------------------------------------


def _p_expand(comp: PartCompiler, plan: PlanExpand, consume) -> None:
    ctx = comp.ctx
    expand = comp.add_env("expand", make_expander(ctx.store))
    direction = comp.add_env("dir", plan.direction)
    post = [lid for _, lid in _label_ids(ctx, plan.post_labels)]

    single_type = "None"
    type_set = None
    type_guard: Optional[str] = None
    if plan.types:
        static = _resolve_type_ids(ctx, plan.types)
        if len(static) == len(plan.types):
            if len(static) == 1:
                single_type = repr(next(iter(static)))
            else:
                type_set = comp.add_env("types", frozenset(static))
        else:
            # Some types unknown at compile time: re-resolve per
            # invocation, mirroring the batched engine's per-run retry.
            resolver = comp.add_env(
                "rtypes",
                lambda ctx=ctx, names=plan.types: _resolve_type_ids(ctx, names),
            )
            resolved = comp.fresh("tr")
            single = comp.fresh("st")
            filt = comp.fresh("ts")
            comp.emit(f"{resolved} = {resolver}()")
            # Guard the whole subtree: no matching types, no child work
            # (the batched operator returns before consuming its child).
            type_guard = resolved
            comp.emit(f"if {resolved}:")
            comp.indent += 1
            comp.emit(
                f"{single} = next(iter({resolved})) "
                f"if len({resolved}) == 1 else None"
            )
            comp.emit(f"{filt} = None if {single} is not None else {resolved}")
            single_type = single
            type_set = filt

    def consume_child(scope: _Scope) -> None:
        from_id = comp.fresh("f")
        comp.emit(f"{from_id} = {comp.ref(scope, plan.from_node)}")
        comp.emit(f"if {from_id} is None:")
        with comp.block():
            comp.emit("continue")
        bound_rel = comp.fresh("br")
        comp.emit(f"{bound_rel} = {comp.ref(scope, plan.rel)}")
        if plan.into:
            target = comp.fresh("tb")
            comp.emit(f"{target} = {comp.ref(scope, plan.to_node)}")
        rels = scope.rels
        rel_id, neighbour = comp.fresh("ri"), comp.fresh("nb")
        rel_type = comp.fresh("rt")
        comp.emit(
            f"for {rel_id}, {neighbour}, {rel_type} in "
            f"{expand}(int({from_id}), {direction}, {single_type}):"
        )
        with comp.block():
            comp.tick()
            if type_set is not None:
                comp.emit(
                    f"if {type_set} is not None "
                    f"and {rel_type} not in {type_set}:"
                )
                with comp.block():
                    comp.emit("continue")
            comp.emit(f"if {bound_rel} is not None and {bound_rel} != {rel_id}:")
            with comp.block():
                comp.emit("continue")
            comp.emit(f"if {rel_id} in {rels} and {bound_rel} != {rel_id}:")
            with comp.block():
                comp.emit("continue")
            if plan.into:
                comp.emit(f"if {neighbour} != {target}:")
                with comp.block():
                    comp.emit("continue")
                inner = scope.binding(**{plan.rel: rel_id})
            else:
                if not _emit_post_label_checks(comp, post, neighbour):
                    return
                inner = scope.binding(
                    **{plan.rel: rel_id, plan.to_node: neighbour}
                )
            new_rels = comp.fresh("nr")
            comp.emit(
                f"{new_rels} = {rels} if {rel_id} in {rels} "
                f"else {rels} + ({rel_id},)"
            )
            comp.count_and_check(plan)
            consume(replace(inner, rels=new_rels))

    comp.produce(plan.children[0], consume_child)
    if type_guard is not None:
        comp.indent -= 1


def _p_node_hash_join(comp: PartCompiler, plan: PlanNodeHashJoin, consume) -> None:
    # The build table lives in a spill-aware buffer; the engine-specific
    # merge (binding conflicts, relationship uniqueness) closes over the
    # run-time uniqueness scope and row width.
    make_buffer = comp.add_env(
        "mkjoin",
        lambda mem, shared, width, plan=plan: JoinSpillBuffer(
            mem,
            plan,
            lambda build_row, probe_row: _merge_rows(
                build_row, probe_row, shared, width
            ),
        ),
    )
    shared = comp.fresh("sh")
    comp.emit(f"{shared} = frozenset(_R0)")
    buffer = comp.fresh("jb")
    comp.emit(f"{buffer} = {make_buffer}(_mem, {shared}, _W)")

    def build(scope: _Scope) -> None:
        key = _key_tuple(comp, scope, plan.join_nodes)
        row = comp.materialize(scope)
        comp.emit(f"{buffer}.insert({key}, {row})")

    comp.produce(plan.children[0], build)

    def emit_consume_merged(merged: str) -> None:
        comp.tick()
        comp.count_and_check(plan)
        consume(comp.row_scope(merged))

    def probe(scope: _Scope) -> None:
        key = _key_tuple(comp, scope, plan.join_nodes)
        row = comp.materialize(scope)
        merged = comp.fresh("mg")
        comp.emit(f"for {merged} in {buffer}.probe({key}, {row}):")
        with comp.block():
            emit_consume_merged(merged)

    comp.produce(plan.children[1], probe)
    # Spill-mode matches staged during the probe come back here, in exact
    # probe order (empty when nothing spilled).
    merged = comp.fresh("mg")
    comp.emit(f"for {merged} in {buffer}.drain():")
    with comp.block():
        emit_consume_merged(merged)


def _key_tuple(comp: PartCompiler, scope: _Scope, names) -> str:
    parts = ", ".join(comp.ref(scope, name) for name in names)
    return f"({parts},)" if len(names) == 1 else f"({parts})"


def _p_cartesian_product(
    comp: PartCompiler, plan: PlanCartesianProduct, consume
) -> None:
    make_buffer = comp.add_env(
        "mkrows", lambda mem, plan=plan: AppendSpillBuffer(mem, plan)
    )
    right_rows = comp.fresh("rr")
    comp.emit(f"{right_rows} = None")
    shared = comp.fresh("sh")
    comp.emit(f"{shared} = frozenset(_R0)")
    merge = comp.add_env("merge", _merge_rows)

    def left_consume(scope: _Scope) -> None:
        left_row = comp.materialize(scope)
        comp.emit(f"if {right_rows} is None:")
        with comp.block():
            comp.emit(f"{right_rows} = {make_buffer}(_mem)")
            append = comp.fresh("ra")
            comp.emit(f"{append} = {right_rows}.add")

            def right_consume(right_scope: _Scope) -> None:
                comp.emit(f"{append}({comp.materialize(right_scope)})")

            comp.produce(plan.children[1], right_consume)
        row, merged = comp.fresh("rw"), comp.fresh("mg")
        comp.emit(f"for {row} in {right_rows}:")
        with comp.block():
            comp.tick()
            comp.emit(f"{merged} = {merge}({left_row}, {row}, {shared}, _W)")
            comp.emit(f"if {merged} is None:")
            with comp.block():
                comp.emit("continue")
            comp.count_and_check(plan)
            consume(comp.row_scope(merged))

    comp.produce(plan.children[0], left_consume)


def _p_filter(comp: PartCompiler, plan: PlanFilter, consume) -> None:
    def consume_child(scope: _Scope) -> None:
        for predicate in plan.predicates:
            comp.emit(f"if not ({comp.pred_code(predicate, scope)}):")
            with comp.block():
                comp.emit("continue")
        comp.count_and_check(plan)
        consume(scope)

    comp.produce(plan.children[0], consume_child)


# ---------------------------------------------------------------------------
# Path index producers (§5.1)
# ---------------------------------------------------------------------------


def _p_path_index_scan(comp: PartCompiler, plan: PlanPathIndexScan, consume) -> None:
    ctx = comp.ctx
    if ctx.index_store is None:
        raise CompiledUnsupported("PathIndexScan without an index store")
    index = ctx.index_store.get(plan.index_name)
    scan = comp.add_env("iscan", index.scan)
    bind = comp.add_env("bind", _slot_entry_binder(plan, ctx, comp.layout))
    entry, row = comp.fresh("en"), comp.fresh("rw")
    comp.emit(f"for {entry} in {scan}():")
    with comp.block():
        comp.tick()
        comp.emit(f"{row} = {bind}({entry}, _arg)")
        comp.emit(f"if {row} is None:")
        with comp.block():
            comp.emit("continue")
        comp.count_and_check(plan)
        consume(comp.row_scope(row))


def _p_path_index_filtered_scan(
    comp: PartCompiler, plan: PlanPathIndexFilteredScan, consume
) -> None:
    ctx = comp.ctx
    if ctx.index_store is None:
        raise CompiledUnsupported("PathIndexFilteredScan without an index store")
    index = ctx.index_store.get(plan.index_name)
    scan_from = comp.add_env("isf", index.scan_from)
    bind = comp.add_env("bind", _slot_entry_binder(plan, ctx, comp.layout))
    width = len(plan.entry_vars)
    must_differ, must_equal, residual = _filtered_scan_constraints(plan)
    skip = comp.add_env(
        "skip",
        lambda entry, d=must_differ, e=must_equal, w=width: _skip_target(
            entry, d, e, w
        ),
    )
    predicates = [
        comp.add_env(
            "p", compile_predicate(predicate, comp.layout.slot_of, ctx.eval_ctx)
        )
        for predicate in residual
    ]
    lower, again = comp.fresh("lo"), comp.fresh("go")
    entry, row, violation = comp.fresh("en"), comp.fresh("rw"), comp.fresh("vi")
    comp.emit(f"{lower} = (0,) * {width}")
    comp.emit(f"{again} = True")
    comp.emit(f"while {again}:")
    with comp.block():
        comp.emit(f"{again} = False")
        comp.emit(f"for {entry} in {scan_from}({lower}):")
        with comp.block():
            comp.tick()
            comp.emit(f"{violation} = {skip}({entry})")
            comp.emit(f"if {violation} is not None:")
            with comp.block():
                comp.emit(f"{lower} = {violation}")
                comp.emit(f"{again} = True")
                comp.emit("break")
            comp.emit(f"{row} = {bind}({entry}, _arg)")
            comp.emit(f"if {row} is None:")
            with comp.block():
                comp.emit("continue")
            for predicate in predicates:
                comp.emit(f"if not {predicate}({row}):")
                with comp.block():
                    comp.emit("continue")
            comp.count_and_check(plan)
            consume(comp.row_scope(row))


def _p_path_index_prefix_seek(
    comp: PartCompiler, plan: PlanPathIndexPrefixSeek, consume
) -> None:
    ctx = comp.ctx
    if ctx.index_store is None:
        raise CompiledUnsupported("PathIndexPrefixSeek without an index store")
    index = ctx.index_store.get(plan.index_name)
    prepare = comp.add_env("prep", index.prepare_prefix)
    scan_prefix = comp.add_env("ipfx", index.scan_prefix)
    store = comp.add_env("store", ctx.store)
    bind = comp.add_env(
        "bind",
        _slot_entry_binder(
            plan, ctx, comp.layout, skip_positions=plan.prefix_length
        ),
    )
    prefix_vars = plan.entry_vars[: plan.prefix_length]
    plan_env = comp.add_env("pl", plan)
    groups = comp.fresh("gr")
    comp.emit(f"{groups} = {{}}")

    def collect(scope: _Scope) -> None:
        parts = ", ".join(
            f"int({comp.ref(scope, var)})" for var in prefix_vars
        )
        key = f"({parts},)" if len(prefix_vars) == 1 else f"({parts})"
        row = comp.materialize(scope)
        comp.emit(f"{groups}.setdefault({key}, []).append({row})")
        # The grouped rows are accessed randomly per prefix, so they
        # cannot spill; charge them against the tracker (released
        # wholesale at tracker close).
        comp.emit(f"_mem.charge({plan_env}, {ROW_BYTES})")

    comp.produce(plan.children[0], collect)
    prefix, rows = comp.fresh("pk"), comp.fresh("rs")
    entry, parent, row = comp.fresh("en"), comp.fresh("pr"), comp.fresh("rw")
    comp.emit(f"for {prefix}, {rows} in {groups}.items():")
    with comp.block():
        comp.emit(f"{prepare}({prefix}, {store})")
        comp.emit(f"for {entry} in {scan_prefix}({prefix}):")
        with comp.block():
            comp.emit(f"for {parent} in {rows}:")
            with comp.block():
                comp.tick()
                comp.emit(f"{row} = {bind}({entry}, {parent})")
                comp.emit(f"if {row} is None:")
                with comp.block():
                    comp.emit("continue")
                comp.count_and_check(plan)
                consume(comp.row_scope(row))


# ---------------------------------------------------------------------------
# Projection-boundary producers
# ---------------------------------------------------------------------------


def _p_projection(comp: PartCompiler, plan: PlanProjection, consume) -> None:
    for item in plan.items:
        comp.layout.slot_of(item.output_name)

    def consume_child(scope: _Scope) -> None:
        bound: dict[str, str] = {}
        for item in plan.items:
            code = comp.expr_code(item.expression, scope)
            local = comp.fresh("pj")
            comp.emit(f"{local} = {code}")
            bound[item.output_name] = local
        comp.count_and_check(plan)
        # The uniqueness scope resets and non-projected bindings drop at
        # the boundary, exactly like the batched projection's fresh row.
        consume(_Scope(base=None, bound=bound, rels="()", closed=True))

    comp.produce(plan.children[0], consume_child)


def _p_aggregation(comp: PartCompiler, plan: PlanAggregation, consume) -> None:
    ctx = comp.ctx
    grouping_names = [item.output_name for item in plan.grouping_items]
    for item in plan.grouping_items:
        comp.layout.slot_of(item.output_name)
    for item in plan.aggregate_items:
        comp.layout.slot_of(item.output_name)

    # Flat accumulator order: item by item, call by call; a None slot in
    # the fed tuple marks a count(*) accumulator.
    item_calls = [
        (item, _aggregate_calls(item.expression)) for item in plan.aggregate_items
    ]
    flat_calls = [call for _, calls in item_calls for call in calls]

    def make_accumulators() -> list:
        return [_Accumulator(call) for call in flat_calls]

    stars = [call.star for call in flat_calls]

    def feed(accumulators: list, values: tuple) -> None:
        for accumulator, star, value in zip(accumulators, stars, values):
            if star:
                accumulator.count += 1
            else:
                accumulator.feed_value(value)

    eval_ctx = ctx.eval_ctx

    def finish(key_values: tuple, accumulators: list) -> list:
        values = dict(zip(grouping_names, key_values))
        out = list(key_values)
        position = 0
        for item, calls in item_calls:
            results = {}
            for call in calls:
                results[call] = accumulators[position].result()
                position += 1
            value = evaluate(item.expression, Row(values), eval_ctx, results)
            values[item.output_name] = value
            out.append(value)
        return out

    # Spilled items must carry everything the fold needs, because the
    # generated code cannot re-evaluate expressions against a spilled
    # row: each item is (key_values, fed_values), both plain tuples.
    def new_state(item: tuple) -> tuple:
        return (item[0], make_accumulators())

    def feed_item(state: tuple, item: tuple) -> None:
        feed(state[1], item[1])

    make_buffer = comp.add_env(
        "mkagg",
        lambda mem, plan=plan: AggregationSpillBuffer(
            mem, plan, new_state, feed_item
        ),
    )
    make_env = comp.add_env("mkacc", make_accumulators)
    finish_env = comp.add_env("fin", finish)
    hashable = comp.add_env("hash", _hashable)
    buffer = comp.fresh("gr")
    comp.emit(f"{buffer} = {make_buffer}(_mem)")

    def consume_child(scope: _Scope) -> None:
        key_locals = []
        for item in plan.grouping_items:
            local = comp.fresh("gv")
            comp.emit(f"{local} = {comp.expr_code(item.expression, scope)}")
            key_locals.append(local)
        hashed = ", ".join(f"{hashable}({local})" for local in key_locals)
        if len(key_locals) == 1:
            hashed += ","
        values = ", ".join(key_locals)
        if len(key_locals) == 1:
            values += ","
        fed = []
        for call in flat_calls:
            if call.star:
                fed.append("None")
            else:
                fed.append(comp.expr_code(call.argument, scope))
        tuple_code = ", ".join(fed) + ("," if len(fed) == 1 else "")
        comp.emit(f"{buffer}.add(({hashed}), (({values}), ({tuple_code})))")

    comp.produce(plan.children[0], consume_child)
    states = comp.fresh("gl")
    if grouping_names:
        comp.emit(f"{states} = {buffer}.states()")
    else:
        # Global aggregation over zero rows still yields one row.
        comp.emit(f"if {buffer}.is_empty:")
        with comp.block():
            comp.emit(f"{states} = (((), {make_env}()),)")
        comp.emit("else:")
        with comp.block():
            comp.emit(f"{states} = {buffer}.states()")
    state, finished = comp.fresh("gs"), comp.fresh("fv")
    comp.emit(f"for {state} in {states}:")
    with comp.block():
        comp.tick()
        comp.emit(f"{finished} = {finish_env}({state}[0], {state}[1])")
        comp.count_and_check(plan)
        bound = {
            name: f"{finished}[{position}]"
            for position, name in enumerate(
                grouping_names + [item.output_name for item in plan.aggregate_items]
            )
        }
        consume(_Scope(base=None, bound=bound, rels="()", closed=True))


def _p_distinct(comp: PartCompiler, plan: PlanDistinct, consume) -> None:
    hashable = comp.add_env("hash", _hashable)
    make_buffer = comp.add_env(
        "mkdist", lambda mem, plan=plan: DistinctSpillBuffer(mem, plan)
    )
    buffer = comp.fresh("db")
    comp.emit(f"{buffer} = {make_buffer}(_mem)")

    def consume_child(scope: _Scope) -> None:
        hashed = ", ".join(
            f"{hashable}({comp.ref(scope, column)})" for column in plan.columns
        )
        if len(plan.columns) == 1:
            hashed += ","
        # The offered item must be a full row: post-freeze first
        # occurrences are deferred to disk and replayed by drain below.
        row = comp.materialize(scope)
        comp.emit(f"if not {buffer}.offer(({hashed}), {row}):")
        with comp.block():
            comp.emit("continue")
        comp.count_and_check(plan)
        consume(scope)

    comp.produce(plan.children[0], consume_child)
    # Deferred first occurrences (spill mode only), in input order.
    row = comp.fresh("rw")
    comp.emit(f"for {row} in {buffer}.drain():")
    with comp.block():
        comp.tick()
        comp.count_and_check(plan)
        consume(comp.row_scope(row))


def _p_sort(comp: PartCompiler, plan: PlanSort, consume) -> None:
    ctx = comp.ctx
    keys = [
        (
            compile_expression(expression, comp.layout.slot_of, ctx.eval_ctx),
            ascending,
        )
        for expression, ascending in plan.order_by
    ]

    def composed_key(row: list) -> tuple:
        # One stable sort on this composed key equals the historical chain
        # of per-level stable sorts (descending levels invert via Desc);
        # it also orders the external-sort run files.
        return tuple(
            _sort_key(fn(row)) if ascending else Desc(_sort_key(fn(row)))
            for fn, ascending in keys
        )

    make_buffer = comp.add_env(
        "mksort",
        lambda mem, plan=plan: SortSpillBuffer(mem, plan, composed_key),
    )
    buffer = comp.fresh("bf")
    append = comp.fresh("ba")
    comp.emit(f"{buffer} = {make_buffer}(_mem)")
    comp.emit(f"{append} = {buffer}.add")

    def consume_child(scope: _Scope) -> None:
        comp.emit(f"{append}({comp.materialize(scope)})")

    comp.produce(plan.children[0], consume_child)
    row = comp.fresh("rw")
    comp.emit(f"for {row} in {buffer}:")
    with comp.block():
        comp.tick()
        comp.count_and_check(plan)
        consume(comp.row_scope(row))


def _p_limit(comp: PartCompiler, plan: PlanLimit, consume) -> None:
    skipped = comp.fresh("sk")
    produced = comp.fresh("pd")
    if plan.skip:
        comp.emit(f"{skipped} = 0")
    if plan.limit >= 0:
        comp.emit(f"{produced} = 0")

    def consume_child(scope: _Scope) -> None:
        if plan.skip:
            comp.emit(f"if {skipped} < {plan.skip}:")
            with comp.block():
                comp.emit(f"{skipped} += 1")
                comp.emit("continue")
        if plan.limit >= 0:
            # Limit is always the part root, so returning ends the part;
            # pending output flushes first, counters flush in `finally`.
            comp.emit(f"if {produced} >= {plan.limit}:")
            with comp.block():
                comp.emit("if _out:")
                with comp.block():
                    comp.emit("yield _out")
                comp.emit("return")
            comp.emit(f"{produced} += 1")
        comp.count_and_check(plan)
        consume(scope)

    comp.produce(plan.children[0], consume_child)


PRODUCERS: dict[type, Callable] = {
    PlanArgument: _p_argument,
    PlanAllNodesScan: _p_all_nodes_scan,
    PlanNodeByLabelScan: _p_node_by_label_scan,
    PlanRelationshipByTypeScan: _p_relationship_by_type_scan,
    PlanExpand: _p_expand,
    PlanNodeHashJoin: _p_node_hash_join,
    PlanCartesianProduct: _p_cartesian_product,
    PlanFilter: _p_filter,
    PlanPathIndexScan: _p_path_index_scan,
    PlanPathIndexFilteredScan: _p_path_index_filtered_scan,
    PlanPathIndexPrefixSeek: _p_path_index_prefix_seek,
    PlanProjection: _p_projection,
    PlanAggregation: _p_aggregation,
    PlanDistinct: _p_distinct,
    PlanSort: _p_sort,
    PlanLimit: _p_limit,
}
"""Producer registry, keyed by plan-node type. Module-level so tests can
remove an entry to exercise the batched fallback path."""


# ---------------------------------------------------------------------------
# Part assembly
# ---------------------------------------------------------------------------


def generate_part_source(
    part,
    plan: LogicalPlan,
    ctx: RuntimeContext,
    layout: SlotLayout,
    arg_names: Iterable[str] = (),
) -> tuple[str, dict[str, object], list[LogicalPlan], bool]:
    """Generate the fused pipeline source for one query part.

    Returns ``(source, env, plans, row_sink)``. ``row_sink`` is True when
    the generated code emits finished :class:`Row` objects (read parts
    with a projection); otherwise it emits full slot rows for the caller
    to convert (update parts, projection-less parts). ``arg_names`` are
    pre-allocated in ``layout`` so argument rows of the previous part
    never have to allocate slots at run time.
    """
    for name in arg_names:
        layout.slot_of(name)
    comp = PartCompiler(plan, ctx, layout)
    row_sink = bool(part.projection) and not part.updates
    if row_sink:
        out_names = [item.output_name for item in part.projection]
        for name in out_names:
            layout.slot_of(name)
        comp.env["_Row"] = Row

    def sink(scope: _Scope) -> None:
        if row_sink:
            items = ", ".join(
                f"{name!r}: {comp.ref(scope, name)}" for name in out_names
            )
            comp.emit(f"_append(_Row({{{items}}}))")
        else:
            comp.emit(f"_append({comp.materialize(scope)})")
        comp.emit("if len(_out) >= _M:")
        with comp.block():
            comp.emit("yield _out")
            comp.emit("_out = []")
            comp.emit("_append = _out.append")

    comp.produce(plan, sink)

    counters = [f"_ct{i}" for i in range(len(comp.plans))]
    comp.env["_M"] = ctx.morsel_size
    comp.env["_NT"] = NULL_TRACKER
    # Environment values are bound as default arguments so the generated
    # loops read locals, not globals. ``_mem`` is the per-query
    # MemoryTracker (None when the caller does not account memory).
    env_params = "".join(f", {name}={name}" for name in sorted(comp.env))
    header = [
        f"def _pipeline(_arg, _flush, _check, _mem=None{env_params}):",
        "    if _mem is None:",
        "        _mem = _NT",
        "    _W = len(_arg) - 1",
        "    _R0 = _arg[_W]",
        "    _tick = 0",
    ]
    header += [f"    {counter} = 0" for counter in counters]
    header += [
        "    _out = []",
        "    _append = _out.append",
        "    try:",
    ]
    footer = [
        "        if _out:",
        "            yield _out",
        "    finally:",
        f"        _flush(({', '.join(counters)},))",
    ]
    source = "\n".join(header + comp.lines + footer) + "\n"
    return source, comp.env, comp.plans, row_sink
