"""A YAGO-like synthetic dataset (§6.4/§7.3 substitute).

The real YAGO dump (77M nodes) is unavailable offline and far beyond a
pure-Python run, so this generator synthesizes a graph with the *query-
relevant* structure of the paper's §7.3 experiment: the 6-step pattern

    (a:wordnet_person)-[w:isAffiliatedTo]->(b:wordnet_person)
        -[v:wasBornIn]->(c:port_settlement_in_USA)
        -[x:owns]->(d:wordnet_artifact)
        -[y:isConnectedTo]->(e:wordnet_artifact)
        -[z:isConnectedTo]->(f:Resource)

is **selective but correlated**, so the independence-model estimator
mispredicts it badly (the paper selected it by misprediction factor).

Construction (scaled; see ``YagoConfig``):

* few settlements; only a subset *own* an artifact;
* persons born in **non-owning** settlements are celebrities with many
  incoming affiliations, persons born in owning settlements have exactly one
  — global ``(:person)-[:isAffiliatedTo]->(:person)`` statistics cannot see
  this, so the planner underestimates the person side and the natural
  baseline plan explodes there (the paper's 42.7M-row intermediate,
  DESIGN.md §3.3);
* owned artifacts connect to a thin chain of hub artifacts (small y/z
  fan-out) while a large artifact *core* carries dense ``isConnectedTo``
  noise, so the artifact side is *over*estimated and avoided by the planner;
* every node carries the universal ``Resource`` label, exactly like YAGO
  (the paper must use it for the pattern's last node).

The resulting shape matches Table 10: Sub1 < Full < Manual ≪ Baseline, with
max intermediate cardinality tracking runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.database import GraphDatabase

FULL_PATTERN = (
    "(:wordnet_person)-[:isAffiliatedTo]->(:wordnet_person)"
    "-[:wasBornIn]->(:port_settlement_in_USA)"
    "-[:owns]->(:wordnet_artifact)"
    "-[:isConnectedTo]->(:wordnet_artifact)"
    "-[:isConnectedTo]->(:Resource)"
)

FULL_QUERY = (
    "MATCH (a:wordnet_person)-[w:isAffiliatedTo]->(b:wordnet_person)"
    "-[v:wasBornIn]->(c:port_settlement_in_USA)"
    "-[x:owns]->(d:wordnet_artifact)"
    "-[y:isConnectedTo]->(e:wordnet_artifact)"
    "-[z:isConnectedTo]->(f:Resource) RETURN *"
)

SUB_PATTERNS = {
    # Table 9's three length-3 sub-patterns.
    "Sub1": (
        "(:wordnet_person)-[:isAffiliatedTo]->(:wordnet_person)"
        "-[:wasBornIn]->(:port_settlement_in_USA)-[:owns]->(:wordnet_artifact)"
    ),
    "Sub2": (
        "(:wordnet_person)-[:wasBornIn]->(:port_settlement_in_USA)"
        "-[:owns]->(:wordnet_artifact)-[:isConnectedTo]->(:wordnet_artifact)"
    ),
    "Sub3": (
        "(:port_settlement_in_USA)-[:owns]->(:wordnet_artifact)"
        "-[:isConnectedTo]->(:wordnet_artifact)-[:isConnectedTo]->(:Resource)"
    ),
}

MANUAL_CHAIN = ("c", ("x", "y", "z", "v", "w"))
"""The paper's hand-ordered Manual plan: anchor on the settlement scan, walk
the thin artifact chain, then pull in the person side (§7.3, Figure 10)."""


@dataclass
class YagoConfig:
    """Scaled structure knobs (paper-scale in comments)."""

    settlements: int = 23  # c-scan 69 in the paper
    owning_settlements: int = 7  # owns-edges 7 in the paper
    persons: int = 12_000
    born_per_owning: int = 2
    born_per_other: int = 25
    celebrity_in_affiliations: int = 300
    hub_artifacts_per_owned: int = 5
    hub_pool: int = 50
    targets_per_hub: int = 12
    core_artifacts: int = 500
    core_noise_edges: int = 18_000
    junk_settlements: int = 30
    junk_owned_per_settlement: int = 300
    seed: int = 99


@dataclass
class YagoDataset:
    config: YagoConfig
    settlements: list[int] = field(default_factory=list)
    owning: list[int] = field(default_factory=list)
    owned_artifacts: list[int] = field(default_factory=list)
    hubs: list[int] = field(default_factory=list)
    owning_born_rels: list[int] = field(default_factory=list)
    """The affiliation rels feeding the full pattern (maintenance anchor)."""

    expected_full_cardinality: int = 0
    expected_sub1_cardinality: int = 0
    node_count: int = 0
    relationship_count: int = 0


def generate_yago(db: GraphDatabase, config: YagoConfig | None = None) -> YagoDataset:
    """Populate ``db`` with the YAGO-like dataset (bulk import)."""
    config = config or YagoConfig()
    if len(db.indexes) > 0:
        raise ValueError("generate datasets before creating indexes")
    rng = random.Random(config.seed)
    store = db.store
    resource = db.label("Resource")
    person = db.label("wordnet_person")
    settlement = db.label("port_settlement_in_USA")
    artifact = db.label("wordnet_artifact")
    affiliated = db.relationship_type("isAffiliatedTo")
    born_in = db.relationship_type("wasBornIn")
    owns = db.relationship_type("owns")
    connected = db.relationship_type("isConnectedTo")
    data = YagoDataset(config=config)

    data.settlements = [
        store.create_node([settlement, resource]) for _ in range(config.settlements)
    ]
    data.owning = data.settlements[: config.owning_settlements]

    persons = [store.create_node([person, resource]) for _ in range(config.persons)]
    person_pool = list(persons)

    # Born persons: celebrities come from non-owning settlements only.
    celebrity_count = 0
    for index, place in enumerate(data.settlements):
        is_owning = index < config.owning_settlements
        count = config.born_per_owning if is_owning else config.born_per_other
        for _ in range(count):
            born = person_pool.pop()
            store.create_relationship(born, place, born_in)
            if is_owning:
                fan = rng.choice(persons)
                while fan == born:
                    fan = rng.choice(persons)
                data.owning_born_rels.append(
                    store.create_relationship(fan, born, affiliated)
                )
            else:
                celebrity_count += 1
                for _ in range(config.celebrity_in_affiliations):
                    fan = rng.choice(persons)
                    while fan == born:
                        fan = rng.choice(persons)
                    store.create_relationship(fan, born, affiliated)

    # Artifact side: a thin owned chain plus a dense, unreachable core.
    data.hubs = [
        store.create_node([artifact, resource]) for _ in range(config.hub_pool)
    ]
    core = [
        store.create_node([artifact, resource])
        for _ in range(config.core_artifacts)
    ]
    hub_targets: dict[int, list[int]] = {}
    for hub in data.hubs:
        hub_targets[hub] = [
            rng.choice(core) for _ in range(config.targets_per_hub)
        ]
        for target in hub_targets[hub]:
            store.create_relationship(hub, target, connected)
    for place in data.owning:
        owned = store.create_node([artifact, resource])
        data.owned_artifacts.append(owned)
        store.create_relationship(place, owned, owns)
        for hub in rng.sample(data.hubs, config.hub_artifacts_per_owned):
            store.create_relationship(owned, hub, connected)

    # Junk owners: extra settlements owning piles of never-connected
    # artifacts. They have no born persons, so they add nothing to the
    # result, but they blow up both the actual and the estimated fan-out of
    # the owns step — which is what pushes the cost-based baseline onto the
    # (under-estimated, actually explosive) person side, the paper's bad
    # baseline plan.
    for _ in range(config.junk_settlements):
        junk_place = store.create_node([settlement, resource])
        data.settlements.append(junk_place)
        for _ in range(config.junk_owned_per_settlement):
            junk_artifact = store.create_node([artifact, resource])
            store.create_relationship(junk_place, junk_artifact, owns)

    # Dense isConnectedTo noise inside the core (never reachable from an
    # owned artifact in ≤ 2 hops starting at a hub): core targets have no
    # outgoing noise toward the owned chain, they only link core → core.
    core_sources = core[: max(1, len(core) // 2)]
    core_sinks = core[max(1, len(core) // 2) :]
    for _ in range(config.core_noise_edges):
        store.create_relationship(
            rng.choice(core_sources), rng.choice(core_sinks), connected
        )

    per_owning_chain = config.hub_artifacts_per_owned * config.targets_per_hub
    data.expected_sub1_cardinality = (
        config.owning_settlements * config.born_per_owning
    )
    data.expected_full_cardinality = (
        data.expected_sub1_cardinality * per_owning_chain
    )
    data.node_count = store.statistics.node_count
    data.relationship_count = store.statistics.relationship_count
    return data
