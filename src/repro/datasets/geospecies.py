"""A GeoSpecies-like synthetic dataset (§6.4/§7.4 substitute).

The real GeoSpecies RDF dump is unavailable offline; this generator
synthesizes the structure the paper's §7.4 experiment depends on: a
bipartite species/location graph queried with the diamond pattern

    (a:species_concept)-[x:is_expected_in]->(b:Resource)
        <-[y:was_observed_in]-(c:species_concept)-[z:is_expected_in]->(d:Resource)

whose *result set is its own largest intermediate state*: every relationship
in the pattern fans out, nothing narrows, so no plan — path-indexed or not —
can skip work. This is the paper's negative result: Full ≈ Sub ≈ Baseline
(Table 11), demonstrating that path indexes pay off by avoiding large
intermediates, not by reading results faster.

Like GeoSpecies, location nodes carry only the universal ``Resource`` label
(the dataset "does not have a singular label for this type of node", §7.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.database import GraphDatabase

FULL_PATTERN = (
    "(:species_concept)-[:is_expected_in]->(:Resource)"
    "<-[:was_observed_in]-(:species_concept)-[:is_expected_in]->(:Resource)"
)

SUB_PATTERN = "(:species_concept)-[:is_expected_in]->(:Resource)"

FULL_QUERY = (
    "MATCH (a:species_concept)-[x:is_expected_in]->(b:Resource)"
    "<-[y:was_observed_in]-(c:species_concept)-[z:is_expected_in]->(d:Resource)"
    " RETURN *"
)


@dataclass
class GeoSpeciesConfig:
    """Scaled knobs; paper: 225 093 nodes, 1 542 463 rels, result 334 126."""

    species: int = 400
    locations: int = 100
    expected_per_species: int = 3
    observed_per_species: int = 1
    seed: int = 17


@dataclass
class GeoSpeciesDataset:
    config: GeoSpeciesConfig
    species: list[int] = field(default_factory=list)
    locations: list[int] = field(default_factory=list)
    expected_rels: list[int] = field(default_factory=list)
    node_count: int = 0
    relationship_count: int = 0


def generate_geospecies(
    db: GraphDatabase, config: GeoSpeciesConfig | None = None
) -> GeoSpeciesDataset:
    """Populate ``db`` with the GeoSpecies-like dataset (bulk import)."""
    config = config or GeoSpeciesConfig()
    if len(db.indexes) > 0:
        raise ValueError("generate datasets before creating indexes")
    rng = random.Random(config.seed)
    store = db.store
    resource = db.label("Resource")
    species_label = db.label("species_concept")
    expected = db.relationship_type("is_expected_in")
    observed = db.relationship_type("was_observed_in")
    data = GeoSpeciesDataset(config=config)

    data.locations = [store.create_node([resource]) for _ in range(config.locations)]
    for _ in range(config.species):
        creature = store.create_node([species_label, resource])
        data.species.append(creature)
        for place in rng.sample(
            data.locations, min(config.expected_per_species, len(data.locations))
        ):
            data.expected_rels.append(
                store.create_relationship(creature, place, expected)
            )
        for place in rng.sample(
            data.locations, min(config.observed_per_species, len(data.locations))
        ):
            store.create_relationship(creature, place, observed)

    data.node_count = store.statistics.node_count
    data.relationship_count = store.statistics.relationship_count
    return data
