"""The correlated synthetic dataset (§6.4, first dataset; §7.1 experiments).

The paper connects 25 000 *hidden paths*

    (a:A)-[w:X]->(b:A)-[x:X]->(c:A)-[y:Y]->(d:B)-[z:X]->(e:A)

and then adds millions of noise relationships "strategically ... to create a
very selective pattern": the number of full-pattern occurrences stays exactly
at 25 000 while single-step sub-patterns explode (Table 2: Sub6 has 6 299 500
occurrences). We reproduce that structure at a configurable scale with a
provably non-polluting noise construction:

* ``paths`` hidden paths contribute the only occurrences of the full pattern
  and of every Y-containing multi-step sub-pattern that starts with an
  X-step into the Y-source (Full, Sub1, Sub2, Sub4, Sub8 all = ``paths``);
* **X-noise**: ``noise_factor × paths`` extra ``(:A)-[:X]->(:A)``
  relationships laid as *gadgets* over dedicated decoy A-nodes: each gadget
  is a fresh triple ``u → h → v`` with 4 parallel X relationships on each
  hop, contributing 8 edges and exactly 16 two-step chains — reproducing the
  paper's Sub3 ≈ 2 × Sub6 ratio exactly (Table 2: 12 524 000 ≈ 2 × 6 299 500).
  Decoys carry no Y relationships, so no new Full/Sub1/Sub2/Sub4 occurrence
  can ever arise; Sub6 grows to ``2·paths + x_noise`` and Sub3 to
  ``paths + 2·x_noise``;
* **Y-noise**: ``noise_factor × paths`` extra ``(:A)-[:Y]->(:B)``
  relationships from hidden-path *a*-nodes (which have no incoming X, so
  Sub1/Sub2/Sub4 stay clean) onto hidden-path *d*-nodes (whose outgoing X
  makes Sub5 grow alongside Sub7, as in the paper).

Deviation from the paper: the X-noise lives on extra decoy nodes instead of
being threaded through the path nodes themselves — this makes the
zero-pollution property provable and testable; all reported cardinality
*ratios* are preserved (DESIGN.md §3.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.database import GraphDatabase

FULL_PATTERN = "(:A)-[:X]->(:A)-[:X]->(:A)-[:Y]->(:B)-[:X]->(:A)"
FULL_QUERY = (
    "MATCH (a:A)-[w:X]->(b:A)-[x:X]->(c:A)-[y:Y]->(d:B)-[z:X]->(e:A) RETURN *"
)

SUB_PATTERNS = {
    # Table 2's eight indexable sub-patterns, in the paper's order.
    "Sub1": "(:A)-[:X]->(:A)-[:X]->(:A)-[:Y]->(:B)",
    "Sub2": "(:A)-[:X]->(:A)-[:Y]->(:B)-[:X]->(:A)",
    "Sub3": "(:A)-[:X]->(:A)-[:X]->(:A)",
    "Sub4": "(:A)-[:X]->(:A)-[:Y]->(:B)",
    "Sub5": "(:A)-[:Y]->(:B)-[:X]->(:A)",
    "Sub6": "(:A)-[:X]->(:A)",
    "Sub7": "(:A)-[:Y]->(:B)",
    "Sub8": "(:B)-[:X]->(:A)",
}


@dataclass
class CorrelatedConfig:
    """Scale knobs; paper values: paths=25_000, noise_factor≈250."""

    paths: int = 2_500
    noise_factor: int = 25
    seed: int = 42

    @property
    def x_noise(self) -> int:
        """X-noise edges, rounded down to whole 8-edge gadgets."""
        return (self.noise_factor * self.paths) // 8 * 8

    @property
    def y_noise(self) -> int:
        return self.noise_factor * self.paths


@dataclass
class CorrelatedDataset:
    """Generated data plus the handles the experiments need."""

    config: CorrelatedConfig
    a_nodes: list[int] = field(default_factory=list)
    b_nodes: list[int] = field(default_factory=list)
    c_nodes: list[int] = field(default_factory=list)
    d_nodes: list[int] = field(default_factory=list)
    e_nodes: list[int] = field(default_factory=list)
    decoy_nodes: list[int] = field(default_factory=list)
    y_rels: list[int] = field(default_factory=list)
    """The hidden paths' Y relationships (§7.1.3 deletes/re-adds one)."""

    node_count: int = 0
    relationship_count: int = 0

    def expected_cardinalities(self) -> dict[str, int]:
        """Exact pattern cardinalities implied by the construction."""
        paths = self.config.paths
        x_noise = self.config.x_noise
        y_noise = self.config.y_noise
        return {
            "Full": paths,
            "Sub1": paths,
            "Sub2": paths,
            "Sub3": paths + 2 * x_noise,
            "Sub4": paths,
            "Sub5": paths + y_noise,
            "Sub6": 2 * paths + x_noise,
            "Sub7": paths + y_noise,
            "Sub8": paths,
        }


def generate_correlated(
    db: GraphDatabase, config: CorrelatedConfig | None = None
) -> CorrelatedDataset:
    """Populate ``db`` with the correlated dataset (bulk import, no indexes
    may exist yet)."""
    config = config or CorrelatedConfig()
    if len(db.indexes) > 0:
        raise ValueError("generate datasets before creating indexes")
    rng = random.Random(config.seed)
    store = db.store
    label_a = db.label("A")
    label_b = db.label("B")
    type_x = db.relationship_type("X")
    type_y = db.relationship_type("Y")
    data = CorrelatedDataset(config=config)

    for _ in range(config.paths):
        a = store.create_node([label_a])
        b = store.create_node([label_a])
        c = store.create_node([label_a])
        d = store.create_node([label_b])
        e = store.create_node([label_a])
        store.create_relationship(a, b, type_x)
        store.create_relationship(b, c, type_x)
        data.y_rels.append(store.create_relationship(c, d, type_y))
        store.create_relationship(d, e, type_x)
        data.a_nodes.append(a)
        data.b_nodes.append(b)
        data.c_nodes.append(c)
        data.d_nodes.append(d)
        data.e_nodes.append(e)

    # X-noise gadgets: u =4×X=> h =4×X=> v on fresh decoy A-nodes. Each
    # gadget adds 8 Sub6 occurrences and 16 Sub3 occurrences (ratio 2).
    for _ in range(config.x_noise // 8):
        u = store.create_node([label_a])
        h = store.create_node([label_a])
        v = store.create_node([label_a])
        data.decoy_nodes.extend((u, h, v))
        for _ in range(4):
            store.create_relationship(u, h, type_x)
            store.create_relationship(h, v, type_x)

    # Y-noise: a-nodes (no incoming X) onto d-nodes (outgoing X present).
    for _ in range(config.y_noise):
        store.create_relationship(
            rng.choice(data.a_nodes), rng.choice(data.d_nodes), type_y
        )

    data.node_count = store.statistics.node_count
    data.relationship_count = store.statistics.relationship_count
    return data
