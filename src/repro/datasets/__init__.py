"""Dataset generators reproducing the paper's four workloads (§6.4).

Each generator is a scaled synthetic stand-in that preserves the structural
properties the evaluation depends on (full-pattern vs. sub-pattern
cardinality ratios, intermediate-state blow-ups, correlation vs.
independence). See DESIGN.md §3 for the substitution rationale and the
per-generator docstrings for the exact construction.
"""

from repro.datasets.correlated import CorrelatedConfig, generate_correlated
from repro.datasets.independent import IndependentConfig, generate_independent
from repro.datasets.yago import YagoConfig, generate_yago
from repro.datasets.geospecies import GeoSpeciesConfig, generate_geospecies

__all__ = [
    "CorrelatedConfig",
    "GeoSpeciesConfig",
    "IndependentConfig",
    "YagoConfig",
    "generate_correlated",
    "generate_geospecies",
    "generate_independent",
    "generate_yago",
]
