"""Exception hierarchy for the pathindex-repro database engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one type. Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """A record store or the page cache was used incorrectly."""


class RecordNotFoundError(StorageError):
    """A node or relationship id does not exist (or was deleted)."""


class ConstraintViolationError(ReproError):
    """A graph invariant would be broken (e.g. deleting a connected node)."""


class TransactionError(ReproError):
    """Transaction lifecycle misuse (no active transaction, double close, ...)."""


class CypherSyntaxError(ReproError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CypherSemanticError(ReproError):
    """The query parsed but is semantically invalid (unknown variable, ...)."""


class PlannerError(ReproError):
    """The planner could not produce a plan (or a forced hint is unsatisfiable)."""


class PathIndexError(ReproError):
    """Path index misuse: bad pattern, duplicate index, unknown index, ..."""


class PatternSyntaxError(PathIndexError):
    """A path pattern string could not be parsed."""
