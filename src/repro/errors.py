"""Exception hierarchy for the pathindex-repro database engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one type. Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """A record store or the page cache was used incorrectly."""


class RecordNotFoundError(StorageError):
    """A node or relationship id does not exist (or was deleted)."""


class DurabilityError(StorageError):
    """The write-ahead log or a checkpoint is malformed or was misused."""


class ConstraintViolationError(ReproError):
    """A graph invariant would be broken (e.g. deleting a connected node)."""


class TransactionError(ReproError):
    """Transaction lifecycle misuse (no active transaction, double close, ...)."""


class CypherSyntaxError(ReproError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class CypherSemanticError(ReproError):
    """The query parsed but is semantically invalid (unknown variable, ...)."""


class PlannerError(ReproError):
    """The planner could not produce a plan (or a forced hint is unsatisfiable)."""


class PathIndexError(ReproError):
    """Path index misuse: bad pattern, duplicate index, unknown index, ..."""


class PatternSyntaxError(PathIndexError):
    """A path pattern string could not be parsed."""


class MemoryLimitExceeded(ReproError):
    """The process-wide memory pool could not satisfy a query's allocation.

    Raised when a query's memory charges exceed its grant *and* the pool has
    no free headroom left (spillable operators spill instead of raising; this
    error means even the non-spillable residue does not fit). The query that
    raises rolls back cleanly; other queries sharing the pool keep running.
    """

    def __init__(
        self,
        message: str = "memory limit exceeded",
        requested_bytes: int = 0,
        budget_bytes: int = 0,
    ) -> None:
        super().__init__(message)
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes


class ProtocolError(ReproError):
    """The network wire protocol was violated (malformed frame, CRC mismatch,
    unknown message tag, out-of-order message, truncated stream).

    Raised by both ends: the server answers with a structured FAILURE frame
    and closes the session; the client raises it to the caller. A connection
    that raised ``ProtocolError`` is beyond recovery — reconnect.
    """


class AuthenticationError(ReproError):
    """The server rejected the session's HELLO credentials."""


class ServiceError(ReproError):
    """The concurrent query service was used incorrectly or is unavailable."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a query: the pending queue is full.

    Raised at submission time instead of queueing unboundedly; callers are
    expected to shed load or retry with backoff.
    """


class ServiceShutdownError(ServiceError):
    """A query was submitted to a service that has been shut down."""


class QueryCancelledError(ServiceError):
    """The query's cancellation token was triggered mid-execution."""

    def __init__(self, message: str = "query cancelled", rows_produced: int = 0):
        super().__init__(message)
        self.rows_produced = rows_produced


class QueryTimeoutError(QueryCancelledError, TimeoutError):
    """The query's deadline expired mid-execution.

    Also a builtin :class:`TimeoutError` so callers can use the idiomatic
    ``except TimeoutError`` regardless of which layer raised it.
    """

    def __init__(self, message: str = "query deadline exceeded", rows_produced: int = 0):
        super().__init__(message, rows_produced)


class ReplicationError(ServiceError):
    """The replication stream was violated or could not make progress
    (unexpected shipping frame, subscription to a non-durable server,
    catch-up failure)."""


class ReadOnlyReplicaError(ServiceError):
    """A write statement reached a read-only replica.

    The message names the leader address so clients (and the router) know
    where writes belong.
    """

    def __init__(self, message: str = "replica is read-only", leader: str = "") -> None:
        super().__init__(message)
        self.leader = leader


class StaleEpochError(ServiceError):
    """Traffic arrived from (or at) a leader whose epoch has been superseded.

    Raised when a fenced old leader is asked to accept a write, when a
    replica receives a WAL segment stamped with a lower epoch than the one
    it has persisted, or when a stale leader tries to ship to a promoted
    node. Retryable for clients: the router re-points the request at the
    current-epoch leader.
    """

    def __init__(
        self,
        message: str = "leader epoch has been superseded",
        epoch: int = 0,
        current_epoch: int = 0,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.current_epoch = current_epoch


class LeaderUnavailableError(ServiceError):
    """The router could not reach a writable leader for a relayed request.

    Structured and retryable: raised instead of hanging or surfacing a raw
    disconnect when the leader connection fails mid-request or no unfenced
    leader is currently known. Clients retry with backoff (the failover
    window) and the write lands once a replica has been promoted.
    """


class StalenessError(ServiceError):
    """A read demanded ``require_lsn`` freshness the server could not reach
    within its wait budget. Retryable: the same read succeeds once the
    replica catches up, or on a fresher endpoint (the router re-routes it).
    """

    def __init__(
        self,
        message: str = "replica has not applied the required LSN",
        require_lsn: int = 0,
        applied_lsn: int = 0,
    ) -> None:
        super().__init__(message)
        self.require_lsn = require_lsn
        self.applied_lsn = applied_lsn
