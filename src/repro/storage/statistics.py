"""Graph statistics consumed by the cardinality estimator.

Mirrors the counts Neo4j's counts store keeps and the planner's cost estimator
reads (paper §2.1.4/§2.2): total nodes, nodes per label, total relationships,
relationships per type, and the directional label/type combinations
``(:L)-[:T]->()`` and ``()-[:T]->(:L)``. These are maintained incrementally by
the statistics transaction applier, never recomputed by scanning.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional


class GraphStatistics:
    """Incrementally-maintained counts for cardinality estimation."""

    def __init__(self) -> None:
        self.node_count = 0
        self.relationship_count = 0
        self.nodes_by_label: Counter[int] = Counter()
        self.rels_by_type: Counter[int] = Counter()
        # (label_id, type_id) -> count of rels of that type starting at a node
        # with that label; and ending, respectively.
        self.rels_by_start_label_type: Counter[tuple[int, int]] = Counter()
        self.rels_by_type_end_label: Counter[tuple[int, int]] = Counter()

    def copy(self) -> "GraphStatistics":
        """An independent copy, published per commit LSN for snapshot
        readers (see GraphStore.publish_commit)."""
        clone = GraphStatistics()
        clone.node_count = self.node_count
        clone.relationship_count = self.relationship_count
        clone.nodes_by_label = Counter(self.nodes_by_label)
        clone.rels_by_type = Counter(self.rels_by_type)
        clone.rels_by_start_label_type = Counter(self.rels_by_start_label_type)
        clone.rels_by_type_end_label = Counter(self.rels_by_type_end_label)
        return clone

    # -- node lifecycle ----------------------------------------------------

    def node_added(self, labels: Iterable[int]) -> None:
        self.node_count += 1
        for label_id in labels:
            self.nodes_by_label[label_id] += 1

    def node_removed(self, labels: Iterable[int]) -> None:
        self.node_count -= 1
        for label_id in labels:
            self._dec(self.nodes_by_label, label_id)

    def label_added(self, label_id: int) -> None:
        self.nodes_by_label[label_id] += 1

    def label_removed(self, label_id: int) -> None:
        self._dec(self.nodes_by_label, label_id)

    # -- relationship lifecycle --------------------------------------------

    def relationship_added(
        self,
        type_id: int,
        start_labels: Iterable[int],
        end_labels: Iterable[int],
    ) -> None:
        self.relationship_count += 1
        self.rels_by_type[type_id] += 1
        for label_id in start_labels:
            self.rels_by_start_label_type[(label_id, type_id)] += 1
        for label_id in end_labels:
            self.rels_by_type_end_label[(type_id, label_id)] += 1

    def relationship_removed(
        self,
        type_id: int,
        start_labels: Iterable[int],
        end_labels: Iterable[int],
    ) -> None:
        self.relationship_count -= 1
        self._dec(self.rels_by_type, type_id)
        for label_id in start_labels:
            self._dec(self.rels_by_start_label_type, (label_id, type_id))
        for label_id in end_labels:
            self._dec(self.rels_by_type_end_label, (type_id, label_id))

    # -- queries used by the estimator ---------------------------------------

    def nodes_with_label(self, label_id: Optional[int]) -> int:
        """Count of nodes with ``label_id`` (all nodes when None)."""
        if label_id is None:
            return self.node_count
        return self.nodes_by_label.get(label_id, 0)

    def rels_with_type(self, type_id: Optional[int]) -> int:
        """Count of relationships with ``type_id`` (all when None)."""
        if type_id is None:
            return self.relationship_count
        return self.rels_by_type.get(type_id, 0)

    def rels_with_start_label_and_type(
        self, label_id: Optional[int], type_id: Optional[int]
    ) -> int:
        """Count of ``(:label)-[:type]->()`` relationships."""
        if label_id is None:
            return self.rels_with_type(type_id)
        if type_id is None:
            # list() so a planner reading the *live* stats in latest mode
            # never races a writer's resize of the counter dict.
            return sum(
                count
                for (lbl, _), count in list(self.rels_by_start_label_type.items())
                if lbl == label_id
            )
        return self.rels_by_start_label_type.get((label_id, type_id), 0)

    def rels_with_type_and_end_label(
        self, type_id: Optional[int], label_id: Optional[int]
    ) -> int:
        """Count of ``()-[:type]->(:label)`` relationships."""
        if label_id is None:
            return self.rels_with_type(type_id)
        if type_id is None:
            return sum(
                count
                for (_, lbl), count in list(self.rels_by_type_end_label.items())
                if lbl == label_id
            )
        return self.rels_by_type_end_label.get((type_id, label_id), 0)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _dec(counter: Counter, key) -> None:
        counter[key] -= 1
        if counter[key] <= 0:
            del counter[key]
