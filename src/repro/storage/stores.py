"""Record stores: sequential, fixed-record-size files behind the page cache.

Each store is "a sequential block of memory that is mapped to a file on disk"
(paper §2.1.2). We model the file as a Python list indexed by record id, with a
free-list for id reuse, and report every record access to the page cache using
``record_id * record_size`` as the byte offset — the same mapping Neo4j's page
cache performs.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.pagecache import PageCache

R = TypeVar("R")


class RecordStore(Generic[R]):
    """A fixed-record-size store with free-list id allocation.

    ``record_size`` is the on-disk size per record; it drives both the page
    mapping and :meth:`size_on_disk`.
    """

    def __init__(self, name: str, record_size: int, page_cache: PageCache) -> None:
        self.name = name
        self.record_size = record_size
        self._page_cache = page_cache
        page_cache.register_file(name)
        self._records: list[Optional[R]] = []
        self._free_ids: list[int] = []
        self._in_use = 0

    def allocate_id(self, requested: Optional[int] = None) -> int:
        """Reserve an id (reusing freed ids first, like Neo4j's id files).

        ``requested`` forces a specific id — WAL replay uses this so node
        and relationship ids come out exactly as logged regardless of the
        free-list order the restored store happens to have. The requested
        slot must be unoccupied; ids skipped over by extending the file
        become free ids.
        """
        if requested is not None:
            if requested < 0:
                raise StorageError(f"{self.name}: invalid id {requested}")
            if requested < len(self._records):
                if self._records[requested] is not None:
                    raise StorageError(
                        f"{self.name}: id {requested} is already in use"
                    )
                try:
                    self._free_ids.remove(requested)
                except ValueError:
                    raise StorageError(
                        f"{self.name}: id {requested} is already allocated"
                    ) from None
                return requested
            for skipped in range(len(self._records), requested):
                self._free_ids.append(skipped)
            self._records.extend([None] * (requested + 1 - len(self._records)))
            return requested
        if self._free_ids:
            return self._free_ids.pop()
        self._records.append(None)
        return len(self._records) - 1

    def write(self, record_id: int, record: R) -> None:
        """Write ``record`` at ``record_id`` (which must have been allocated)."""
        if record_id < 0 or record_id >= len(self._records):
            raise StorageError(
                f"{self.name}: write to unallocated id {record_id}"
            )
        self._touch(record_id)
        if self._records[record_id] is None:
            self._in_use += 1
        self._records[record_id] = record

    def read(self, record_id: int) -> R:
        """Read the record at ``record_id``; raises if absent or freed."""
        record = self.try_read(record_id)
        if record is None:
            raise RecordNotFoundError(f"{self.name}: no record {record_id}")
        return record

    def try_read(self, record_id: int) -> Optional[R]:
        """Like :meth:`read` but returns None for missing records."""
        if record_id < 0 or record_id >= len(self._records):
            return None
        self._touch(record_id)
        return self._records[record_id]

    def free(self, record_id: int) -> None:
        """Delete the record and recycle its id."""
        if record_id < 0 or record_id >= len(self._records):
            raise RecordNotFoundError(f"{self.name}: no record {record_id}")
        if self._records[record_id] is None:
            raise RecordNotFoundError(f"{self.name}: record {record_id} already freed")
        self._touch(record_id)
        self._records[record_id] = None
        self._in_use -= 1
        self._free_ids.append(record_id)

    def exists(self, record_id: int) -> bool:
        return (
            0 <= record_id < len(self._records)
            and self._records[record_id] is not None
        )

    def ids_in_use(self) -> Iterator[int]:
        """All live record ids in id order (a sequential store scan).

        The sweep accounts pages like a real sequential read: each page is
        touched once, and contiguous pages are reported to the cache in
        runs (one lock acquisition per run, flushed when a gap breaks the
        run or the consumer stops). Point reads keep per-record touches.
        """
        page_size = self._page_cache.page_size
        record_size = self.record_size
        touch_run = self._page_cache.touch_run
        run_start = -1
        run_end = -1  # exclusive
        try:
            for record_id, record in enumerate(self._records):
                if record is None:
                    continue
                page_id = record_id * record_size // page_size
                if page_id >= run_end:
                    if page_id == run_end:
                        run_end += 1
                    else:
                        if run_start >= 0:
                            touch_run(self.name, run_start, run_end - run_start)
                        run_start = page_id
                        run_end = page_id + 1
                yield record_id
        finally:
            if run_start >= 0:
                touch_run(self.name, run_start, run_end - run_start)

    def __len__(self) -> int:
        return self._in_use

    @property
    def highest_id(self) -> int:
        """One past the largest id ever allocated (the file's record count)."""
        return len(self._records)

    def size_on_disk(self) -> int:
        """Bytes of the backing file: allocated records × record size."""
        return len(self._records) * self.record_size

    def _touch(self, record_id: int) -> None:
        self._page_cache.touch(self.name, record_id * self.record_size)

    # -- snapshot support -------------------------------------------------

    def dump_records(self) -> dict[int, R]:
        """All live records by id (snapshot save; no page accounting)."""
        return {
            record_id: record
            for record_id, record in enumerate(self._records)
            if record is not None
        }

    def restore_records(self, records: dict[int, R]) -> None:
        """Replace the store's contents wholesale (snapshot load).

        Record ids are preserved exactly; gaps become free ids, largest
        first so future allocation reuses low ids the way a freshly
        replayed store would.
        """
        highest = max(records) if records else -1
        self._records = [records.get(record_id) for record_id in range(highest + 1)]
        self._free_ids = sorted(
            (
                record_id
                for record_id in range(highest + 1)
                if record_id not in records
            ),
            reverse=True,
        )
        self._in_use = len(records)


class TokenStore:
    """Bidirectional name↔id registry for labels, relationship types and
    property keys (Neo4j's token stores)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []

    def get_or_create(self, token: str) -> int:
        """Return the id for ``token``, allocating one if needed."""
        token_id = self._name_to_id.get(token)
        if token_id is None:
            token_id = len(self._id_to_name)
            self._name_to_id[token] = token_id
            self._id_to_name.append(token)
        return token_id

    def id_of(self, token: str) -> Optional[int]:
        """The id for ``token`` or None if it was never created."""
        return self._name_to_id.get(token)

    def name_of(self, token_id: int) -> str:
        if 0 <= token_id < len(self._id_to_name):
            return self._id_to_name[token_id]
        raise StorageError(f"{self.name}: unknown token id {token_id}")

    def all_tokens(self) -> list[str]:
        return list(self._id_to_name)

    def restore_tokens(self, tokens: list[str]) -> None:
        """Replace the registry wholesale (snapshot load)."""
        self._id_to_name = list(tokens)
        self._name_to_id = {name: i for i, name in enumerate(tokens)}

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, token: str) -> bool:
        return token in self._name_to_id
