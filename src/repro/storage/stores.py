"""Record stores: sequential, fixed-record-size files behind the page cache.

Each store is "a sequential block of memory that is mapped to a file on disk"
(paper §2.1.2). We model the file as a Python list indexed by record id, with a
free-list for id reuse, and report every record access to the page cache using
``record_id * record_size`` as the byte offset — the same mapping Neo4j's page
cache performs.

Since the MVCC change every slot holds a *version* ``(lsn, record)`` tuple
rather than the bare record: ``record`` is ``None`` for a tombstone (the id
was freed at ``lsn``), and the slot itself is ``None`` only for never-
allocated gaps. Overwritten versions move into a per-id history chain so a
reader pinned at an older LSN still resolves the record it could see at
acquire time — without taking any lock. See ``storage/versions.py`` for the
publish protocol and DESIGN.md §"MVCC snapshots" for the layout.
"""

from __future__ import annotations

import copy
from typing import Generic, Iterator, Optional, TypeVar

from repro.errors import RecordNotFoundError, StorageError
from repro.storage.pagecache import PageCache
from repro.storage.versions import PENDING, VersionClock

R = TypeVar("R")


class RecordStore(Generic[R]):
    """A fixed-record-size store with free-list id allocation and per-record
    version chains.

    ``record_size`` is the on-disk size per record; it drives both the page
    mapping and :meth:`size_on_disk`. ``clock`` is the database-wide
    :class:`VersionClock`; when omitted (direct construction in tests) the
    store gets a private clock and behaves exactly like the pre-MVCC store
    for latest-mode reads.

    Write protocol (writer holds the database write lock):

    1. append the current version to the id's history chain,
    2. *then* replace the current slot with a ``(PENDING, record)`` version.

    A lock-free reader that races step 2 either sees the old current or the
    new one; either way every version it may need is already reachable.
    :meth:`publish` later restamps the PENDING versions with the commit LSN
    before the clock's published watermark advances, so no snapshot can be
    pinned between the two.
    """

    def __init__(
        self,
        name: str,
        record_size: int,
        page_cache: PageCache,
        clock: Optional[VersionClock] = None,
    ) -> None:
        self.name = name
        self.record_size = record_size
        self._page_cache = page_cache
        page_cache.register_file(name)
        self.clock = clock if clock is not None else VersionClock()
        # Slot: None = never allocated; (lsn, record) = current version;
        # (lsn, None) = tombstone (freed at lsn).
        self._records: list[Optional[tuple]] = []
        self._history: dict[int, list] = {}
        self._pending: set[int] = set()
        self._free_ids: list[int] = []
        self._in_use = 0

    def allocate_id(self, requested: Optional[int] = None) -> int:
        """Reserve an id (reusing freed ids first, like Neo4j's id files).

        ``requested`` forces a specific id — WAL replay uses this so node
        and relationship ids come out exactly as logged regardless of the
        free-list order the restored store happens to have. The requested
        slot must be unoccupied; ids skipped over by extending the file
        become free ids.
        """
        if requested is not None:
            if requested < 0:
                raise StorageError(f"{self.name}: invalid id {requested}")
            if requested < len(self._records):
                slot = self._records[requested]
                if slot is not None and slot[1] is not None:
                    raise StorageError(
                        f"{self.name}: id {requested} is already in use"
                    )
                try:
                    self._free_ids.remove(requested)
                except ValueError:
                    raise StorageError(
                        f"{self.name}: id {requested} is already allocated"
                    ) from None
                return requested
            for skipped in range(len(self._records), requested):
                self._free_ids.append(skipped)
            self._records.extend([None] * (requested + 1 - len(self._records)))
            return requested
        if self._free_ids:
            return self._free_ids.pop()
        self._records.append(None)
        return len(self._records) - 1

    def write(self, record_id: int, record: R) -> None:
        """Write ``record`` at ``record_id`` (which must have been allocated).

        The record object must be private to the writer: either freshly
        created or obtained through :meth:`read_for_update`. Mutating an
        object that is already stored would silently rewrite history.
        """
        if record_id < 0 or record_id >= len(self._records):
            raise StorageError(
                f"{self.name}: write to unallocated id {record_id}"
            )
        self._touch(record_id)
        current = self._records[record_id]
        if current is None or current[1] is None:
            self._in_use += 1
        if current is not None:
            # History first, then swap: a racing reader must always find
            # every version it could legally need.
            history = self._history.get(record_id)
            if history is None:
                self._history[record_id] = history = []
            history.append(current)
        self._records[record_id] = (PENDING, record)
        self._pending.add(record_id)

    def read(self, record_id: int) -> R:
        """Read the record at ``record_id``; raises if absent or freed."""
        record = self.try_read(record_id)
        if record is None:
            raise RecordNotFoundError(f"{self.name}: no record {record_id}")
        return record

    def try_read(self, record_id: int) -> Optional[R]:
        """Like :meth:`read` but returns None for missing records.

        Resolves against the thread's ambient snapshot when one is
        installed; otherwise returns the newest version (including the
        writer's own pending work).
        """
        if record_id < 0 or record_id >= len(self._records):
            return None
        slot = self._records[record_id]
        if slot is None:
            return None
        self._touch(record_id)
        lsn = self.clock.reading_lsn()
        if lsn is None:
            return slot[1]
        if slot[0] <= lsn:
            return slot[1]
        history = self._history.get(record_id)
        if history is not None:
            for version_lsn, record in reversed(history):
                if version_lsn <= lsn:
                    return record
        return None

    def read_for_update(self, record_id: int) -> R:
        """A private copy of the latest record, safe for the writer to
        mutate and hand back to :meth:`write`."""
        if 0 <= record_id < len(self._records):
            slot = self._records[record_id]
            if slot is not None and slot[1] is not None:
                self._touch(record_id)
                return copy.copy(slot[1])
        raise RecordNotFoundError(f"{self.name}: no record {record_id}")

    def free(self, record_id: int) -> None:
        """Delete the record and recycle its id (tombstone version)."""
        if record_id < 0 or record_id >= len(self._records):
            raise RecordNotFoundError(f"{self.name}: no record {record_id}")
        current = self._records[record_id]
        if current is None or current[1] is None:
            raise RecordNotFoundError(f"{self.name}: record {record_id} already freed")
        self._touch(record_id)
        history = self._history.get(record_id)
        if history is None:
            self._history[record_id] = history = []
        history.append(current)
        self._records[record_id] = (PENDING, None)
        self._pending.add(record_id)
        self._in_use -= 1
        self._free_ids.append(record_id)

    def exists(self, record_id: int) -> bool:
        if record_id < 0 or record_id >= len(self._records):
            return False
        slot = self._records[record_id]
        if slot is None:
            return False
        lsn = self.clock.reading_lsn()
        if lsn is None:
            return slot[1] is not None
        if slot[0] <= lsn:
            return slot[1] is not None
        history = self._history.get(record_id)
        if history is not None:
            for version_lsn, record in reversed(history):
                if version_lsn <= lsn:
                    return record is not None
        return False

    def ids_in_use(self) -> Iterator[int]:
        """All live record ids in id order (a sequential store scan).

        The sweep accounts pages like a real sequential read: each page is
        touched once, and contiguous pages are reported to the cache in
        runs (one lock acquisition per run, flushed when a gap breaks the
        run or the consumer stops). Point reads keep per-record touches.
        """
        page_size = self._page_cache.page_size
        record_size = self.record_size
        touch_run = self._page_cache.touch_run
        lsn = self.clock.reading_lsn()
        history = self._history
        run_start = -1
        run_end = -1  # exclusive
        try:
            for record_id, slot in enumerate(self._records):
                if slot is None:
                    continue
                if lsn is None:
                    if slot[1] is None:
                        continue
                elif slot[0] <= lsn:
                    if slot[1] is None:
                        continue
                else:
                    chain = history.get(record_id)
                    record = None
                    if chain is not None:
                        for version_lsn, candidate in reversed(chain):
                            if version_lsn <= lsn:
                                record = candidate
                                break
                    if record is None:
                        continue
                page_id = record_id * record_size // page_size
                if page_id >= run_end:
                    if page_id == run_end:
                        run_end += 1
                    else:
                        if run_start >= 0:
                            touch_run(self.name, run_start, run_end - run_start)
                        run_start = page_id
                        run_end = page_id + 1
                yield record_id
        finally:
            if run_start >= 0:
                touch_run(self.name, run_start, run_end - run_start)

    def __len__(self) -> int:
        return self._in_use

    @property
    def highest_id(self) -> int:
        """One past the largest id ever allocated (the file's record count)."""
        return len(self._records)

    def size_on_disk(self) -> int:
        """Bytes of the backing file: allocated records × record size."""
        return len(self._records) * self.record_size

    def _touch(self, record_id: int) -> None:
        self._page_cache.touch(self.name, record_id * self.record_size)

    # -- MVCC publish / GC -------------------------------------------------

    def has_pending(self) -> bool:
        return bool(self._pending)

    def publish(self, lsn: int) -> None:
        """Restamp every PENDING version with the commit LSN.

        Pending versions in a history chain form a contiguous tail (they
        were appended after the last publish), so the restamp walks each
        chain backwards until it hits a stamped version.
        """
        if not self._pending:
            return
        for record_id in self._pending:
            history = self._history.get(record_id)
            if history is not None:
                for index in range(len(history) - 1, -1, -1):
                    if history[index][0] is not PENDING:
                        break
                    history[index] = (lsn, history[index][1])
            slot = self._records[record_id]
            if slot is not None and slot[0] is PENDING:
                self._records[record_id] = (lsn, slot[1])
        self._pending.clear()

    def collect_versions(self, cutoff: int) -> int:
        """Reclaim history unreachable by snapshots at or above ``cutoff``.

        For each id: if the *current* version is at or below the cutoff,
        every historic version is dead; otherwise keep the newest historic
        version at or below the cutoff plus everything newer. Runs without
        quiescing readers — replacement is a single dict store and any
        reader still holding the old list resolves correctly from it.
        Returns the number of versions reclaimed.
        """
        reclaimed = 0
        for record_id in list(self._history):
            history = self._history[record_id]
            slot = self._records[record_id]
            if slot is not None and slot[0] <= cutoff:
                reclaimed += len(history)
                del self._history[record_id]
                continue
            keep_from = len(history)
            for index in range(len(history) - 1, -1, -1):
                keep_from = index
                if history[index][0] <= cutoff:
                    break
            if keep_from > 0:
                self._history[record_id] = history[keep_from:]
                reclaimed += keep_from
        return reclaimed

    def version_count(self) -> int:
        """Historic (non-current) versions retained, for metrics."""
        return sum(len(chain) for chain in list(self._history.values()))

    # -- snapshot support -------------------------------------------------

    def dump_records(self) -> dict[int, R]:
        """All live records by id (snapshot save; no page accounting)."""
        return {
            record_id: slot[1]
            for record_id, slot in enumerate(self._records)
            if slot is not None and slot[1] is not None
        }

    def restore_records(self, records: dict[int, R]) -> None:
        """Replace the store's contents wholesale (snapshot load).

        Record ids are preserved exactly; gaps become free ids, largest
        first so future allocation reuses low ids the way a freshly
        replayed store would. Restored versions are stamped at LSN 0 —
        the base every later snapshot resolves to.
        """
        highest = max(records) if records else -1
        self._records = [
            (0, records[record_id]) if record_id in records else None
            for record_id in range(highest + 1)
        ]
        self._history = {}
        self._pending = set()
        self._free_ids = sorted(
            (
                record_id
                for record_id in range(highest + 1)
                if record_id not in records
            ),
            reverse=True,
        )
        self._in_use = len(records)


class TokenStore:
    """Bidirectional name↔id registry for labels, relationship types and
    property keys (Neo4j's token stores).

    Append-only, so it needs no versioning: a snapshot reader resolving a
    token created after its pin simply finds a label/type no visible
    record carries — a safe over-approximation.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._name_to_id: dict[str, int] = {}
        self._id_to_name: list[str] = []

    def get_or_create(self, token: str) -> int:
        """Return the id for ``token``, allocating one if needed."""
        token_id = self._name_to_id.get(token)
        if token_id is None:
            token_id = len(self._id_to_name)
            self._id_to_name.append(token)
            self._name_to_id[token] = token_id
        return token_id

    def id_of(self, token: str) -> Optional[int]:
        """The id for ``token`` or None if it was never created."""
        return self._name_to_id.get(token)

    def name_of(self, token_id: int) -> str:
        if 0 <= token_id < len(self._id_to_name):
            return self._id_to_name[token_id]
        raise StorageError(f"{self.name}: unknown token id {token_id}")

    def all_tokens(self) -> list[str]:
        return list(self._id_to_name)

    def restore_tokens(self, tokens: list[str]) -> None:
        """Replace the registry wholesale (snapshot load)."""
        self._id_to_name = list(tokens)
        self._name_to_id = {name: i for i, name in enumerate(tokens)}

    def __len__(self) -> int:
        return len(self._id_to_name)

    def __contains__(self, token: str) -> bool:
        return token in self._name_to_id
