"""Record types mirroring the Neo4j 3.5 store layout (paper §2.1.2, Figure 1).

Every record type knows its on-disk size so the stores can map record ids to
page offsets for the simulated page cache and report realistic store sizes.
The byte sizes match the fixed-size record formats of Neo4j 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NO_ID = -1
"""Sentinel for "no record" in record pointer fields (Neo4j uses -1 / 0xFF..)."""

NODE_RECORD_SIZE = 15
RELATIONSHIP_RECORD_SIZE = 34
PROPERTY_RECORD_SIZE = 41
RELATIONSHIP_GROUP_RECORD_SIZE = 32


@dataclass
class NodeRecord:
    """A node: pointers to its relationship chain, property chain and labels.

    ``dense`` mirrors Neo4j's dense-node flag: when set, ``first_rel`` points
    into the relationship *group* store instead of the relationship store.
    """

    id: int
    first_rel: int = NO_ID
    first_prop: int = NO_ID
    labels: frozenset[int] = field(default_factory=frozenset)
    dense: bool = False
    in_use: bool = True

    RECORD_SIZE = NODE_RECORD_SIZE


@dataclass
class RelationshipRecord:
    """A directed, typed relationship that doubles as two linked-list cells.

    The record participates in the relationship chain of its start node (via
    ``start_prev``/``start_next``) and of its end node (``end_prev``/
    ``end_next``), exactly as in Figure 1 of the paper.
    """

    id: int
    type_id: int
    start_node: int
    end_node: int
    first_prop: int = NO_ID
    start_prev: int = NO_ID
    start_next: int = NO_ID
    end_prev: int = NO_ID
    end_next: int = NO_ID
    in_use: bool = True

    RECORD_SIZE = RELATIONSHIP_RECORD_SIZE

    def chain_next(self, node_id: int) -> int:
        """Next relationship in ``node_id``'s chain (start- or end-side)."""
        if node_id == self.start_node:
            return self.start_next
        if node_id == self.end_node:
            return self.end_next
        raise ValueError(
            f"node {node_id} is not an endpoint of relationship {self.id}"
        )

    def other_node(self, node_id: int) -> int:
        """The endpoint opposite to ``node_id``. Loops return ``node_id``."""
        if node_id == self.start_node:
            return self.end_node
        if node_id == self.end_node:
            return self.start_node
        raise ValueError(
            f"node {node_id} is not an endpoint of relationship {self.id}"
        )


@dataclass
class PropertyRecord:
    """One key/value pair in an entity's property chain."""

    id: int
    key_id: int
    value: object
    prev_prop: int = NO_ID
    next_prop: int = NO_ID
    in_use: bool = True

    RECORD_SIZE = PROPERTY_RECORD_SIZE


@dataclass
class RelationshipGroupRecord:
    """Per-type relationship chain heads for a dense node.

    Dense nodes keep one group record per relationship type with three chain
    heads (outgoing, incoming, loops), allowing type-selective iteration
    without walking unrelated relationships (paper §2.1.2). Each chain head
    carries its length (``count_out``/``count_in``/``count_loop``), making
    filtered degree lookups on dense nodes O(1) instead of a chain walk —
    the same trick Neo4j plays with its group-degree cache.
    """

    id: int
    owning_node: int
    type_id: int
    next_group: int = NO_ID
    first_out: int = NO_ID
    first_in: int = NO_ID
    first_loop: int = NO_ID
    count_out: int = 0
    count_in: int = 0
    count_loop: int = 0
    in_use: bool = True

    RECORD_SIZE = RELATIONSHIP_GROUP_RECORD_SIZE
