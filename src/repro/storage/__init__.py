"""Storage substrate: page cache, record stores, graph store, statistics.

This package reproduces the Neo4j 3.5 storage layer described in §2.1.2 of the
paper (Figure 1): node records, relationship records chained into per-node
doubly-linked lists, relationship group records for dense nodes, and property
chains. All stores sit on a simulated :class:`~repro.storage.pagecache.PageCache`
so the paper's cold-vs-cached experiments are meaningful.
"""

from repro.storage.pagecache import PageCache, PageCacheStats
from repro.storage.records import (
    NO_ID,
    NodeRecord,
    PropertyRecord,
    RelationshipGroupRecord,
    RelationshipRecord,
)
from repro.storage.graphstore import Direction, GraphStore
from repro.storage.statistics import GraphStatistics

__all__ = [
    "Direction",
    "GraphStatistics",
    "GraphStore",
    "NO_ID",
    "NodeRecord",
    "PageCache",
    "PageCacheStats",
    "PropertyRecord",
    "RelationshipGroupRecord",
    "RelationshipRecord",
]
