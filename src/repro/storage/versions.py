"""MVCC primitives: snapshots, the version clock, and versioned maps.

The storage layer gives every committed transaction a monotonically
increasing **commit LSN** (the WAL sequence number when durability is on, a
private counter otherwise). Writers build new record versions *privately* —
stamped with the :data:`PENDING` sentinel — and publish them all at once at
commit by restamping them with the commit LSN and only then advancing the
clock's ``published`` watermark. Readers never lock anything:

* **Latest mode** (no ambient snapshot): reads return the newest version
  directly, including the writer's own unpublished work. This is what a
  writer transaction and single-threaded embedded use see.
* **Snapshot mode**: a reader holds a :class:`Snapshot` pinned at some LSN
  and resolves every record to the newest version whose LSN is ``<=`` that
  pin. Because publish stamps versions *before* advancing ``published``,
  and a snapshot's LSN is always a previously-advanced watermark, a reader
  can never observe a half-published commit.

Everything here relies on CPython's GIL for atomicity of single reference
assignments, ``list.append``, and dict get/set — there are deliberately no
locks on any read path. The only lock in the module is ``write_lock``,
which serializes writers with writers (and with maintenance such as
checkpoints, index DDL, and version GC).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Iterator, Optional

PENDING = float("inf")
"""Version stamp for not-yet-committed versions.

``PENDING`` compares greater than every real LSN, so snapshot readers
(``version_lsn <= snapshot_lsn``) skip in-flight versions for free, while
latest-mode readers (no comparison at all) see them — exactly the
visibility a writer wants for its own uncommitted work.
"""


class Snapshot:
    """A pinned read view: everything committed at ``lsn`` or earlier.

    Acquired from :meth:`VersionClock.acquire` (usually via
    ``GraphDatabase.snapshot()``) and released with
    :meth:`VersionClock.release`; while live it also pins version GC.
    ``partial_cache`` holds per-snapshot materializations for partial path
    indexes so snapshot readers never touch the shared B+ trees.
    """

    __slots__ = ("lsn", "token", "partial_cache")

    def __init__(self, lsn: int, token: int) -> None:
        self.lsn = lsn
        self.token = token
        self.partial_cache: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(lsn={self.lsn})"


class VersionClock:
    """The storage layer's commit clock and live-snapshot registry."""

    def __init__(self) -> None:
        self._published = 0
        self._live: dict[int, int] = {}  # snapshot token -> pinned lsn
        self._tokens = itertools.count(1)
        self._local = threading.local()
        self._folding = False
        # Writers serialize with writers (and with checkpoint/DDL/GC)
        # through this lock; readers never take it.
        self.write_lock = threading.RLock()

    # -- commit side -------------------------------------------------------

    @property
    def published(self) -> int:
        return self._published

    def next_lsn(self) -> int:
        """A fresh commit LSN for non-durable databases (caller holds the
        write lock, so published+1 cannot race another writer)."""
        return self._published + 1

    def publish(self, lsn: int) -> None:
        """Advance the published watermark to ``lsn`` (monotonic)."""
        if lsn > self._published:
            self._published = lsn

    def exclusive_writer(self):
        """Context manager serializing with writers (checkpoint, DDL, GC)."""
        return self.write_lock

    # -- read side ---------------------------------------------------------

    def acquire(self) -> Snapshot:
        """Pin a snapshot at the current published watermark. Lock-free."""
        snapshot = Snapshot(self._published, next(self._tokens))
        self._live[snapshot.token] = snapshot.lsn
        # If a path-index fold is mid-flight it saw zero live snapshots
        # before we registered; wait it out so we never read a tree that
        # is absorbing deltas under us. Registering *first* guarantees the
        # folder's re-check aborts any fold that starts after this point.
        while self._folding:
            time.sleep(0.0002)
        return snapshot

    def release(self, snapshot: Snapshot) -> None:
        self._live.pop(snapshot.token, None)

    def reading(self, snapshot: Snapshot):
        """Context manager installing ``snapshot`` as this thread's ambient
        read view; all store reads on the thread resolve against it."""
        return _AmbientReader(self, snapshot)

    def ambient(self) -> Optional[Snapshot]:
        return getattr(self._local, "snapshot", None)

    def reading_lsn(self) -> Optional[int]:
        """The ambient snapshot LSN, or None for latest-mode reads."""
        snapshot = getattr(self._local, "snapshot", None)
        return None if snapshot is None else snapshot.lsn

    # -- GC / fold coordination --------------------------------------------

    def live_count(self) -> int:
        return len(self._live)

    def min_live_lsn(self) -> Optional[int]:
        live = list(self._live.values())
        return min(live) if live else None

    def gc_cutoff(self) -> int:
        """Versions strictly older than this LSN can never be read again."""
        live = list(self._live.values())
        return min(live) if live else self._published

    def try_begin_fold(self) -> bool:
        """Enter the fold barrier iff there are zero live snapshots.

        Caller must hold the write lock and must call :meth:`end_fold`.
        The flag/re-check pair pairs with :meth:`acquire`: a reader
        registers itself and then waits on the flag, so either the fold
        sees the reader and aborts, or the reader sees the flag and waits.
        """
        self._folding = True
        if self._live:
            self._folding = False
            return False
        return True

    def end_fold(self) -> None:
        self._folding = False


class _AmbientReader:
    __slots__ = ("_clock", "_snapshot", "_previous")

    def __init__(self, clock: VersionClock, snapshot: Snapshot) -> None:
        self._clock = clock
        self._snapshot = snapshot

    def __enter__(self) -> Snapshot:
        local = self._clock._local
        self._previous = getattr(local, "snapshot", None)
        local.snapshot = self._snapshot
        return self._snapshot

    def __exit__(self, *exc) -> None:
        self._clock._local.snapshot = self._previous


class VersionedChainMap:
    """A key → value map whose every key carries an append-only event chain.

    Used for derived structures that must be snapshot-consistent but are
    not record stores: label-index buckets (value: membership bool) and
    node degrees (value: int). Writers append ``(PENDING, value)`` events;
    :meth:`publish` restamps them with the commit LSN. Deletions append a
    ``deleted_value`` event rather than removing the chain, so a pinned
    snapshot still resolves the historic value even across id reuse.

    Chains are plain lists appended in commit order, so latest is
    ``chain[-1]`` and snapshot resolution walks ``reversed(chain)`` — both
    safe against concurrent appends under the GIL.
    """

    __slots__ = ("_chains", "_pending", "_latest")

    def __init__(self) -> None:
        self._chains: dict = {}
        self._pending: set = set()
        self._latest: dict = {}

    def record(self, key, value) -> None:
        """Append a pending event for ``key`` (writer side)."""
        chain = self._chains.get(key)
        if chain is None:
            self._chains[key] = chain = []
        chain.append((PENDING, value))
        self._pending.add(key)
        self._latest[key] = value

    def seed(self, key, value) -> None:
        """Install a base version at LSN 0 (restore / rebuild path)."""
        self._chains[key] = [(0, value)]
        self._latest[key] = value

    def latest(self, key, default=None):
        return self._latest.get(key, default)

    def value_at(self, key, lsn: Optional[int], default=None):
        """Resolve ``key`` as of ``lsn`` (None = latest)."""
        if lsn is None:
            return self._latest.get(key, default)
        chain = self._chains.get(key)
        if chain is None:
            return default
        for version_lsn, value in reversed(chain):
            if version_lsn <= lsn:
                return value
        return default

    def publish(self, lsn: int) -> None:
        """Restamp every pending event with the commit LSN."""
        if not self._pending:
            return
        for key in self._pending:
            chain = self._chains.get(key)
            if chain is None:
                continue
            # Pending events form a contiguous tail (events are appended
            # in commit order and restamped before the next commit).
            for index in range(len(chain) - 1, -1, -1):
                if chain[index][0] is not PENDING:
                    break
                chain[index] = (lsn, chain[index][1])
        self._pending.clear()

    def has_pending(self) -> bool:
        return bool(self._pending)

    def keys(self) -> Iterator:
        return iter(list(self._chains))

    def collect(self, cutoff: int) -> int:
        """Drop events unreachable by any snapshot at or above ``cutoff``.

        Keeps the newest event at or below the cutoff (the base every
        surviving snapshot resolves to) plus everything newer. Returns the
        number of events reclaimed.
        """
        reclaimed = 0
        for key in list(self._chains):
            chain = self._chains[key]
            if len(chain) <= 1:
                continue
            keep_from = 0
            for index in range(len(chain) - 1, -1, -1):
                if chain[index][0] <= cutoff:
                    keep_from = index
                    break
            if keep_from > 0:
                self._chains[key] = chain[keep_from:]
                reclaimed += keep_from
        return reclaimed

    def version_count(self) -> int:
        """Historic events beyond each key's base, for metrics. The base
        event holds the current value and is never reclaimable, so the
        fully-collected steady state reports zero."""
        return sum(
            len(chain) - 1 for chain in list(self._chains.values()) if chain
        )

    def clear(self) -> None:
        self._chains.clear()
        self._pending.clear()
        self._latest.clear()
