"""The property-graph store: Figure 1 of the paper, executable.

Nodes point at a doubly-linked chain of relationship records; each
relationship record is a cell in the chains of both its endpoints. Nodes whose
degree exceeds ``dense_node_threshold`` are converted to *dense* nodes whose
relationships are split into per-type group records with separate
outgoing/incoming/loop chains, enabling type-selective iteration (§2.1.2).

All record reads/writes flow through :class:`~repro.storage.stores.RecordStore`
and therefore touch the simulated page cache, which is what makes the paper's
cold-run experiments reproducible.

The store is multi-versioned (see DESIGN.md §"MVCC snapshots"): every
mutation goes through copy-on-write — a record is never modified in place
once stored; writers take a private copy via ``read_for_update``, mutate it,
and write it back as a new PENDING version. :meth:`GraphStore.publish_commit`
stamps everything a transaction touched (records, label index, degrees,
statistics, path-index deltas) with one commit LSN, so a reader pinned at any
published LSN sees an internally consistent graph without taking a lock.

The store also enforces the Neo4j policy the paper's maintenance design relies
on (§4.1.1): a node with attached relationships can never be deleted, so path
index maintenance only ever has to consider relationship and label updates.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional

from repro.errors import ConstraintViolationError, RecordNotFoundError
from repro.storage.pagecache import PageCache
from repro.storage.records import (
    NO_ID,
    NodeRecord,
    PropertyRecord,
    RelationshipGroupRecord,
    RelationshipRecord,
)
from repro.storage.statistics import GraphStatistics
from repro.storage.stores import RecordStore, TokenStore
from repro.storage.versions import VersionClock, VersionedChainMap

DEFAULT_DENSE_NODE_THRESHOLD = 50
"""Degree beyond which a node's relationships are regrouped per type."""


class Direction(enum.Enum):
    """Traversal direction relative to a node."""

    OUTGOING = "OUTGOING"
    INCOMING = "INCOMING"
    BOTH = "BOTH"

    def reverse(self) -> "Direction":
        if self is Direction.OUTGOING:
            return Direction.INCOMING
        if self is Direction.INCOMING:
            return Direction.OUTGOING
        return Direction.BOTH


class GraphStore:
    """Record-level property graph with label index and statistics.

    The mutation API is id-based (token ids for labels/types); the
    :class:`~repro.db.database.GraphDatabase` facade translates names.
    """

    def __init__(
        self,
        page_cache: Optional[PageCache] = None,
        dense_node_threshold: int = DEFAULT_DENSE_NODE_THRESHOLD,
    ) -> None:
        self.page_cache = page_cache if page_cache is not None else PageCache()
        self.dense_node_threshold = dense_node_threshold
        self.mvcc = VersionClock()
        self.nodes: RecordStore[NodeRecord] = RecordStore(
            "neostore.nodestore.db",
            NodeRecord.RECORD_SIZE,
            self.page_cache,
            clock=self.mvcc,
        )
        self.relationships: RecordStore[RelationshipRecord] = RecordStore(
            "neostore.relationshipstore.db",
            RelationshipRecord.RECORD_SIZE,
            self.page_cache,
            clock=self.mvcc,
        )
        self.properties: RecordStore[PropertyRecord] = RecordStore(
            "neostore.propertystore.db",
            PropertyRecord.RECORD_SIZE,
            self.page_cache,
            clock=self.mvcc,
        )
        self.groups: RecordStore[RelationshipGroupRecord] = RecordStore(
            "neostore.relationshipgroupstore.db",
            RelationshipGroupRecord.RECORD_SIZE,
            self.page_cache,
            clock=self.mvcc,
        )
        self.labels = TokenStore("labels")
        self.types = TokenStore("types")
        self.property_keys = TokenStore("property_keys")
        # ``statistics`` is the live (latest) counts writers maintain;
        # copies stamped per commit LSN serve snapshot readers.
        self.statistics = GraphStatistics()
        self._stats_versions: list[tuple[int, GraphStatistics]] = [
            (0, self.statistics.copy())
        ]
        self._stats_dirty = False
        # Built-in label index (Neo4j's label scan store): label -> chain
        # map of node id -> membership events. Buckets are created lazily
        # and never removed, so compiled closures can bind the dict.
        self._label_index: dict[int, VersionedChainMap] = {}
        self._degrees = VersionedChainMap()
        # Dense node: node_id -> {type_id -> group record id}. Writer-only
        # accelerator — snapshot readers walk the group chain from the
        # node record instead, which versions correctly.
        self._group_lookup: dict[int, dict[int, int]] = {}
        # External structures published with the same commit LSN (the
        # path-index store registers itself here).
        self._publishers: list = []

    # ------------------------------------------------------------------
    # MVCC publish / GC
    # ------------------------------------------------------------------

    def register_publisher(self, publisher) -> None:
        """Register an object with ``has_pending()``/``publish(lsn)``/
        ``collect(cutoff)`` to be stamped with every commit LSN."""
        self._publishers.append(publisher)

    def has_pending_versions(self) -> bool:
        return (
            self.nodes.has_pending()
            or self.relationships.has_pending()
            or self.properties.has_pending()
            or self.groups.has_pending()
            or self._degrees.has_pending()
            or self._stats_dirty
            or any(bucket.has_pending() for bucket in list(self._label_index.values()))
            or any(publisher.has_pending() for publisher in self._publishers)
        )

    def publish_commit(self, lsn: Optional[int] = None) -> Optional[int]:
        """Atomically publish everything pending under one commit LSN.

        ``lsn`` is the WAL sequence number for durable databases; when
        omitted (non-durable) a fresh LSN comes from the version clock.
        Every pending version — records, label-index and degree events,
        the statistics copy, and registered path-index deltas — is stamped
        *before* the clock's published watermark advances, so no snapshot
        can pin a half-published commit. Returns the LSN, or None when the
        commit changed nothing (publishing nothing keeps counter LSNs from
        colliding with future WAL sequence numbers).
        """
        if not self.has_pending_versions():
            return None
        if lsn is None:
            lsn = self.mvcc.next_lsn()
        self.nodes.publish(lsn)
        self.relationships.publish(lsn)
        self.properties.publish(lsn)
        self.groups.publish(lsn)
        for bucket in list(self._label_index.values()):
            bucket.publish(lsn)
        self._degrees.publish(lsn)
        if self._stats_dirty:
            self._stats_versions.append((lsn, self.statistics.copy()))
            self._stats_dirty = False
        for publisher in self._publishers:
            publisher.publish(lsn)
        self.mvcc.publish(lsn)
        return lsn

    def collect_versions(self) -> dict[str, int]:
        """Reclaim version chains no live snapshot can reach.

        Safe to run concurrently with lock-free readers: every structure
        swaps lists/dict entries atomically and any reader still holding a
        pre-swap list resolves correctly from it. Returns GC counters.
        """
        cutoff = self.mvcc.gc_cutoff()
        reclaimed = (
            self.nodes.collect_versions(cutoff)
            + self.relationships.collect_versions(cutoff)
            + self.properties.collect_versions(cutoff)
            + self.groups.collect_versions(cutoff)
        )
        reclaimed += self._degrees.collect(cutoff)
        for bucket in list(self._label_index.values()):
            reclaimed += bucket.collect(cutoff)
        versions = self._stats_versions
        keep_from = 0
        for index in range(len(versions) - 1, -1, -1):
            if versions[index][0] <= cutoff:
                keep_from = index
                break
        if keep_from > 0:
            self._stats_versions = versions[keep_from:]
            reclaimed += keep_from
        folded = 0
        for publisher in self._publishers:
            folded += publisher.collect(cutoff)
        return {"cutoff": cutoff, "reclaimed": reclaimed, "folded": folded}

    def version_stats(self) -> dict[str, int]:
        """Retained-version counts for the metrics endpoint."""
        history = (
            self.nodes.version_count()
            + self.relationships.version_count()
            + self.properties.version_count()
            + self.groups.version_count()
        )
        chains = self._degrees.version_count()
        for bucket in list(self._label_index.values()):
            chains += bucket.version_count()
        deltas = sum(
            publisher.delta_count() for publisher in self._publishers
        )
        return {
            "record_versions": history,
            "chain_versions": chains,
            "index_deltas": deltas,
            # The base statistics copy is the current value, not history.
            "stats_versions": max(0, len(self._stats_versions) - 1),
        }

    def statistics_view(self) -> GraphStatistics:
        """The statistics consistent with this thread's read view."""
        lsn = self.mvcc.reading_lsn()
        if lsn is None:
            return self.statistics
        versions = self._stats_versions
        for version_lsn, stats in reversed(versions):
            if version_lsn <= lsn:
                return stats
        return versions[0][1]

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def create_node(
        self, label_ids: Iterable[int] = (), node_id: Optional[int] = None
    ) -> int:
        """Create a node with the given labels; returns its id.

        ``node_id`` forces a specific id (WAL replay)."""
        labels = frozenset(label_ids)
        node_id = self.nodes.allocate_id(requested=node_id)
        self.nodes.write(node_id, NodeRecord(id=node_id, labels=labels))
        self._degrees.record(node_id, 0)
        for label_id in labels:
            self._label_bucket(label_id).record(node_id, True)
        self.statistics.node_added(labels)
        self._stats_dirty = True
        return node_id

    def delete_node(self, node_id: int) -> None:
        """Delete a node; refuses while relationships are attached."""
        record = self.nodes.read(node_id)
        if self._degrees.latest(node_id, 0) > 0:
            raise ConstraintViolationError(
                f"cannot delete node {node_id}: it still has relationships"
            )
        self._free_property_chain(record.first_prop)
        for label_id in record.labels:
            bucket = self._label_index.get(label_id)
            if bucket is not None:
                bucket.record(node_id, False)
        self.statistics.node_removed(record.labels)
        self._stats_dirty = True
        self.nodes.free(node_id)
        self._group_lookup.pop(node_id, None)

    def node(self, node_id: int) -> NodeRecord:
        return self.nodes.read(node_id)

    def node_exists(self, node_id: int) -> bool:
        return self.nodes.exists(node_id)

    def node_labels(self, node_id: int) -> frozenset[int]:
        return self.nodes.read(node_id).labels

    def has_label(self, node_id: int, label_id: int) -> bool:
        return label_id in self.nodes.read(node_id).labels

    def add_label(self, node_id: int, label_id: int) -> bool:
        """Add a label; returns False if the node already had it."""
        record = self.nodes.read(node_id)
        if label_id in record.labels:
            return False
        record = self.nodes.read_for_update(node_id)
        record.labels = record.labels | {label_id}
        self.nodes.write(node_id, record)
        self._label_bucket(label_id).record(node_id, True)
        self.statistics.label_added(label_id)
        self._stats_dirty = True
        self._stats_relabel(node_id, label_id, added=True)
        return True

    def remove_label(self, node_id: int, label_id: int) -> bool:
        """Remove a label; returns False if the node did not have it."""
        record = self.nodes.read(node_id)
        if label_id not in record.labels:
            return False
        record = self.nodes.read_for_update(node_id)
        record.labels = record.labels - {label_id}
        self.nodes.write(node_id, record)
        bucket = self._label_index.get(label_id)
        if bucket is not None:
            bucket.record(node_id, False)
        self.statistics.label_removed(label_id)
        self._stats_dirty = True
        self._stats_relabel(node_id, label_id, added=False)
        return True

    def all_nodes(self) -> Iterator[int]:
        """Scan all node ids in store order (AllNodesScan)."""
        return self.nodes.ids_in_use()

    def nodes_with_label(self, label_id: int) -> Iterator[int]:
        """Scan node ids via the built-in label index (NodeByLabelScan)."""
        bucket = self._label_index.get(label_id)
        if bucket is None:
            return iter(())

        # Touch the node records like the real scan store would.
        def generate() -> Iterator[int]:
            lsn = self.mvcc.reading_lsn()
            for node_id in bucket.keys():
                if bucket.value_at(node_id, lsn, False):
                    self.nodes.read(node_id)
                    yield node_id

        return generate()

    def degree(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        type_id: Optional[int] = None,
    ) -> int:
        """Degree of ``node_id``, honouring direction and type filters.

        O(1) for BOTH/any-type (the degree counter), and for dense nodes
        also with a direction and/or ``type_id`` filter via the
        relationship-group counts (one group record read per type, no chain
        walk). Sparse nodes with a filter walk their chain, which the dense
        threshold bounds. Loops count once in every direction, matching
        :meth:`relationships_of`.
        """
        if direction is Direction.BOTH and type_id is None:
            if not self.nodes.exists(node_id):
                raise RecordNotFoundError(f"no node {node_id}")
            return self._degrees.value_at(node_id, self.mvcc.reading_lsn(), 0)
        record = self.nodes.read(node_id)
        if record.dense:
            if type_id is not None:
                if self.mvcc.reading_lsn() is None:
                    group_id = self._group_lookup.get(node_id, {}).get(type_id)
                    if group_id is None:
                        return 0
                    return self._group_degree(self.groups.read(group_id), direction)
                # Snapshot readers walk the (versioned) group chain from
                # the node record: the writer-side lookup dict is neither
                # versioned nor stable across node deletion.
                group_ptr = record.first_rel
                while group_ptr != NO_ID:
                    group = self.groups.read(group_ptr)
                    if group.type_id == type_id:
                        return self._group_degree(group, direction)
                    group_ptr = group.next_group
                return 0
            total = 0
            group_ptr = record.first_rel
            while group_ptr != NO_ID:
                group = self.groups.read(group_ptr)
                total += self._group_degree(group, direction)
                group_ptr = group.next_group
            return total
        return sum(1 for _ in self.relationships_of(node_id, direction, type_id))

    def _chain_length(self, head: int, node_id: int) -> int:
        count = 0
        rel_ptr = head
        while rel_ptr != NO_ID:
            count += 1
            rel_ptr = self.relationships.read(rel_ptr).chain_next(node_id)
        return count

    @staticmethod
    def _group_degree(group: RelationshipGroupRecord, direction: Direction) -> int:
        if direction is Direction.OUTGOING:
            return group.count_out + group.count_loop
        if direction is Direction.INCOMING:
            return group.count_in + group.count_loop
        return group.count_out + group.count_in + group.count_loop

    def _label_bucket(self, label_id: int) -> VersionedChainMap:
        bucket = self._label_index.get(label_id)
        if bucket is None:
            self._label_index[label_id] = bucket = VersionedChainMap()
        return bucket

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------

    def create_relationship(
        self, start: int, end: int, type_id: int, rel_id: Optional[int] = None
    ) -> int:
        """Create ``(start)-[:type]->(end)``; returns the relationship id.

        ``rel_id`` forces a specific id (WAL replay)."""
        start_record = self.nodes.read_for_update(start)
        end_record = self.nodes.read_for_update(end)
        rel_id = self.relationships.allocate_id(requested=rel_id)
        rel = RelationshipRecord(
            id=rel_id, type_id=type_id, start_node=start, end_node=end
        )
        self.relationships.write(rel_id, rel)
        self._link_into_chain(rel, start, start_record)
        if start != end:
            self._link_into_chain(rel, end, end_record)
        self._degrees.record(start, self._degrees.latest(start, 0) + 1)
        if start != end:
            self._degrees.record(end, self._degrees.latest(end, 0) + 1)
        self._maybe_densify(start)
        if start != end:
            self._maybe_densify(end)
        self.statistics.relationship_added(
            type_id, start_record.labels, end_record.labels
        )
        self._stats_dirty = True
        return rel_id

    def delete_relationship(self, rel_id: int) -> None:
        """Delete a relationship, unlinking it from both endpoint chains."""
        rel = self.relationships.read(rel_id)
        self._unlink_from_chain(rel, rel.start_node)
        if rel.start_node != rel.end_node:
            self._unlink_from_chain(rel, rel.end_node)
        self._free_property_chain(rel.first_prop)
        self._degrees.record(
            rel.start_node, self._degrees.latest(rel.start_node, 0) - 1
        )
        if rel.start_node != rel.end_node:
            self._degrees.record(
                rel.end_node, self._degrees.latest(rel.end_node, 0) - 1
            )
        start_labels = self.nodes.read(rel.start_node).labels
        end_labels = self.nodes.read(rel.end_node).labels
        self.statistics.relationship_removed(rel.type_id, start_labels, end_labels)
        self._stats_dirty = True
        self.relationships.free(rel_id)

    def relationship(self, rel_id: int) -> RelationshipRecord:
        return self.relationships.read(rel_id)

    def relationship_exists(self, rel_id: int) -> bool:
        return self.relationships.exists(rel_id)

    def all_relationships(self) -> Iterator[int]:
        """Scan all relationship ids in store order."""
        return self.relationships.ids_in_use()

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        type_id: Optional[int] = None,
    ) -> Iterator[RelationshipRecord]:
        """Iterate relationships incident to ``node_id``.

        For dense nodes, a ``type_id`` filter only walks the matching group's
        chains; sparse nodes walk their single chain and filter.
        """
        record = self.nodes.read(node_id)
        if record.dense:
            yield from self._dense_relationships(node_id, record, direction, type_id)
            return
        rel_ptr = record.first_rel
        while rel_ptr != NO_ID:
            rel = self.relationships.read(rel_ptr)
            if self._matches(rel, node_id, direction, type_id):
                yield rel
            rel_ptr = rel.chain_next(node_id)

    def expand(
        self,
        node_id: int,
        direction: Direction,
        type_id: Optional[int] = None,
    ) -> Iterator[tuple[RelationshipRecord, int]]:
        """Yield ``(relationship, neighbour_id)`` pairs for an Expand step."""
        for rel in self.relationships_of(node_id, direction, type_id):
            yield rel, rel.other_node(node_id)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    def set_node_property(self, node_id: int, key_id: int, value: object) -> None:
        record = self.nodes.read_for_update(node_id)
        record.first_prop = self._chain_set(record.first_prop, key_id, value)
        self.nodes.write(node_id, record)

    def node_property(self, node_id: int, key_id: int) -> object:
        return self._chain_get(self.nodes.read(node_id).first_prop, key_id)

    def remove_node_property(self, node_id: int, key_id: int) -> None:
        record = self.nodes.read_for_update(node_id)
        record.first_prop = self._chain_remove(record.first_prop, key_id)
        self.nodes.write(node_id, record)

    def node_properties(self, node_id: int) -> dict[int, object]:
        return self._chain_all(self.nodes.read(node_id).first_prop)

    def set_relationship_property(
        self, rel_id: int, key_id: int, value: object
    ) -> None:
        rel = self.relationships.read_for_update(rel_id)
        rel.first_prop = self._chain_set(rel.first_prop, key_id, value)
        self.relationships.write(rel_id, rel)

    def relationship_property(self, rel_id: int, key_id: int) -> object:
        return self._chain_get(self.relationships.read(rel_id).first_prop, key_id)

    def relationship_properties(self, rel_id: int) -> dict[int, object]:
        return self._chain_all(self.relationships.read(rel_id).first_prop)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def size_on_disk(self) -> int:
        """Total bytes of all graph store files (excludes indexes, like §6.3)."""
        return (
            self.nodes.size_on_disk()
            + self.relationships.size_on_disk()
            + self.properties.size_on_disk()
            + self.groups.size_on_disk()
        )

    # ------------------------------------------------------------------
    # Chain plumbing (sparse nodes)
    # ------------------------------------------------------------------

    def _link_into_chain(
        self, rel: RelationshipRecord, node_id: int, node_record: NodeRecord
    ) -> None:
        if node_record.dense:
            self._link_into_group(rel, node_id)
            return
        head = node_record.first_rel
        self._set_chain_pointers(rel, node_id, prev=NO_ID, next_=head)
        if head != NO_ID:
            old_head = self.relationships.read_for_update(head)
            self._set_chain_prev(old_head, node_id, rel.id)
            self.relationships.write(head, old_head)
        node_record.first_rel = rel.id
        self.nodes.write(node_id, node_record)
        self.relationships.write(rel.id, rel)

    def _unlink_from_chain(self, rel: RelationshipRecord, node_id: int) -> None:
        node_record = self.nodes.read(node_id)
        if node_record.dense:
            self._unlink_from_group(rel, node_id)
            return
        prev_id = self._chain_prev(rel, node_id)
        next_id = rel.chain_next(node_id)
        if prev_id != NO_ID:
            prev = self.relationships.read_for_update(prev_id)
            self._set_chain_next(prev, node_id, next_id)
            self.relationships.write(prev_id, prev)
        else:
            node_record = self.nodes.read_for_update(node_id)
            node_record.first_rel = next_id
            self.nodes.write(node_id, node_record)
        if next_id != NO_ID:
            nxt = self.relationships.read_for_update(next_id)
            self._set_chain_prev(nxt, node_id, prev_id)
            self.relationships.write(next_id, nxt)

    @staticmethod
    def _set_chain_pointers(
        rel: RelationshipRecord, node_id: int, prev: int, next_: int
    ) -> None:
        if node_id == rel.start_node:
            rel.start_prev, rel.start_next = prev, next_
        else:
            rel.end_prev, rel.end_next = prev, next_

    @staticmethod
    def _chain_prev(rel: RelationshipRecord, node_id: int) -> int:
        return rel.start_prev if node_id == rel.start_node else rel.end_prev

    @staticmethod
    def _set_chain_prev(rel: RelationshipRecord, node_id: int, prev: int) -> None:
        if node_id == rel.start_node:
            rel.start_prev = prev
        else:
            rel.end_prev = prev

    @staticmethod
    def _set_chain_next(rel: RelationshipRecord, node_id: int, next_: int) -> None:
        if node_id == rel.start_node:
            rel.start_next = next_
        else:
            rel.end_next = next_

    # ------------------------------------------------------------------
    # Dense nodes: relationship groups
    # ------------------------------------------------------------------

    def _maybe_densify(self, node_id: int) -> None:
        record = self.nodes.read(node_id)
        if record.dense or self._degrees.latest(node_id, 0) <= self.dense_node_threshold:
            return
        # Collect the existing chain as private copies, then rebuild as
        # per-type groups. The stored versions stay untouched for readers.
        rels = [
            self.relationships.read_for_update(rel.id)
            for rel in self.relationships_of(node_id)
        ]
        record = self.nodes.read_for_update(node_id)
        record.dense = True
        record.first_rel = NO_ID
        self.nodes.write(node_id, record)
        self._group_lookup[node_id] = {}
        for rel in rels:
            self._set_chain_pointers(rel, node_id, NO_ID, NO_ID)
            if rel.start_node == rel.end_node:
                rel.end_prev = rel.end_next = NO_ID
            self.relationships.write(rel.id, rel)
            self._link_into_group(rel, node_id)

    def _group_for(self, node_id: int, type_id: int) -> RelationshipGroupRecord:
        lookup = self._group_lookup.setdefault(node_id, {})
        group_id = lookup.get(type_id)
        if group_id is not None:
            return self.groups.read_for_update(group_id)
        group_id = self.groups.allocate_id()
        node_record = self.nodes.read_for_update(node_id)
        group = RelationshipGroupRecord(
            id=group_id,
            owning_node=node_id,
            type_id=type_id,
            next_group=node_record.first_rel,
        )
        self.groups.write(group_id, group)
        node_record.first_rel = group_id
        self.nodes.write(node_id, node_record)
        lookup[type_id] = group_id
        return group

    @staticmethod
    def _group_chain(rel: RelationshipRecord, node_id: int) -> tuple[str, str]:
        """The (head, count) attribute pair of ``rel`` in ``node_id``'s group."""
        if rel.start_node == rel.end_node:
            return "first_loop", "count_loop"
        if node_id == rel.start_node:
            return "first_out", "count_out"
        return "first_in", "count_in"

    def _link_into_group(self, rel: RelationshipRecord, node_id: int) -> None:
        group = self._group_for(node_id, rel.type_id)
        head_attr, count_attr = self._group_chain(rel, node_id)
        head = getattr(group, head_attr)
        self._set_chain_pointers(rel, node_id, prev=NO_ID, next_=head)
        if head != NO_ID:
            old_head = self.relationships.read_for_update(head)
            self._set_chain_prev(old_head, node_id, rel.id)
            self.relationships.write(head, old_head)
        setattr(group, head_attr, rel.id)
        setattr(group, count_attr, getattr(group, count_attr) + 1)
        self.groups.write(group.id, group)
        self.relationships.write(rel.id, rel)

    def _unlink_from_group(self, rel: RelationshipRecord, node_id: int) -> None:
        group_id = self._group_lookup[node_id][rel.type_id]
        group = self.groups.read_for_update(group_id)
        head_attr, count_attr = self._group_chain(rel, node_id)
        prev_id = self._chain_prev(rel, node_id)
        next_id = rel.chain_next(node_id)
        if prev_id != NO_ID:
            prev = self.relationships.read_for_update(prev_id)
            self._set_chain_next(prev, node_id, next_id)
            self.relationships.write(prev_id, prev)
        else:
            setattr(group, head_attr, next_id)
        setattr(group, count_attr, getattr(group, count_attr) - 1)
        # The count changed even when the head pointer did not, so the
        # group record is always written back.
        self.groups.write(group_id, group)
        if next_id != NO_ID:
            nxt = self.relationships.read_for_update(next_id)
            self._set_chain_prev(nxt, node_id, prev_id)
            self.relationships.write(next_id, nxt)

    def _dense_relationships(
        self,
        node_id: int,
        record: NodeRecord,
        direction: Direction,
        type_id: Optional[int],
    ) -> Iterator[RelationshipRecord]:
        group_ptr = record.first_rel
        while group_ptr != NO_ID:
            group = self.groups.read(group_ptr)
            if type_id is None or group.type_id == type_id:
                heads = []
                if direction in (Direction.OUTGOING, Direction.BOTH):
                    heads.append(group.first_out)
                if direction in (Direction.INCOMING, Direction.BOTH):
                    heads.append(group.first_in)
                heads.append(group.first_loop)
                for head in heads:
                    rel_ptr = head
                    while rel_ptr != NO_ID:
                        rel = self.relationships.read(rel_ptr)
                        yield rel
                        rel_ptr = rel.chain_next(node_id)
            group_ptr = group.next_group

    @staticmethod
    def _matches(
        rel: RelationshipRecord,
        node_id: int,
        direction: Direction,
        type_id: Optional[int],
    ) -> bool:
        if type_id is not None and rel.type_id != type_id:
            return False
        if direction is Direction.BOTH or rel.start_node == rel.end_node:
            return True
        if direction is Direction.OUTGOING:
            return rel.start_node == node_id
        return rel.end_node == node_id

    # ------------------------------------------------------------------
    # Property chains
    # ------------------------------------------------------------------

    def _chain_set(self, head: int, key_id: int, value: object) -> int:
        ptr = head
        while ptr != NO_ID:
            prop = self.properties.read(ptr)
            if prop.key_id == key_id:
                prop = self.properties.read_for_update(ptr)
                prop.value = value
                self.properties.write(ptr, prop)
                return head
            ptr = prop.next_prop
        prop_id = self.properties.allocate_id()
        self.properties.write(
            prop_id,
            PropertyRecord(id=prop_id, key_id=key_id, value=value, next_prop=head),
        )
        if head != NO_ID:
            old = self.properties.read_for_update(head)
            old.prev_prop = prop_id
            self.properties.write(head, old)
        return prop_id

    def _chain_get(self, head: int, key_id: int) -> object:
        ptr = head
        while ptr != NO_ID:
            prop = self.properties.read(ptr)
            if prop.key_id == key_id:
                return prop.value
            ptr = prop.next_prop
        return None

    def _chain_remove(self, head: int, key_id: int) -> int:
        ptr = head
        while ptr != NO_ID:
            prop = self.properties.read(ptr)
            if prop.key_id == key_id:
                if prop.prev_prop != NO_ID:
                    prev = self.properties.read_for_update(prop.prev_prop)
                    prev.next_prop = prop.next_prop
                    self.properties.write(prev.id, prev)
                else:
                    head = prop.next_prop
                if prop.next_prop != NO_ID:
                    nxt = self.properties.read_for_update(prop.next_prop)
                    nxt.prev_prop = prop.prev_prop
                    self.properties.write(nxt.id, nxt)
                self.properties.free(ptr)
                return head
            ptr = prop.next_prop
        return head

    def _chain_all(self, head: int) -> dict[int, object]:
        result: dict[int, object] = {}
        ptr = head
        while ptr != NO_ID:
            prop = self.properties.read(ptr)
            result[prop.key_id] = prop.value
            ptr = prop.next_prop
        return result

    def _free_property_chain(self, head: int) -> None:
        ptr = head
        while ptr != NO_ID:
            prop = self.properties.read(ptr)
            next_ptr = prop.next_prop
            self.properties.free(ptr)
            ptr = next_ptr

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def rebuild_derived_state(self) -> None:
        """Recompute every structure derivable from the raw records: the
        label index, degree counters, dense-node group lookup and the
        statistics counts. Used after a snapshot restore.

        Clears the label index and degree maps in place (compiled
        closures bind the dict objects) and re-seals the version base at
        LSN 0 so the restored state is what every later snapshot builds on.
        """
        self._label_index.clear()
        self._degrees.clear()
        self._group_lookup.clear()
        self.statistics = GraphStatistics()
        degrees: dict[int, int] = {}
        for node_id in self.nodes.ids_in_use():
            record = self.nodes.read(node_id)
            degrees[node_id] = 0
            for label_id in record.labels:
                self._label_bucket(label_id).seed(node_id, True)
            self.statistics.node_added(record.labels)
            if record.dense:
                lookup = self._group_lookup.setdefault(node_id, {})
                group_ptr = record.first_rel
                while group_ptr != NO_ID:
                    group = self.groups.read_for_update(group_ptr)
                    lookup[group.type_id] = group.id
                    # Recompute chain counts from the chains themselves so
                    # snapshots predating the counters restore correctly.
                    group.count_out = self._chain_length(group.first_out, node_id)
                    group.count_in = self._chain_length(group.first_in, node_id)
                    group.count_loop = self._chain_length(group.first_loop, node_id)
                    self.groups.write(group.id, group)
                    group_ptr = group.next_group
        for rel_id in self.relationships.ids_in_use():
            record = self.relationships.read(rel_id)
            degrees[record.start_node] += 1
            if record.start_node != record.end_node:
                degrees[record.end_node] += 1
            self.statistics.relationship_added(
                record.type_id,
                self.nodes.read(record.start_node).labels,
                self.nodes.read(record.end_node).labels,
            )
        for node_id, degree in degrees.items():
            self._degrees.seed(node_id, degree)
        self._reset_version_base()

    def _reset_version_base(self) -> None:
        """Stamp everything pending at LSN 0 — the post-restore base."""
        self.nodes.publish(0)
        self.relationships.publish(0)
        self.properties.publish(0)
        self.groups.publish(0)
        for bucket in list(self._label_index.values()):
            bucket.publish(0)
        self._degrees.publish(0)
        self._stats_versions = [(0, self.statistics.copy())]
        self._stats_dirty = False

    # ------------------------------------------------------------------
    # Statistics upkeep for label changes on connected nodes
    # ------------------------------------------------------------------

    def _stats_relabel(self, node_id: int, label_id: int, added: bool) -> None:
        """Adjust directional rel counts when a connected node changes labels."""
        for rel in self.relationships_of(node_id):
            if rel.start_node == node_id:
                key = (label_id, rel.type_id)
                if added:
                    self.statistics.rels_by_start_label_type[key] += 1
                else:
                    GraphStatistics._dec(
                        self.statistics.rels_by_start_label_type, key
                    )
            if rel.end_node == node_id:
                key = (rel.type_id, label_id)
                if added:
                    self.statistics.rels_by_type_end_label[key] += 1
                else:
                    GraphStatistics._dec(
                        self.statistics.rels_by_type_end_label, key
                    )
