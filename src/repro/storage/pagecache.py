"""Simulated page cache with hit/miss accounting.

The paper's evaluation distinguishes *memory-cached* from *cold* runs (§6.3):
cold runs re-open the database so every page must be fetched from the NVMe SSD
again. A pure-Python reproduction cannot meaningfully measure real disk I/O, so
this module simulates it: every record access is mapped to a page id; the cache
tracks which pages are resident (bounded LRU) and counts hits, misses and
evictions. A benchmark's *cold* variant flushes the cache and charges a
configurable synthetic latency per miss (NVMe-like, default 80 µs per 8 KiB
page). Because plan quality determines how many distinct pages are touched,
this preserves the cold/cached orderings and ratios the paper reports.

The cache is deliberately an *accounting* layer: record payloads live in the
stores themselves; the cache only tracks residency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

DEFAULT_PAGE_SIZE = 8192
"""Page size in bytes; Neo4j's page cache uses 8 KiB pages."""

DEFAULT_MISS_LATENCY_S = 80e-6
"""Simulated latency charged per page miss (NVMe-class random read)."""


@dataclass
class PageCacheStats:
    """Counters accumulated by a :class:`PageCache`.

    ``simulated_io_seconds`` is the synthetic cost of all misses so far; the
    benchmark harness adds it to wall-clock time for cold-run figures.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    miss_latency_s: float = DEFAULT_MISS_LATENCY_S

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def simulated_io_seconds(self) -> float:
        return self.misses * self.miss_latency_s

    def snapshot(self) -> "PageCacheStats":
        """Return an independent copy of the current counters."""
        return PageCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            flushes=self.flushes,
            miss_latency_s=self.miss_latency_s,
        )

    def delta_since(self, earlier: "PageCacheStats") -> "PageCacheStats":
        """Counters accumulated since ``earlier`` (a prior :meth:`snapshot`)."""
        return PageCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            flushes=self.flushes - earlier.flushes,
            miss_latency_s=self.miss_latency_s,
        )


@dataclass
class _FileState:
    """Residency bookkeeping for one paged file."""

    name: str
    resident: OrderedDict = field(default_factory=OrderedDict)


class PageCache:
    """Bounded LRU page cache shared by all stores of one database.

    Each store registers a *paged file* (by name) and then calls
    :meth:`touch` with a byte offset (or :meth:`touch_page` with a page id)
    whenever it reads or writes a record. Eviction is global LRU across files,
    approximated per-file for simplicity (the distinction does not affect any
    reported metric: only total resident pages are bounded).
    """

    def __init__(
        self,
        capacity_pages: int = 1 << 20,
        page_size: int = DEFAULT_PAGE_SIZE,
        miss_latency_s: float = DEFAULT_MISS_LATENCY_S,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.stats = PageCacheStats(miss_latency_s=miss_latency_s)
        self._files: dict[str, _FileState] = {}
        self._resident_total = 0
        self._lru: OrderedDict = OrderedDict()  # (file, page) -> None
        self.enabled = True
        # One lock guards residency state and the hit/miss/eviction
        # counters so they stay consistent under the concurrent query
        # service's worker threads.
        self._lock = threading.Lock()

    def register_file(self, name: str) -> None:
        """Create bookkeeping for a paged file; idempotent."""
        self._files.setdefault(name, _FileState(name))

    def touch(self, file_name: str, byte_offset: int) -> bool:
        """Record an access at ``byte_offset`` in ``file_name``.

        Returns True on a hit, False on a miss (after loading the page).
        """
        return self.touch_page(file_name, byte_offset // self.page_size)

    def touch_page(self, file_name: str, page_id: int) -> bool:
        """Record an access to page ``page_id``; returns True on a hit."""
        if not self.enabled:
            return True
        with self._lock:
            key = (file_name, page_id)
            lru = self._lru
            # Hits are the overwhelmingly common case in warm scans, so
            # the hit path does nothing but the LRU bump.
            if key in lru:
                lru.move_to_end(key)
                self.stats.hits += 1
                return True
            state = self._files.get(file_name)
            if state is None:
                state = _FileState(file_name)
                self._files[file_name] = state
            self.stats.misses += 1
            if self._resident_total >= self.capacity_pages:
                old_key, _ = lru.popitem(last=False)
                old_state = self._files[old_key[0]]
                old_state.resident.pop(old_key[1], None)
                self._resident_total -= 1
                self.stats.evictions += 1
            lru[key] = None
            state.resident[page_id] = None
            self._resident_total += 1
            return False

    def touch_run(self, file_name: str, first_page: int, count: int) -> int:
        """Record accesses to ``count`` contiguous pages from ``first_page``.

        Equivalent to ``count`` :meth:`touch_page` calls in ascending page
        order but takes the lock once for the whole run, which is what
        sequential scans (B+-tree leaf chains, record-store sweeps) use to
        cut lock traffic. Returns the number of hits in the run.
        """
        if count <= 0:
            return 0
        if not self.enabled:
            return count
        hits = 0
        with self._lock:
            state = self._files.get(file_name)
            if state is None:
                state = _FileState(file_name)
                self._files[file_name] = state
            lru = self._lru
            stats = self.stats
            resident = state.resident
            capacity = self.capacity_pages
            for page_id in range(first_page, first_page + count):
                key = (file_name, page_id)
                if key in lru:
                    lru.move_to_end(key)
                    stats.hits += 1
                    hits += 1
                    continue
                stats.misses += 1
                if self._resident_total >= capacity:
                    old_key, _ = lru.popitem(last=False)
                    self._files[old_key[0]].resident.pop(old_key[1], None)
                    self._resident_total -= 1
                    stats.evictions += 1
                lru[key] = None
                resident[page_id] = None
                self._resident_total += 1
        return hits

    def flush(self) -> None:
        """Drop all resident pages (the paper's database re-open for cold runs)."""
        with self._lock:
            for state in self._files.values():
                state.resident.clear()
            self._lru.clear()
            self._resident_total = 0
            self.stats.flushes += 1

    @property
    def resident_pages(self) -> int:
        return self._resident_total

    def resident_pages_of(self, file_name: str) -> int:
        state = self._files.get(file_name)
        return len(state.resident) if state is not None else 0
