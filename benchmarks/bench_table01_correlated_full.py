"""Table 1 — correlated data: baseline vs. full-pattern index.

Reports first/last-result times under memory-cached and cold scenarios, plus
the ≈N× speed-ups, exactly the four rows of Table 1. Paper reference values
(at 100× our default scale): baseline last-cached 51 485.67 ms, full-index
last-cached 103.63 ms, speed-up ≈ 497×; cold speed-ups ≈ 243–356×.
"""

import pytest

from benchmarks._shared import BASELINE_HINTS, build_correlated, forced
from repro.bench import format_ms, format_speedup, write_report
from repro.bench.reporting import render_table
from repro.datasets import correlated


@pytest.fixture(scope="module")
def setup():
    ctx = build_correlated()
    ctx.db.create_path_index("Full", correlated.FULL_PATTERN)
    return ctx


def _run_table(ctx) -> dict:
    query = correlated.FULL_QUERY
    cells = {}
    for cold in (False, True):
        cells[("baseline", cold)] = ctx.methodology.measure_query(
            query, BASELINE_HINTS, cold=cold
        )
        cells[("full", cold)] = ctx.methodology.measure_query(
            query, forced("Full"), cold=cold
        )
    rows = []
    data = {"config": vars(ctx.data.config), "cells": {}}
    for label, metric, cold in (
        ("First result, cached", "first_result_s", False),
        ("Last result, cached", "last_result_s", False),
        ("First result, cold", "first_result_s", True),
        ("Last result, cold", "last_result_s", True),
    ):
        base = getattr(cells[("baseline", cold)], metric)
        full = getattr(cells[("full", cold)], metric)
        rows.append(
            (label, format_ms(base), format_ms(full), format_speedup(base, full))
        )
        data["cells"][label] = {
            "baseline_s": base,
            "full_index_s": full,
            "speedup": base / full if full else None,
        }
    table = render_table(
        "Table 1 — correlated data: baseline vs full path index",
        ("Result", "Baseline", "Full Index", "Speed-up"),
        rows,
        note=(
            f"dataset: {ctx.data.node_count} nodes, "
            f"{ctx.data.relationship_count} relationships "
            f"(paper: 125 000 / 12 600 000); result cardinality "
            f"{cells[('full', False)].rows} (paper: 25 000)"
        ),
    )
    write_report("table01_correlated_full", table, data)
    return data


def test_table01_report(setup, benchmark):
    data = benchmark.pedantic(lambda: _run_table(setup), rounds=1, iterations=1)
    # Shape check: the full index wins by a large factor end-to-end. (Our
    # baseline plan streams — no blocking NodeHashJoin as in the paper's
    # Figure 6 — so the *first*-result-cached gap is small; see
    # EXPERIMENTS.md.)
    assert data["cells"]["Last result, cached"]["speedup"] > 10
    assert data["cells"]["Last result, cold"]["speedup"] > 10
    assert data["cells"]["First result, cold"]["speedup"] > 1.5
