"""Table 2 — correlated data: index inventory.

Per index (Full, Sub1..Sub8): cardinality, size on disk, total data size and
initialization time, plus the graph's own size — the exact columns of
Table 2. Paper references: Full 25 000 entries / 3.92 MiB / 1 120 ms; Sub3
12 524 000 entries / 970.56 MiB / 14 248 ms.
"""

import time

import pytest

from benchmarks._shared import build_correlated
from repro.bench import format_bytes, write_report
from repro.bench.reporting import render_table
from repro.datasets import correlated


@pytest.fixture(scope="module")
def setup():
    return build_correlated()


def _run_table(ctx) -> dict:
    db, data = ctx.db, ctx.data
    expected = data.expected_cardinalities()
    rows = [
        ("Graph", "-", "-", format_bytes(db.store.size_on_disk()), "-", "-")
    ]
    data_out = {
        "config": vars(data.config),
        "graph_bytes": db.store.size_on_disk(),
        "indexes": {},
    }
    patterns = {"Full": correlated.FULL_PATTERN, **correlated.SUB_PATTERNS}
    for name, pattern in patterns.items():
        stats = db.create_path_index(name, pattern)
        rows.append(
            (
                name,
                pattern,
                f"{stats.cardinality:,}",
                format_bytes(stats.size_on_disk),
                format_bytes(stats.total_data_size),
                f"{stats.seconds * 1e3:,.0f} ms",
            )
        )
        data_out["indexes"][name] = {
            "pattern": pattern,
            "cardinality": stats.cardinality,
            "size_on_disk": stats.size_on_disk,
            "total_data_size": stats.total_data_size,
            "init_seconds": stats.seconds,
            "expected_cardinality": expected.get(name),
        }
    table = render_table(
        "Table 2 — correlated data: available indexes",
        ("Name", "Indexed pattern", "Cardinality", "Size on disk",
         "Total data size", "Initialization"),
        rows,
        note=(
            "Selective patterns (Full, Sub1, Sub2, Sub4, Sub8) stay at the "
            "hidden-path count; noise patterns (Sub3, Sub5, Sub6, Sub7) "
            "dominate storage, as in the paper."
        ),
    )
    write_report("table02_correlated_index_stats", table, data_out)
    return data_out


def test_table02_report(setup, benchmark):
    data = benchmark.pedantic(lambda: _run_table(setup), rounds=1, iterations=1)
    indexes = data["indexes"]
    paths = setup.data.config.paths
    # Construction-exact cardinalities (the dataset's central invariant).
    for name in ("Full", "Sub1", "Sub2", "Sub4", "Sub8"):
        assert indexes[name]["cardinality"] == paths, name
    for name in ("Sub3", "Sub5", "Sub6", "Sub7"):
        assert indexes[name]["cardinality"] == (
            indexes[name]["expected_cardinality"]
        ), name
        assert indexes[name]["cardinality"] > 10 * paths, name
    # Size ordering mirrors Table 2: Sub3 is the largest index by far.
    assert indexes["Sub3"]["size_on_disk"] == max(
        meta["size_on_disk"] for meta in indexes.values()
    )
    # Entry size formula 8·(2k+1) drives the data sizes.
    assert indexes["Full"]["total_data_size"] == paths * 8 * 9
