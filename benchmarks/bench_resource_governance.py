"""Resource governance cost: what spilling a blocking operator to disk does
to latency.

Two cells, each run on the same graph twice:

1. **Sort** — ``ORDER BY`` over a unique key, so the sort buffer holds the
   whole result set.
2. **Aggregate** — grouped ``count(*)`` with enough groups that the
   aggregation hash table exceeds the grant.

The *unconstrained* database (no memory budget) keeps everything in memory;
the *governed* database runs with a small per-query grant so both operators
write sorted runs / partition files and merge them back. Rows must be
identical; the interesting number is the latency ratio.

Acceptance gates (asserted in smoke mode and in the pytest-benchmark run):

* the unconstrained run performs **zero** spills;
* every governed cell actually spills (otherwise the ratio is vacuous);
* spilled sort and aggregate stay within **3x** the in-memory latency.

A results artifact is written to
``benchmarks/results/resource_governance.{txt,json}``.

Run standalone with ``--smoke`` (used by CI) for a seconds-long pass.
"""

import time

from repro import GraphDatabase
from repro.bench.reporting import render_table, write_report

GRANT_BYTES = 64 * 1024
BUDGET_BYTES = 16 << 20

CELLS = (
    (
        "sort",
        "MATCH (p:P) RETURN p.name AS name ORDER BY name DESC",
    ),
    (
        "aggregate",
        "MATCH (p:P) RETURN p.g AS g, count(*) AS c ORDER BY g",
    ),
)


def _build(db, nodes: int) -> None:
    for i in range(nodes):
        db.create_node(["P"], {"name": f"p{i:06d}", "g": i % (nodes // 3)})


def _best_of(db, query: str, rounds: int):
    """(best latency, last result) — best-of-N smooths scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = db.execute(query)
        rows = result.to_list()
        best = min(best, time.perf_counter() - started)
    return best, rows, result.profile


def _run_table(smoke: bool = False) -> dict:
    nodes = 1500 if smoke else 6000
    rounds = 3
    data = {
        "smoke": smoke,
        "nodes": nodes,
        "grant_bytes": GRANT_BYTES,
        "budget_bytes": BUDGET_BYTES,
        "cells": {},
    }

    free = GraphDatabase()
    # The reference must stay unconstrained even under REPRO_MEMORY_BUDGET.
    free.set_memory_budget(None)
    governed = GraphDatabase(
        memory_budget=BUDGET_BYTES, memory_grant=GRANT_BYTES
    )
    _build(free, nodes)
    _build(governed, nodes)

    rows_out = []
    try:
        for name, query in CELLS:
            base_s, base_rows, base_profile = _best_of(free, query, rounds)
            spill_s, spill_rows, spill_profile = _best_of(
                governed, query, rounds
            )
            assert base_profile.spill_runs == 0, (
                f"{name}: unconstrained run spilled — the budget leaked "
                "into the reference database"
            )
            assert spill_profile.spill_runs > 0, (
                f"{name}: governed run never spilled; the gate below would "
                "be vacuous"
            )
            assert spill_rows == base_rows, (
                f"{name}: spilled rows differ from in-memory rows"
            )
            ratio = spill_s / base_s
            cell = {
                "in_memory_s": base_s,
                "spilled_s": spill_s,
                "ratio": ratio,
                "spill_runs": spill_profile.spill_runs,
                "peak_bytes": spill_profile.peak_memory_bytes,
                "rows": len(base_rows),
            }
            data["cells"][name] = cell
            rows_out.append(
                (
                    name,
                    f"{base_s * 1e3:,.2f} ms",
                    f"{spill_s * 1e3:,.2f} ms",
                    f"{ratio:.2f}x",
                    f"{cell['spill_runs']}",
                )
            )
    finally:
        free.close()
        governed.close()

    table = render_table(
        f"Resource governance — spilled vs in-memory latency, {nodes} nodes, "
        f"{GRANT_BYTES // 1024} KiB grant" + (" (smoke)" if smoke else ""),
        ("Operator", "In memory", "Spilled", "Ratio", "Runs"),
        rows_out,
        note=(
            "Rows are asserted identical between the two databases; the "
            "flat per-row cost model makes spill decisions deterministic. "
            "Gate: spilled latency stays within 3x of in-memory."
        ),
    )
    write_report("resource_governance", table, data)

    for name, cell in data["cells"].items():
        assert cell["ratio"] <= 3.0, (
            f"{name}: spilled run is {cell['ratio']:.2f}x the in-memory "
            "latency (gate: 3x)"
        )
    return data


def test_resource_governance_report(benchmark):
    data = benchmark.pedantic(
        lambda: _run_table(smoke=True), rounds=1, iterations=1
    )
    assert set(data["cells"]) == {name for name, _query in CELLS}
    for cell in data["cells"].values():
        assert cell["spill_runs"] > 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller graph; still asserts the spill/latency gates",
    )
    arguments = parser.parse_args()
    _run_table(smoke=arguments.smoke)
